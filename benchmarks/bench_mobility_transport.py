"""Mobility transport benchmark: the replicated-handover stack, sim vs asyncio.

Runs the shared roaming workload (``repro.mobility.handover_workload``:
attach → walk across the broker line → power off → exception-mode
reappearance, under the NLB predictor) on both mobility-capable backends and
records what the paper's experiments care about, per backend:

* **handover latency** — attach request to replicator welcome; simulated
  seconds on ``sim``, *real* end-to-end seconds over TCP on ``asyncio``;
* **delivery counts** — live vs replayed-from-shadow-buffer deliveries,
  plus the control-message overhead of the replication protocol.

Every config doubles as an integration gate: the delivered
``(notification, replayed)`` multisets of both backends are cross-checked
and the benchmark exits non-zero on any divergence.  The asyncio backend
runs once per wire codec (``json`` and ``binary``) and is cross-checked
against the sim reference under each, so the exact-gated outcome counts are
verified to be codec-independent.

Emits ``BENCH_mobility.json`` (see ``--output``), consumable by
``benchmarks/compare.py``.  All wall-clock metrics are stored under
``*_sec`` keys, which ``compare.py`` deliberately ignores (they are
machine-dependent); the deterministic outcome counts (deliveries, replays,
handovers, control overhead) are stored under ``*_count`` keys, which
``compare.py`` gates for *exact* equality — behavioural drift against the
committed baseline fails CI even when both backends drift identically.
Usage::

    PYTHONPATH=src python benchmarks/bench_mobility_transport.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_mobility_transport.py --fast   # CI smoke
    python benchmarks/compare.py BENCH_mobility.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.mobility.handover_workload import cross_check_backends  # noqa: E402


def _percentile(values, p: float) -> float:
    if not values:
        return 0.0
    return values[min(len(values) - 1, int(p * len(values)))]


def _metrics(result) -> dict:
    latencies = result.all_handover_latencies()
    # *_count metrics are deterministic outcomes of the phase-quiesced
    # workload (identical on both backends, both codecs and every machine),
    # so compare.py gates them for EXACT equality against the baseline;
    # wall/latency metrics live under *_sec keys it ignores
    return {
        "wall_sec": result.wall_sec,
        "handover_p50_sec": _percentile(latencies, 0.50),
        "handover_p95_sec": _percentile(latencies, 0.95),
        "published_count": result.published,
        "delivered_count": result.delivered_total(),
        "live_count": sum(c.live for c in result.clients),
        "replayed_count": sum(c.replayed for c in result.clients),
        "handover_count": result.handovers,
        "shadow_count": result.shadows_created,
        "exception_count": result.exception_activations,
        "control_message_count": result.control_messages,
    }


def run_config(brokers: int, publishes: int):
    """Cross-check one config per wire codec; returns (records, mismatches).

    The asyncio backend runs once per codec and is cross-checked against the
    sim reference each time, so the exact-gated ``*_count`` outcomes are
    verified to be codec-independent.  The sim backend never serializes, so
    its single record carries no codec key.
    """
    records = []
    all_mismatches = []
    for codec in ("json", "binary"):
        results, mismatches = cross_check_backends(
            backends=("sim", "asyncio"),
            brokers=brokers,
            publishes_per_phase=publishes,
            codec=codec,
        )
        all_mismatches.extend(f"codec={codec}: {m}" for m in mismatches)
        backends = ("sim", "asyncio") if codec == "json" else ("asyncio",)
        for backend in backends:
            metrics = _metrics(results[backend])
            config = {"backend": backend, "brokers": brokers, "publishes": publishes}
            if backend != "sim":
                config["codec"] = codec
            records.append({"sweep": "mobility", "config": config, "metrics": metrics})
            m = metrics
            print(
                f"mobility {backend:<8} codec={codec if backend != 'sim' else '-':<7} "
                f"brokers={brokers} pub/phase={publishes:<3} "
                f"wall={m['wall_sec']:6.2f}s "
                f"handover p50={m['handover_p50_sec'] * 1000:6.2f}ms "
                f"p95={m['handover_p95_sec'] * 1000:6.2f}ms "
                f"live={m['live_count']:<4} replayed={m['replayed_count']:<4} "
                f"control={m['control_message_count']}"
            )
    return records, all_mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="small sweep for CI smoke runs")
    parser.add_argument(
        "--output",
        "-o",
        default=None,
        help="result path (default: BENCH_mobility.json for the full sweep, "
        "BENCH_mobility_fast.json in --fast mode so a smoke run never "
        "overwrites the committed full-sweep baseline)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        name = "BENCH_mobility_fast.json" if args.fast else "BENCH_mobility.json"
        args.output = str(Path(__file__).resolve().parent.parent / name)

    # fast mode keeps the (3, 4) record so its config key matches the
    # committed full-sweep baseline and compare.py finds shared records
    configs = [(3, 4)]
    if not args.fast:
        configs.append((5, 8))

    results = []
    status = 0
    for brokers, publishes in configs:
        records, mismatches = run_config(brokers, publishes)
        results.extend(records)
        for mismatch in mismatches:
            print(f"ERROR: backend divergence (brokers={brokers}): {mismatch}", file=sys.stderr)
            status = 1

    payload = {
        "benchmark": "mobility_transport",
        "mode": "fast" if args.fast else "full",
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if status == 0:
        print("delivered multisets identical across backends on every config")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
