"""Churn benchmark: steady-state matching throughput under subscription churn.

Three sweeps, the first self-gating (the benchmark exits non-zero when its
own acceptance bar fails, independent of ``compare.py``):

* ``churn_destinations`` — the headline table-level microbenchmark: 1k
  Range-heavy subscriptions over a handful of links, then rounds of one
  retire+admit churn pair followed by hot-shape ``destinations()`` queries.
  This is exactly the regime where the segment index pays its
  rebuild-on-dirty cost on every round; the ``"interval"`` matcher's
  incrementally repaired :class:`~repro.pubsub.matching.IntervalBucketIndex`
  absorbs the same churn with two bisects.  The gated statistic is
  ``speedup`` (interval queries/s over indexed queries/s, best of the
  interleaved repeats); the run *fails* below ``--speedup-floor`` (default
  3.0).  An untimed verification pass replays the same churn against a
  lockstep brute-force oracle: ``oracle_mismatch_count`` (every query
  compared, all three matchers) and ``cache_staleness_count`` (mismatches
  on queries served from the destination cache) are exact-gated zeros, and
  ``cache_hit_count`` exact-gates the cache's deterministic hit pattern.
* ``churn_backends`` — the same Range-heavy churn shape end-to-end: a
  3-broker line per backend with ``matcher="interval"``, publishes
  interleaved with between-phase subscription swaps, delivered notification
  ids per subscriber compared against a sim run with ``matcher="brute"``.
  ``delivered_count`` and ``oracle_divergence_count`` are exact-gated; the
  cluster backend joins on the full sweep.

Emits ``BENCH_churn.json`` (see ``--output``).  Usage::

    PYTHONPATH=src python benchmarks/bench_churn.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_churn.py --fast   # CI smoke
    python benchmarks/compare.py BENCH_churn.json new.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import SystemConfig  # noqa: E402
from repro.pubsub.broker_network import line_topology  # noqa: E402
from repro.pubsub.filters import Filter, Range  # noqa: E402
from repro.pubsub.notification import Notification  # noqa: E402
from repro.pubsub.routing_table import RoutingTable  # noqa: E402

SUBSCRIPTIONS = 1000
LINKS = 4
ROUNDS = 600
QUERIES_PER_ROUND = 2
HOT_SHAPES = 8
VALUE_SPACE = 10_000.0


def _random_filter(rng: random.Random) -> Filter:
    low = rng.uniform(0, VALUE_SPACE)
    return Filter([Range("value", low, low + rng.uniform(1, 120))])


def _build_table(matcher: str, rng: random.Random) -> tuple:
    table = RoutingTable(matcher=matcher)
    subs = []
    for i in range(SUBSCRIPTIONS):
        sub_id = f"s{i}"
        table.add(_random_filter(rng), f"L{i % LINKS}", sub_id)
        subs.append(sub_id)
    return table, subs


def _timed_churn(matcher: str, seed: int) -> float:
    """Steady churn: one retire+admit pair then hot queries; returns queries/s."""
    rng = random.Random(seed)
    table, subs = _build_table(matcher, rng)
    hot = [{"value": rng.uniform(0, VALUE_SPACE)} for _ in range(HOT_SHAPES)]
    next_id = SUBSCRIPTIONS
    queries = 0
    start = time.perf_counter()
    for _ in range(ROUNDS):
        victim = subs.pop(rng.randrange(len(subs)))
        table.remove(victim)
        sub_id = f"s{next_id}"
        next_id += 1
        table.add(_random_filter(rng), f"L{next_id % LINKS}", sub_id)
        subs.append(sub_id)
        for _ in range(QUERIES_PER_ROUND):
            table.destinations(rng.choice(hot))
            queries += 1
    return queries / (time.perf_counter() - start)


def _verify_churn(seed: int) -> tuple:
    """Replay the identical churn with all three matchers in lockstep.

    Every query is compared across brute (the oracle), indexed and interval;
    a query the interval table served from its destination cache that
    disagrees with a freshly computed brute answer is *staleness* — the one
    bug class the epoch guard exists to make impossible.
    Returns (mismatches, staleness, cache_hits).
    """
    tables = {}
    for matcher in ("brute", "indexed", "interval"):
        # identical seed per build -> all three tables start byte-identical
        tables[matcher], subs = _build_table(matcher, random.Random(seed))
    hot_rng = random.Random(seed)
    for _ in range(2 * SUBSCRIPTIONS):  # skip the draws _build_table consumed
        hot_rng.random()
    hot = [{"value": hot_rng.uniform(0, VALUE_SPACE)} for _ in range(HOT_SHAPES)]
    rng = random.Random(seed + 1)
    next_id = SUBSCRIPTIONS
    mismatches = staleness = 0
    interval = tables["interval"]
    for _ in range(ROUNDS):
        victim = subs.pop(rng.randrange(len(subs)))
        new_filter = _random_filter(rng)
        sub_id = f"s{next_id}"
        next_id += 1
        link = f"L{next_id % LINKS}"
        for table in tables.values():
            table.remove(victim)
            table.add(new_filter, link, sub_id)
        subs.append(sub_id)
        for _ in range(QUERIES_PER_ROUND):
            probe = rng.choice(hot)
            hits_before = interval.cache_hits
            got_interval = interval.destinations(probe)
            from_cache = interval.cache_hits > hits_before
            want = tables["brute"].destinations(probe)
            got_indexed = tables["indexed"].destinations(probe)
            if got_interval != want or got_indexed != want:
                mismatches += 1
                if from_cache and got_interval != want:
                    staleness += 1
    return mismatches, staleness, interval.cache_hits


def run_destinations_sweep(repeats: int, speedup_floor: float, seed: int):
    """The headline microbenchmark; returns (record, failures)."""
    failures = []
    indexed_best = interval_best = 0.0
    for _ in range(repeats):
        indexed_best = max(indexed_best, _timed_churn("indexed", seed))
        interval_best = max(interval_best, _timed_churn("interval", seed))
    speedup = interval_best / indexed_best
    mismatches, staleness, cache_hits = _verify_churn(seed)
    if speedup < speedup_floor:
        failures.append(
            f"steady-churn speedup {speedup:.2f}x below the {speedup_floor:.1f}x floor "
            f"(interval {interval_best:.0f} q/s vs indexed {indexed_best:.0f} q/s)"
        )
    if mismatches:
        failures.append(f"{mismatches} destinations() mismatches against the brute oracle")
    if staleness:
        failures.append(f"{staleness} stale destination-cache answers (epoch guard broken)")
    record = {
        "sweep": "churn_destinations",
        "config": {
            "subscriptions": SUBSCRIPTIONS,
            "links": LINKS,
            "rounds": ROUNDS,
            "queries_per_round": QUERIES_PER_ROUND,
            "seed": seed,
        },
        "metrics": {
            "speedup": speedup,
            "interval_qps": interval_best,
            "indexed_qps": indexed_best,
            "interval_query_usec": 1e6 / interval_best,
            "indexed_query_usec": 1e6 / indexed_best,
            "oracle_mismatch_count": mismatches,
            "cache_staleness_count": staleness,
            "cache_hit_count": cache_hits,
        },
    }
    print(
        f"destinations  subs={SUBSCRIPTIONS} links={LINKS} rounds={ROUNDS} "
        f"interval={interval_best:8.0f} q/s indexed={indexed_best:8.0f} q/s "
        f"speedup={speedup:5.2f}x mismatches={mismatches} stale={staleness}"
    )
    return record, failures


def _run_backend_workload(backend: str, matcher: str, phases: int, per_phase: int, seed: int):
    """Range-heavy publish/churn workload on one backend, end to end.

    Every random draw comes from one ``Random(seed)`` in a backend-independent
    order, and churn only happens at quiescence, so the delivered notification
    ids per subscriber are an exact cross-backend/cross-matcher invariant.
    """
    rng = random.Random(seed)
    net = line_topology(
        n_brokers=3,
        link_latency=0.001 if backend == "sim" else 0.0,
        config=SystemConfig(matcher=matcher, transport=backend),
    )
    try:
        subscribers = []
        serial = 0
        for broker_name in net.broker_names():
            for _ in range(2):
                client = net.add_client(f"sub{serial}@{broker_name}", broker_name)
                low = rng.randrange(0, 900)
                client.subscribe(
                    Filter([Range("value", low, low + rng.randrange(20, 200))]),
                    sub_id=f"r{serial}",
                )
                subscribers.append([client, f"r{serial}"])
                serial += 1
        net.run_until_idle()
        publisher = net.add_client("pub", net.broker_names()[0])
        next_id = 1_000_000
        published = 0
        start = time.perf_counter()
        for _ in range(phases):
            for _ in range(per_phase):
                publisher.publish(
                    Notification({"value": rng.randrange(0, 1000)}, notification_id=next_id)
                )
                next_id += 1
                published += 1
            net.run_until_idle()
            # between-phase churn: one subscriber swaps its range
            entry = subscribers[rng.randrange(len(subscribers))]
            client, old_id = entry
            client.unsubscribe(old_id)
            low = rng.randrange(0, 900)
            new_id = f"r{serial}"
            serial += 1
            client.subscribe(
                Filter([Range("value", low, low + rng.randrange(20, 200))]), sub_id=new_id
            )
            entry[1] = new_id
            net.run_until_idle()
        wall = time.perf_counter() - start
        delivered = {
            client.name: sorted(d.notification.notification_id for d in client.deliveries)
            for client, _ in subscribers
        }
        return delivered, published, wall
    finally:
        net.close()


def run_backend_sweep(backend: str, oracle, phases: int, per_phase: int, seed: int):
    """Interval matcher on ``backend`` vs the sim brute oracle; (record, failures)."""
    failures = []
    delivered, published, wall = _run_backend_workload(backend, "interval", phases, per_phase, seed)
    divergences = sum(1 for name, ids in oracle.items() if delivered.get(name) != ids)
    if divergences:
        failures.append(
            f"{backend}: {divergences} subscriber(s) diverged from the sim brute oracle"
        )
    delivered_total = sum(len(ids) for ids in delivered.values())
    record = {
        "sweep": "churn_backends",
        "config": {"backend": backend, "phases": phases, "per_phase": per_phase, "seed": seed},
        "metrics": {
            "wall_sec": wall,
            "published_count": published,
            "delivered_count": delivered_total,
            "oracle_divergence_count": divergences,
        },
    }
    print(
        f"backends      {backend:<8} phases={phases} per_phase={per_phase} "
        f"wall={wall:7.3f}s delivered={delivered_total} divergences={divergences}"
    )
    return record, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="small sweep for CI smoke runs")
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="interleaved runs per timed arm; best is recorded (default: 3)",
    )
    parser.add_argument(
        "--speedup-floor",
        type=float,
        default=3.0,
        help="minimum interval-over-indexed steady-churn speedup (default: 3.0)",
    )
    parser.add_argument("--seed", type=int, default=7, help="churn workload seed (default: 7)")
    parser.add_argument(
        "--output",
        "-o",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_churn.json"),
    )
    args = parser.parse_args(argv)

    results = []
    failures = []

    repeats = 1 if args.fast else max(1, args.repeats)
    record, errors = run_destinations_sweep(repeats, args.speedup_floor, args.seed)
    results.append(record)
    failures.extend(errors)

    # end-to-end: delivered sets must be identical to a sim brute-force run
    phases, per_phase = 12, 25
    oracle, _published, _wall = _run_backend_workload("sim", "brute", phases, per_phase, args.seed)
    backends = ["sim", "asyncio"]
    if not args.fast:
        backends.append("cluster")
    for backend in backends:
        record, errors = run_backend_sweep(backend, oracle, phases, per_phase, args.seed)
        results.append(record)
        failures.extend(errors)

    payload = {
        "benchmark": "churn",
        "mode": "fast" if args.fast else "full",
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    if not failures:
        print(
            "steady-churn speedup above the floor; destinations identical to brute "
            "on every backend; zero cache staleness"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
