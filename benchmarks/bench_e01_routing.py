"""Benchmark/driver for experiment E1 (paper Fig. 2 / Sect. 2): routing strategies.

Regenerates the flooding-vs-simple routing table and asserts the reproduction
criterion: identical deliveries, less broker-link traffic for simple routing.
"""

from repro.experiments import e01_routing


def test_e01_routing_table(experiment_runner):
    table = experiment_runner(e01_routing.run, broker_counts=(5, 15, 30))
    for brokers in (5, 15, 30):
        flooding = table.value("publish_msgs", brokers=brokers, strategy="flooding")
        simple = table.value("publish_msgs", brokers=brokers, strategy="simple")
        assert simple <= flooding
        assert table.value("deliveries", brokers=brokers, strategy="simple") == table.value(
            "deliveries", brokers=brokers, strategy="flooding"
        )
