"""Benchmark/driver for experiment E5 (Sect. 3.2.3): handover overhead vs nlb degree."""

from repro.experiments import e05_handover


def test_e05_handover_table(experiment_runner):
    table = experiment_runner(e05_handover.run, duration=60.0)
    line = table.rows_where(graph="line")[0]
    grid4 = table.rows_where(graph="grid-4")[0]
    complete = table.rows_where(graph="complete")[0]
    assert line["mean_shadows"] <= grid4["mean_shadows"] <= complete["mean_shadows"]
    assert line["shadow_deliveries"] <= grid4["shadow_deliveries"] <= complete["shadow_deliveries"]
