"""Covering/merging subscription-control scaling benchmark.

Two sweeps:

* **churn** — subscribe/unsubscribe churn driven straight through a routing
  strategy (identity / covering / merging) against a fake broker, comparing
  the ``advertising="scan"`` baseline (rebuild the forwarded-filter list and
  re-run ``covers`` per query) with the ``"incremental"`` forwarded-filter
  index.  Both runs see the same operation sequence and their control-message
  logs are asserted identical (up to generated merged-subscription ids).
* **range-table** — ``RoutingTable.destinations`` on a Range-dominated
  workload (the paper's location/zone band filters), brute vs indexed, which
  exercises the per-attribute Range segment buckets.

Emits ``BENCH_covering.json`` (see ``--output``), consumable by
``benchmarks/compare.py``.  Absolute wall times are recorded under
``*_sec``/``*_ops_per_sec`` keys, which ``compare.py`` deliberately ignores:
they are machine-dependent, so the CI regression gate runs on the
machine-portable ``speedup`` ratios only.  Usage::

    PYTHONPATH=src python benchmarks/bench_covering_scale.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_covering_scale.py --fast   # CI smoke
    python benchmarks/compare.py BENCH_covering.json new.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pubsub.filters import Equals, Filter, Range  # noqa: E402
from repro.pubsub.notification import Notification  # noqa: E402
from repro.pubsub.routing import make_strategy  # noqa: E402
from repro.pubsub.routing_table import RoutingTable  # noqa: E402
from repro.pubsub.subscription import Subscription  # noqa: E402
from repro.pubsub.testing import RecordingBroker as FakeBroker  # noqa: E402
from repro.pubsub.testing import normalize_merged_ids as normalized  # noqa: E402

N_SERVICES = 40
N_LOCATIONS = 12
BAND = 10  # value bands are quantized so filters repeat and cover each other


def make_covering_filter(rng: random.Random) -> Filter:
    """Overlap-heavy filters in the shape of the paper's workloads: a few
    broad service subscriptions cover many narrower band/location ones."""
    roll = rng.random()
    service = Equals("service", f"svc-{rng.randrange(N_SERVICES)}")
    if roll < 0.10:
        return Filter([service])
    if roll < 0.50:
        low = BAND * rng.randrange(0, 10)
        return Filter([service, Range("value", low, low + BAND * rng.randint(1, 3))])
    if roll < 0.80:
        return Filter([service, Equals("location", f"r{rng.randrange(N_LOCATIONS)}")])
    low = BAND * rng.randrange(0, 10)
    return Filter([Range("value", low, low + BAND * rng.randint(1, 2))])


def make_ops(subscriptions: int, seed: int):
    """A churn schedule: ~subscriptions subscribes interleaved with ~25% unsubscribes."""
    rng = random.Random(seed)
    ops = []
    live = []
    for step in range(subscriptions):
        filter = make_covering_filter(rng)
        sub_id = f"s{step}"
        from_link = rng.choice(["c1", "c2"])
        ops.append(("sub", sub_id, filter, from_link))
        live.append((sub_id, filter, from_link))
        if live and rng.random() < 0.25:
            ops.append(("unsub", *live.pop(rng.randrange(len(live)))))
    return ops


def run_churn(strategy_name: str, advertising: str, ops, links: int):
    broker = FakeBroker([f"N{i}" for i in range(links)])
    strategy = make_strategy(strategy_name, broker, advertising=advertising)
    start = time.perf_counter()
    for op, sub_id, filter, from_link in ops:
        if op == "sub":
            strategy.handle_subscribe(
                Subscription(sub_id=sub_id, filter=filter, subscriber=from_link), from_link
            )
        else:
            strategy.handle_unsubscribe(sub_id, filter, from_link)
    elapsed = time.perf_counter() - start
    return elapsed, broker.log


def bench_churn(strategy_name: str, subscriptions: int, links: int, seed: int = 0,
                compare_scan: bool = True):
    ops = make_ops(subscriptions, seed)
    metrics = {}
    incremental_s, incremental_log = run_churn(strategy_name, "incremental", ops, links)
    metrics["incremental_sec"] = incremental_s
    metrics["incremental_ops_per_sec"] = len(ops) / incremental_s
    if compare_scan:
        scan_s, scan_log = run_churn(strategy_name, "scan", ops, links)
        if normalized(scan_log) != normalized(incremental_log):
            raise AssertionError(
                f"forwarding divergence: strategy={strategy_name} subs={subscriptions}"
            )
        metrics["scan_sec"] = scan_s
        metrics["speedup"] = scan_s / incremental_s
        metrics["decisions_identical"] = True
    return {
        "sweep": "churn",
        "config": {"strategy": strategy_name, "subscriptions": subscriptions, "links": links},
        "metrics": metrics,
    }


# --------------------------------------------------------------- range sweep


def make_range_filter(rng: random.Random) -> Filter:
    """Range-dominated subscriptions: narrow numeric bands, no equality key."""
    attribute = rng.choice(["value", "zone"])
    low = rng.uniform(0, 900)
    return Filter([Range(attribute, low, low + rng.uniform(5, 40))])


def bench_range_table(links: int, subscriptions: int, notifications: int, seed: int = 0):
    rng = random.Random(seed)
    filters = [(make_range_filter(rng), f"L{i % links}", f"s{i}") for i in range(subscriptions)]
    payloads = [
        Notification({"value": rng.uniform(0, 1000), "zone": rng.uniform(0, 1000)})
        for _ in range(notifications)
    ]
    metrics = {}
    reference = None
    for matcher in ("brute", "indexed"):
        table = RoutingTable(matcher=matcher)
        for filter, link, sub_id in filters:
            table.add(filter, link, sub_id)
        # warm both matchers once so the lazy segment rebuild (a one-off
        # cost after a churn batch, reported separately) is excluded from
        # the steady-state per-notification measurement
        start = time.perf_counter()
        table.destinations(payloads[0])
        metrics[f"{matcher}_first_query_sec"] = time.perf_counter() - start
        results = []
        start = time.perf_counter()
        for payload in payloads:
            results.append(table.destinations(payload))
        elapsed = time.perf_counter() - start
        metrics[f"{matcher}_sec"] = elapsed
        if reference is None:
            reference = results
        elif results != reference:
            raise AssertionError(
                f"matcher divergence on range workload: subs={subscriptions}"
            )
    metrics["speedup"] = metrics["brute_sec"] / metrics["indexed_sec"]
    metrics["destinations_identical"] = True
    return {
        "sweep": "range-table",
        "config": {"links": links, "subscriptions": subscriptions},
        "metrics": metrics,
    }


# -------------------------------------------------------- probe-order check


def assert_cheapest_first_probe_order() -> None:
    """Micro-assert: covering candidates are probed cheapest-first.

    Builds a forwarded-filter index whose single attribute bucket holds
    filters of different constraint counts (several constraints on the same
    attribute share one attribute-set bucket) and checks the probe order is
    ascending in constraint count — the PR's pruning invariant.
    """
    from repro.pubsub.routing import _ForwardedFilterIndex

    index = _ForwardedFilterIndex()
    three = Filter([Range("value", 0, 100), Range("value", 20, 80), Range("value", 40, 60)])
    one = Filter([Range("value", -1000, 1000)])
    two = Filter([Range("value", 0, 100), Range("value", 10, 90)])
    index.set_contribution("s3", "L", [three])
    index.set_contribution("s1", "L", [one])
    index.set_contribution("s2", "L", [two])
    state = index._links["L"]
    (attrs,) = state.by_attrs
    counts = [len(f.constraints) for f in state.ordered_bucket(attrs)]
    assert counts == sorted(counts) == [1, 2, 3], f"probe order not cheapest-first: {counts}"
    # the cheap broad filter must decide covered() without the narrow probes
    assert index.covered("L", Filter([Range("value", 5, 6)]))
    # cache invalidation: removing the cheapest rep re-sorts the bucket
    index.remove_contribution("s1", "L")
    counts = [len(f.constraints) for f in state.ordered_bucket(attrs)]
    assert counts == [2, 3], f"stale probe order after removal: {counts}"
    print("probe-order micro-assert: ok")


def assert_wire_fragment_caches() -> None:
    """Micro-assert: domain wire fragments are cached once per codec.

    Filters, subscriptions and notifications are immutable, so their wire
    fragments are memoized on the object — one slot per codec.  Encoding the
    same payload twice under the same codec must return a byte-identical
    frame *via the cache* (the second encode reuses the stored fragment
    object), and encoding under the other codec must fill its own slot
    without disturbing the first: the caches are keyed per codec, never
    shared.
    """
    from repro.net.process import Message
    from repro.net.wire import BINARY_CODEC, JSON_CODEC

    filt = Filter([Equals("service", "svc-0"), Range("value", 0, 100)])
    sub = Subscription(sub_id="s-cache", filter=filt, subscriber="c1")
    notif = Notification({"topic": "bench", "value": 7, "pad": "x" * 8})
    json_slots = {Filter: "_wire_json", Subscription: "_wire_json", Notification: "_wire"}

    for payload in (filt, sub, notif):
        json_slot = json_slots[type(payload)]
        lookup = (
            (lambda o, s: o.__dict__.get(s))
            if isinstance(payload, Subscription)  # frozen dataclass, no slots
            else getattr
        )
        assert lookup(payload, json_slot) is None, f"{payload!r}: stale json cache"
        assert lookup(payload, "_wire_bin") is None, f"{payload!r}: stale binary cache"

        message = Message(kind="publish", payload=payload, sender="bench")
        JSON_CODEC.frame_message(message)
        json_frag = lookup(payload, json_slot)
        assert json_frag is not None, f"{type(payload).__name__}: json fragment not cached"
        assert lookup(payload, "_wire_bin") is None, (
            f"{type(payload).__name__}: json encode touched the binary slot"
        )

        BINARY_CODEC.frame_message(message)
        bin_frag = lookup(payload, "_wire_bin")
        assert bin_frag is not None, f"{type(payload).__name__}: binary fragment not cached"
        assert isinstance(bin_frag, bytes) and isinstance(json_frag, str), (
            f"{type(payload).__name__}: codec caches collided"
        )

        # re-encodes must *hit* the caches: same fragment object, not a rebuild
        JSON_CODEC.frame_message(Message(kind="publish", payload=payload, sender="bench"))
        BINARY_CODEC.frame_message(Message(kind="publish", payload=payload, sender="bench"))
        assert lookup(payload, json_slot) is json_frag, (
            f"{type(payload).__name__}: json re-encode rebuilt the fragment"
        )
        assert lookup(payload, "_wire_bin") is bin_frag, (
            f"{type(payload).__name__}: binary re-encode rebuilt the fragment"
        )
    print("wire-fragment cache micro-assert: ok")


# -------------------------------------------------------------------- driver


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="small sweep for CI smoke runs")
    parser.add_argument(
        "--output",
        "-o",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_covering.json"),
    )
    args = parser.parse_args(argv)

    strategies = ("identity", "covering", "merging")
    if args.fast:
        assert_cheapest_first_probe_order()
        assert_wire_fragment_caches()
        churn_configs = [(s, 1000, 4, True) for s in strategies]
        range_configs = [(4, 1000)]
        # same notification count as the full sweep: the record shares its
        # config key with the committed baseline, so the measured ratio must
        # come from the same sample
        range_notifications = 300
    else:
        churn_configs = [
            (s, subs, 4, True) for s in strategies for subs in (1000, 3000)
        ] + [
            # scan is O(subscriptions) per decision: at 10k it would dominate
            # the run, so the largest size records incremental throughput only
            (s, 10000, 4, False) for s in strategies
        ]
        range_configs = [(4, 1000), (4, 5000)]
        range_notifications = 300

    results = []
    for strategy, subs, links, compare_scan in churn_configs:
        record = bench_churn(strategy, subs, links, compare_scan=compare_scan)
        results.append(record)
        m = record["metrics"]
        line = (
            f"churn   {strategy:<9} subs={subs:<6} "
            f"incremental={m['incremental_sec']:7.3f}s "
            f"({m['incremental_ops_per_sec']:9.0f} ops/s)"
        )
        if "speedup" in m:
            line += f" scan={m['scan_sec']:8.3f}s speedup={m['speedup']:6.1f}x"
        print(line)
    for links, subs in range_configs:
        record = bench_range_table(links, subs, range_notifications)
        results.append(record)
        m = record["metrics"]
        print(
            f"range   links={links:<2} subs={subs:<6} "
            f"brute={m['brute_sec']:7.3f}s indexed={m['indexed_sec']:7.3f}s "
            f"speedup={m['speedup']:6.1f}x"
        )

    # headline: the worst covering/merging churn speedup at >= 1000 subscriptions
    headline_pool = [
        r for r in results
        if r["sweep"] == "churn"
        and r["config"]["strategy"] in ("covering", "merging")
        and r["config"]["subscriptions"] >= 1000
        and "speedup" in r["metrics"]
    ]
    headline = min(headline_pool, key=lambda r: r["metrics"]["speedup"]) if headline_pool else None
    range_pool = [r for r in results if r["sweep"] == "range-table"]
    range_headline = max(range_pool, key=lambda r: r["metrics"]["speedup"]) if range_pool else None

    payload = {
        "benchmark": "covering_scale",
        "mode": "fast" if args.fast else "full",
        "results": results,
        "headline": headline,
        "range_headline": range_headline,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    status = 0
    if headline is not None:
        speedup = headline["metrics"]["speedup"]
        print(f"headline (worst covering/merging churn): {headline['config']} -> {speedup:.1f}x")
        if speedup < 5.0:
            print("WARNING: churn speedup below the 5x acceptance bar", file=sys.stderr)
            status = 1
    if range_headline is not None:
        speedup = range_headline["metrics"]["speedup"]
        print(f"range-table headline: {range_headline['config']} -> {speedup:.1f}x")
        if speedup < 1.5:
            print("WARNING: range-indexed destinations() shows no measurable win", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
