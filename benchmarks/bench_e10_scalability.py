"""Benchmark/driver for experiment E10 (Sect. 4): scalability sweep."""

from repro.experiments import e10_scalability


def test_e10_scalability_table(experiment_runner):
    table = experiment_runner(e10_scalability.run, grid_sides=(2, 3, 4), client_counts=(2, 6), duration=60.0)
    # cost grows with brokers and with clients; QoS stays high everywhere
    for variant in ("reactive", "replicator"):
        small = table.value("events", brokers=4, clients=2, variant=variant)
        large = table.value("events", brokers=16, clients=6, variant=variant)
        assert large > small
    for row in table.rows:
        assert row["delivery_rate"] >= 0.8
    # the replicator pays control-message overhead over the reactive baseline
    assert table.value("control_msgs", brokers=9, clients=6, variant="replicator") > table.value(
        "control_msgs", brokers=9, clients=6, variant="reactive"
    )
