"""Micro-benchmarks of the hot substrate operations (matching, routing, simulation).

These are conventional pytest-benchmark measurements (multiple rounds) of the
operations every experiment exercises millions of times, useful for tracking
performance regressions of the library itself.
"""

import random

from repro.net.simulator import Simulator
from repro.pubsub.broker_network import line_topology
from repro.pubsub.filters import Equals, Filter, InSet, Range
from repro.pubsub.matching import AttributeIndexMatcher, BruteForceMatcher
from repro.pubsub.notification import Notification
from repro.pubsub.subscription import subscription

SERVICES = ["temperature", "stock", "news", "weather", "traffic"]


def _subscriptions(count):
    rng = random.Random(42)
    subs = []
    for index in range(count):
        service = rng.choice(SERVICES)
        constraints = [Equals("service", service)]
        if index % 2:
            constraints.append(Range("value", 0, rng.randint(10, 80)))
        if index % 3 == 0:
            constraints.append(InSet("location", {f"r{i}" for i in range(rng.randint(1, 4))}))
        subs.append(subscription(Filter(constraints), subscriber=f"c{index}", sub_id=f"s{index}"))
    return subs


def _notifications(count):
    rng = random.Random(7)
    return [
        Notification(
            {
                "service": rng.choice(SERVICES),
                "value": rng.randint(0, 100),
                "location": f"r{rng.randint(0, 5)}",
            }
        )
        for _ in range(count)
    ]


def test_bench_brute_force_matching(benchmark):
    matcher = BruteForceMatcher()
    for sub in _subscriptions(500):
        matcher.add(sub)
    notifications = _notifications(200)
    benchmark(lambda: [matcher.match(n) for n in notifications])


def test_bench_indexed_matching(benchmark):
    matcher = AttributeIndexMatcher()
    for sub in _subscriptions(500):
        matcher.add(sub)
    notifications = _notifications(200)
    benchmark(lambda: [matcher.match(n) for n in notifications])


def test_bench_filter_covering(benchmark):
    subs = _subscriptions(300)
    filters = [sub.filter for sub in subs]

    def cover_all():
        count = 0
        for f in filters[:50]:
            for g in filters:
                if f.covers(g):
                    count += 1
        return count

    benchmark(cover_all)


def test_bench_end_to_end_publication_path(benchmark):
    """Publish 100 notifications through a 10-broker line with 20 subscribers."""

    def run_once():
        sim = Simulator()
        network = line_topology(sim, 10)
        subscribers = []
        for index in range(20):
            client = network.add_client(f"sub{index}", f"B{(index % 10) + 1}")
            client.subscribe(Filter([Equals("service", SERVICES[index % len(SERVICES)])]))
            subscribers.append(client)
        publisher = network.add_client("pub", "B1")
        sim.run_until_idle()
        for i in range(100):
            publisher.publish({"service": SERVICES[i % len(SERVICES)], "value": i})
        sim.run_until_idle()
        return sum(len(c.deliveries) for c in subscribers)

    assert benchmark(run_once) > 0


def test_bench_simulator_event_throughput(benchmark):
    def run_once():
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run_until_idle()
        return counter[0]

    assert benchmark(run_once) == 20_000
