"""Benchmark/driver for experiment E9 (Sect. 4): exception mode after power-off."""

from repro.experiments import e09_exception


def test_e09_exception_table(experiment_runner):
    table = experiment_runner(e09_exception.run, duration=90.0)
    off = table.rows_where(variant="exception-off")[0]
    on = table.rows_where(variant="exception-on")[0]
    assert on["exception_recoveries"] > 0
    assert on["delivery_rate"] >= off["delivery_rate"]
    assert on["uncovered_arrivals"] > 0  # teleports do escape the shadow set
