"""Benchmark/driver for experiment E12 (Sect. 2): routing-strategy ablation."""

from repro.experiments import e12_routing_ablation


def test_e12_routing_ablation_table(experiment_runner):
    table = experiment_runner(e12_routing_ablation.run, subscriber_counts=(8, 24))
    for subscribers in (8, 24):
        deliveries = {
            row["strategy"]: row["deliveries"] for row in table.rows_where(subscribers=subscribers)
        }
        assert len(set(deliveries.values())) == 1
        simple = table.value("table_size", subscribers=subscribers, strategy="simple")
        covering = table.value("table_size", subscribers=subscribers, strategy="covering")
        identity = table.value("table_size", subscribers=subscribers, strategy="identity")
        assert covering <= identity <= simple
        assert table.value("sub_msgs", subscribers=subscribers, strategy="flooding") == 0
        assert table.value("publish_msgs", subscribers=subscribers, strategy="flooding") >= table.value(
            "publish_msgs", subscribers=subscribers, strategy="simple"
        )
