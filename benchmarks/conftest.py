"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the experiment tables (E1..E12) exactly
once per run (``rounds=1``): the interesting output is the table itself — the
reproduction of the corresponding figure/claim of the paper — and the wall
clock time it takes to produce it.  The tables are printed at the end of the
run so ``pytest benchmarks/ --benchmark-only -s`` doubles as the experiment
driver used to fill EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

_COLLECTED_TABLES = []


def run_once(benchmark, run_function, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and keep its table."""
    table = benchmark.pedantic(lambda: run_function(**kwargs), rounds=1, iterations=1)
    _COLLECTED_TABLES.append(table)
    return table


@pytest.fixture
def experiment_runner(benchmark):
    def runner(run_function, **kwargs):
        return run_once(benchmark, run_function, **kwargs)

    return runner


def pytest_sessionfinish(session, exitstatus):
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    if terminal is None or not _COLLECTED_TABLES:
        return
    terminal.write_line("")
    terminal.write_line("=" * 78)
    terminal.write_line("Reproduced experiment tables (see EXPERIMENTS.md for interpretation)")
    terminal.write_line("=" * 78)
    for table in _COLLECTED_TABLES:
        terminal.write_line("")
        terminal.write_line(table.formatted())
