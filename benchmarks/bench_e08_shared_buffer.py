"""Benchmark/driver for experiment E8 (Sect. 4): shared digest buffer memory."""

from repro.experiments import e08_shared_buffer


def test_e08_shared_buffer_table(experiment_runner):
    table = experiment_runner(e08_shared_buffer.run, client_counts=(1, 2, 4, 8, 16))
    ratios = table.column("saving_ratio")
    assert ratios == sorted(ratios)  # saving grows with co-located clients
    assert table.value("saving_ratio", clients=16) > 3.0
    individual = table.column("individual_bytes")
    shared = table.column("shared_bytes")
    assert individual[-1] / individual[0] > 10  # individual memory grows ~linearly
    assert shared[-1] / shared[0] < 5           # shared store grows much slower
