"""Benchmark/driver for experiment E13: replicator design-choice ablation."""

from repro.experiments import e13_replicator_ablation


def test_e13_replicator_ablation_table(experiment_runner):
    table = experiment_runner(e13_replicator_ablation.run, duration=60.0)
    rows = {row["configuration"]: row for row in table.rows}
    assert rows["unfiltered-replay"]["replayed"] >= rows["baseline"]["replayed"]
    assert rows["combined-buffer-policy"]["buffer_memory"] <= rows["baseline"]["buffer_memory"]
    rates = [row["delivery_rate"] for row in table.rows]
    assert max(rates) - min(rates) <= 0.05
