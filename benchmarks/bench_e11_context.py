"""Benchmark/driver for experiment E11 (Sect. 4): context-dependent subscriptions."""

from repro.experiments import e11_context


def test_e11_context_table(experiment_runner):
    table = experiment_runner(e11_context.run, duration=90.0)
    aware = table.rows_where(client="context-aware")[0]
    static = table.rows_where(client="static (subscribe-everything)")[0]
    assert aware["precision"] >= 0.95
    assert static["precision"] < 0.8
    assert aware["recall"] >= 0.9
    assert aware["rebinds"] >= 2
