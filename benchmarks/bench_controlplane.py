"""Control-plane benchmark: metrics overhead budget + live-flip correctness.

Two sweeps, both self-gating (the benchmark exits non-zero when its own
acceptance criteria fail, independent of ``compare.py``):

* ``controlplane_overhead`` — the headline ``bench_transport`` line workload
  on the asyncio backend, once with live metrics on (the default) and once
  with ``metrics=False`` (the registry hands out shared no-op instruments).
  The two arms run interleaved and the gated statistic is the *minimum of
  per-pair wall ratios* — the lower bound on the systematic overhead,
  which a real hot-path cost shifts on every pair but a scheduler noise
  spike cannot flake; the record's ``speedup`` metric is its inverse —
  values near (or above) 1.0 mean the instrumentation is free — and the
  run *fails* beyond ``--overhead-budget`` (default 5%).  ``compare.py``
  threshold-gates ``speedup`` and exact-gates the deterministic
  ``*_count`` delivery totals.
* ``matcher_flip`` — ``run_flip_workload``: every broker is flipped live to
  the opposite matcher *and* advertising mode mid-traffic (frames genuinely
  in flight on the socket backends), and the delivered value-sets must be
  identical to a never-flipped simulator oracle.  ``delivered_count``,
  ``expected_count`` and ``oracle_divergence_count`` (always 0) are
  exact-gated by ``compare.py``; the cluster backend joins on the full
  sweep.

Emits ``BENCH_controlplane.json`` (see ``--output``).  Usage::

    PYTHONPATH=src python benchmarks/bench_controlplane.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_controlplane.py --fast   # CI smoke
    python benchmarks/compare.py BENCH_controlplane.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import SystemConfig  # noqa: E402
from repro.pubsub.testing import run_flip_workload, run_line_workload  # noqa: E402


def run_overhead(brokers: int, notifications: int, repeats: int, budget: float):
    """Metrics on vs off on the asyncio backend; returns (record, failures).

    The two arms run *interleaved* (on, off, on, off, ...) and the gated
    statistic is the MINIMUM of the per-pair wall ratios — the lower bound
    on the systematic overhead.  A real hot-path cost shifts *every* pair's
    ratio, so the minimum still catches it; a scheduler noise spike only
    inflates some pairs and cannot flake the gate (sub-second socket walls
    on shared machines routinely jitter by more than the 5% budget, so any
    mean/median/best-of statistic would).
    """
    failures = []

    def one(enabled: bool):
        return run_line_workload(
            "asyncio",
            brokers,
            notifications,
            topic="bench",
            payload_pad="x" * 32,
            config=SystemConfig(metrics=enabled),
        )

    ratios = []
    on_best = off_best = None
    for _ in range(max(3, repeats)):
        on, off = one(True), one(False)
        if on.mismatches or off.mismatches:
            failures.append(
                f"overhead sweep missed deliveries "
                f"(on={on.mismatches}, off={off.mismatches} subscribers)"
            )
        if on.delivered != off.delivered:
            failures.append(
                f"metrics on/off changed delivery totals: {on.delivered} vs {off.delivered}"
            )
        ratios.append(on.wall_sec / off.wall_sec)
        if on_best is None or on.wall_sec < on_best.wall_sec:
            on_best = on
        if off_best is None or off.wall_sec < off_best.wall_sec:
            off_best = off
    overhead = min(ratios) - 1.0
    if overhead > budget:
        failures.append(
            f"metrics overhead {overhead:+.1%} exceeds the {budget:.0%} budget "
            f"(minimum of {len(ratios)} paired on/off wall ratios — every pair paid it)"
        )
    metrics = {
        "wall_metrics_on_sec": on_best.wall_sec,
        "wall_metrics_off_sec": off_best.wall_sec,
        # compare.py gates speedup (higher is better); clamped at 1.0 so
        # "free" always records the same baseline and only a genuine
        # hot-path leak (overhead > 0 on every pair) can sink it
        "speedup": min(1.0, 1.0 / (1.0 + overhead)),
        "delivered_count": on_best.delivered,
        "expected_count": on_best.expected,
    }
    record = {
        "sweep": "controlplane_overhead",
        "config": {"backend": "asyncio", "brokers": brokers, "notifications": notifications},
        "metrics": metrics,
    }
    print(
        f"overhead  asyncio  brokers={brokers} n={notifications:<6} "
        f"on={on_best.wall_sec:7.3f}s off={off_best.wall_sec:7.3f}s "
        f"overhead={overhead:+6.1%} (budget {budget:.0%}, min of {len(ratios)} pairs)"
    )
    return record, failures


def run_flip(backend: str, brokers: int, notifications: int, oracle):
    """Live-flip workload vs the never-flipped sim oracle; returns (record, failures)."""
    failures = []
    flipped = run_flip_workload(backend, brokers, notifications)
    if flipped.mismatches:
        failures.append(f"{backend}: {flipped.mismatches} subscriber(s) missed notifications")
    divergences = sum(
        1
        for name, values in oracle.delivered_values.items()
        if flipped.delivered_values.get(name) != values
    )
    if divergences:
        failures.append(
            f"{backend}: {divergences} subscriber(s) diverged from the never-flipped oracle"
        )
    metrics = {
        "wall_sec": flipped.wall_sec,
        "delivered_count": flipped.delivered,
        "expected_count": flipped.expected,
        "oracle_divergence_count": divergences,
        "brokers_flipped_count": len(flipped.applied),
    }
    record = {
        "sweep": "matcher_flip",
        "config": {"backend": backend, "brokers": brokers, "notifications": notifications},
        "metrics": metrics,
    }
    print(
        f"flip      {backend:<8} brokers={brokers} n={notifications:<6} "
        f"wall={flipped.wall_sec:7.3f}s delivered={flipped.delivered}/{flipped.expected} "
        f"divergences={divergences}"
    )
    return record, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="small sweep for CI smoke runs")
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="runs per overhead arm; the best one is recorded (default: 5)",
    )
    parser.add_argument(
        "--overhead-budget",
        type=float,
        default=0.05,
        help="maximum tolerated metrics overhead as a fraction (default: 0.05 = 5%%)",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_controlplane.json"),
    )
    args = parser.parse_args(argv)

    # fast mode keeps the (3, 600) records so their config keys match the
    # committed full-sweep baseline and compare.py finds shared records
    configs = [(3, 600)]
    if not args.fast:
        configs.append((5, 2000))

    results = []
    failures = []
    for brokers, notifications in configs:
        record, errors = run_overhead(brokers, notifications, args.repeats, args.overhead_budget)
        results.append(record)
        failures.extend(errors)

        oracle = run_flip_workload("sim", brokers, notifications, changes={})
        backends = ["sim", "asyncio"]
        if not args.fast and (brokers, notifications) == (5, 2000):
            backends.append("cluster")  # the headline cross-process config
        for backend in backends:
            record, errors = run_flip(backend, brokers, notifications, oracle)
            results.append(record)
            failures.extend(errors)

    payload = {
        "benchmark": "controlplane",
        "mode": "fast" if args.fast else "full",
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    if not failures:
        print("metrics overhead within budget; flips matched the oracle on every backend")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
