"""Benchmark/driver for experiment E7 (Sect. 4): buffering policies."""

from repro.experiments import e07_buffering


def test_e07_buffering_table(experiment_runner):
    table = experiment_runner(e07_buffering.run)
    rows = {row["policy"]: row for row in table.rows}
    assert rows["unbounded"]["evicted"] == 0
    assert rows["unbounded"]["peak_memory"] >= rows["time"]["peak_memory"] >= rows["count"]["peak_memory"]
    assert rows["time"]["stale_replayed"] == 0
    assert rows["combined"]["peak_memory"] <= min(rows["time"]["peak_memory"], rows["count"]["peak_memory"])
    assert rows["semantic"]["replayed"] <= rows["unbounded"]["replayed"]
