"""Diff two ``BENCH_*.json`` files and fail on performance regressions.

Records are matched by ``(sweep, config)``.  Time-like metrics (keys ending
in ``_us`` or ``_s`` — lower is better) may not grow by more than the
threshold (default 20%); the ``speedup`` metric may not shrink by more than
the threshold; metrics ending in ``_count`` are machine-independent
deterministic outcomes (delivery counts, protocol overhead) and must match
*exactly*, threshold notwithstanding.  Exit status 1 signals at least one
regression, making this usable as a CI gate::

    PYTHONPATH=src python benchmarks/bench_routing_scale.py -o new.json
    python benchmarks/compare.py BENCH_routing.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: str):
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: no such file: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    records = {}
    for record in data.get("results", []):
        key = (record.get("sweep"), tuple(sorted(record.get("config", {}).items())))
        records[key] = record.get("metrics", {})
    return records


def _fmt_key(key) -> str:
    sweep, config = key
    return f"{sweep}[{', '.join(f'{k}={v}' for k, v in config)}]"


def compare(old_path: str, new_path: str, threshold: float) -> int:
    old_records = _load(old_path)
    new_records = _load(new_path)
    shared = sorted(set(old_records) & set(new_records), key=repr)
    if not shared:
        print("no comparable records between the two files", file=sys.stderr)
        return 2

    regressions = []
    improvements = []
    for key in shared:
        old_metrics, new_metrics = old_records[key], new_records[key]
        for metric, old_value in old_metrics.items():
            new_value = new_metrics.get(metric)
            if not isinstance(old_value, (int, float)) or not isinstance(new_value, (int, float)):
                continue
            if metric.endswith("_count"):  # deterministic: exact match required
                if new_value != old_value:
                    ratio = new_value / old_value if old_value else float("inf")
                    regressions.append((key, metric, old_value, new_value, ratio))
                continue
            if old_value <= 0:
                continue
            if metric.endswith(("_us", "_s")):  # time: lower is better
                ratio = new_value / old_value
                if ratio > 1 + threshold:
                    regressions.append((key, metric, old_value, new_value, ratio))
                elif ratio < 1 - threshold:
                    improvements.append((key, metric, old_value, new_value, ratio))
            elif metric == "speedup":  # higher is better
                ratio = new_value / old_value
                if ratio < 1 - threshold:
                    regressions.append((key, metric, old_value, new_value, ratio))
                elif ratio > 1 + threshold:
                    improvements.append((key, metric, old_value, new_value, ratio))

    print(f"compared {len(shared)} records ({old_path} -> {new_path}, threshold {threshold:.0%})")
    for key, metric, old_value, new_value, ratio in improvements:
        print(f"  improved : {_fmt_key(key)} {metric}: {old_value:.2f} -> {new_value:.2f} ({ratio:.2f}x)")
    for key, metric, old_value, new_value, ratio in regressions:
        print(f"  REGRESSED: {_fmt_key(key)} {metric}: {old_value:.2f} -> {new_value:.2f} ({ratio:.2f}x)")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond {threshold:.0%}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed relative regression (default 0.20 = 20%%)")
    args = parser.parse_args(argv)
    return compare(args.old, args.new, args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
