"""Benchmark/driver for experiment E2 (Fig. 1 left): physical mobility support levels."""

from repro.experiments import e02_physical


def test_e02_physical_mobility_table(experiment_runner):
    table = experiment_runner(e02_physical.run, duration=60.0)
    missed_none = table.value("missed", variant="none")
    missed_resub = table.value("missed", variant="resubscribe")
    missed_reloc = table.value("missed", variant="relocation")
    assert missed_reloc <= missed_resub <= missed_none
    assert table.value("miss_rate", variant="relocation") <= 0.02
