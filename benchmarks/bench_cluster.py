"""Cluster scale-out benchmark: single-process asyncio vs K broker processes.

The fan-out workload: a line of ``brokers`` brokers, ``fanout`` subscribers
per broker all matching the published topic, one publisher at the head.
Every notification therefore traverses the whole line and is delivered
``brokers x fanout`` times — each hop pays wire encode/decode + routing, so
the aggregate work grows with the broker count.  The same workload runs on:

* ``asyncio`` — all brokers, subscribers and their sockets inside ONE
  process (PR 3's backend): every hop's codec + routing work shares one GIL
  and one event loop;
* ``cluster`` — each broker in its own spawned OS process
  (:mod:`repro.net.cluster`): broker hops run in parallel across processes
  (pipelined along the line), and each child's receive path is a tight
  synchronous loop instead of a per-frame coroutine.

Both backends run once per wire codec (``--codec``, default both): the
tagged-JSON reference codec and the interned-string binary codec, so the
committed baseline records how the cluster-vs-asyncio comparison shifts when
serialization stops dominating.

Every run verifies each subscriber received exactly ``notifications``
deliveries — the benchmark doubles as an integration gate and exits non-zero
on any miss or on any broker child exiting non-zero.

Emits ``BENCH_cluster.json`` (see ``--output``).  Wall-clock metrics are
stored under ``*_sec`` keys that ``benchmarks/compare.py`` deliberately
ignores (machine-dependent); the CI job still diffs against the committed
baseline so record/config drift fails loudly.  Each config is run
``--repeat`` times per backend and the best run is recorded (best-of
damps scheduler noise, which dominates near-1x comparisons on small
machines).  ``speedup_vs_asyncio`` is recorded per cluster record; pass
``--require-speedup`` (used when regenerating the committed baseline) to
also fail the run unless the cluster beats single-process asyncio on the
headline config.  On a single-core machine the cluster wins through write
batching and its lean synchronous receive path; on multi-core it
additionally pipelines broker hops across processes.  Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_cluster.py --fast     # CI smoke
    python benchmarks/compare.py BENCH_cluster.json new.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pubsub.broker_network import line_topology  # noqa: E402
from repro.pubsub.filters import Equals, Filter  # noqa: E402
from repro.pubsub.notification import Notification  # noqa: E402


def run_fanout(backend: str, brokers: int, fanout: int, notifications: int, codec: str = "json"):
    """Run the fan-out workload on one backend under one wire codec.

    Returns ``(metrics, mismatches)``; a cluster broker child exiting
    non-zero raises ``SystemExit`` instead.  The publish wall time excludes
    topology boot (process spawning is a deployment cost, not a routing
    cost) but includes the drain to quiescence.
    """
    net = line_topology(n_brokers=brokers, transport=backend, link_latency=0.0, codec=codec)
    child_failures = {}
    try:
        subscribers = []
        for broker_name in net.broker_names():
            for i in range(fanout):
                client = net.add_client(f"sub{i}@{broker_name}", broker_name)
                client.subscribe(Filter([Equals("topic", "bench")]), sub_id=f"s{i}-{broker_name}")
                subscribers.append(client)
        net.run_until_idle()

        publisher = net.add_client("publisher", net.broker_names()[0])
        payloads = [
            Notification({"topic": "bench", "value": value, "pad": "x" * 32})
            for value in range(notifications)
        ]
        start = time.perf_counter()
        for payload in payloads:
            publisher.publish(payload)
        net.run_until_idle()
        wall = time.perf_counter() - start

        delivered = sum(len(client.deliveries) for client in subscribers)
        expected = notifications * len(subscribers)
        mismatches = sum(1 for client in subscribers if len(client.deliveries) != notifications)
        metrics = {
            "wall_sec": wall,
            "throughput_ops_per_sec": delivered / wall if wall > 0 else 0.0,
            "delivered_fraction": delivered / expected if expected else 1.0,
            "delivered_count": delivered,
            "expected_count": expected,
        }
        return metrics, mismatches
    finally:
        net.close()
        if backend == "cluster":
            child_failures.update(net.transport.failures)
        if child_failures:
            raise SystemExit(f"ERROR: broker process failures: {child_failures}")


#: the config whose cluster-vs-asyncio comparison is the headline claim
HEADLINE = (3, 2, 800)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="small sweep for CI smoke runs")
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="runs per backend per config; the best one is recorded (default: 3)",
    )
    parser.add_argument(
        "--require-speedup",
        action="store_true",
        help="fail unless the cluster beats single-process asyncio on the "
        "headline config (used when regenerating the committed baseline)",
    )
    parser.add_argument(
        "--codec",
        choices=("json", "binary", "both"),
        default="both",
        help="wire codec(s) to sweep (default: both)",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_cluster.json"),
    )
    args = parser.parse_args(argv)

    # fast mode keeps the headline record so its config key matches the
    # committed full-sweep baseline and compare.py finds shared records
    configs = [HEADLINE]
    if not args.fast:
        configs.append((2, 3, 1200))

    codecs = ("json", "binary") if args.codec == "both" else (args.codec,)
    results = []
    status = 0
    for brokers, fanout, notifications in configs:
        for codec in codecs:
            throughput = {}
            for backend in ("asyncio", "cluster"):
                metrics = None
                best = -1.0
                for _ in range(max(1, args.repeat)):
                    candidate, mismatches = run_fanout(
                        backend, brokers, fanout, notifications, codec=codec
                    )
                    if mismatches:
                        print(
                            f"ERROR: {mismatches} subscriber(s) missed notifications "
                            f"(backend={backend}, codec={codec}, brokers={brokers}, "
                            f"fanout={fanout})",
                            file=sys.stderr,
                        )
                        status = 1
                    if candidate["throughput_ops_per_sec"] > best:
                        best = candidate["throughput_ops_per_sec"]
                        metrics = candidate
                throughput[backend] = metrics["throughput_ops_per_sec"]
                if backend == "cluster" and throughput["asyncio"] > 0:
                    metrics["speedup_vs_asyncio"] = throughput["cluster"] / throughput["asyncio"]
                results.append(
                    {
                        "sweep": "cluster",
                        "config": {
                            "backend": backend,
                            "brokers": brokers,
                            "fanout": fanout,
                            "notifications": notifications,
                            "codec": codec,
                        },
                        "metrics": metrics,
                    }
                )
                note = ""
                if "speedup_vs_asyncio" in metrics:
                    note = f"  speedup_vs_asyncio={metrics['speedup_vs_asyncio']:.2f}x"
                print(
                    f"cluster {backend:<8} codec={codec:<7} brokers={brokers} "
                    f"fanout={fanout} n={notifications:<6} "
                    f"wall={metrics['wall_sec']:7.3f}s "
                    f"({metrics['throughput_ops_per_sec']:9.0f} deliveries/s) "
                    f"delivered={metrics['delivered_fraction']:.3f}{note}"
                )
            if (
                args.require_speedup
                and codec == "json"
                and (brokers, fanout, notifications) == HEADLINE
                and throughput["cluster"] <= throughput["asyncio"]
            ):
                print(
                    f"ERROR: cluster ({throughput['cluster']:.0f}/s) did not beat "
                    f"single-process asyncio ({throughput['asyncio']:.0f}/s) on the "
                    f"headline config brokers={brokers}, fanout={fanout}",
                    file=sys.stderr,
                )
                status = 1

    payload = {
        "benchmark": "cluster",
        "mode": "fast" if args.fast else "full",
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if status == 0:
        print("delivery sets verified on both backends")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
