"""Benchmark/driver for experiment E3 (Fig. 1 right): logical mobility precision."""

from repro.experiments import e03_logical


def test_e03_logical_mobility_table(experiment_runner):
    table = experiment_runner(e03_logical.run, duration=60.0)
    aware = table.rows_where(client="location-aware (myloc)")[0]
    unaware = table.rows_where(client="location-unaware (service-wide)")[0]
    assert aware["precision"] >= 0.95
    assert unaware["precision"] <= 0.3
    assert unaware["deliveries"] >= 4 * aware["deliveries"]
