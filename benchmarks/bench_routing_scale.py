"""Routing fast-path scaling benchmark: brute-force vs indexed matching.

Sweeps broker-network size x subscription count x filter selectivity and
measures the notification forwarding hot path under both routing-table
matchers.  Two sweeps are produced:

* **table** — a single routing table queried directly (pure matching cost,
  no simulator); the headline speedup number comes from here.
* **network** — an end-to-end broker network on the discrete-event
  simulator, publishing through the full stack; it additionally asserts
  that brute and indexed runs produce identical delivery sets.

Emits ``BENCH_routing.json`` (see ``--output``), consumable by
``benchmarks/compare.py`` for regression checks::

    PYTHONPATH=src python benchmarks/bench_routing_scale.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_routing_scale.py --fast     # CI smoke
    PYTHONPATH=src python benchmarks/compare.py old.json new.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.net.simulator import Simulator  # noqa: E402
from repro.pubsub.broker_network import random_tree_topology  # noqa: E402
from repro.pubsub.filters import Equals, Filter, InSet, Range  # noqa: E402
from repro.pubsub.notification import Notification  # noqa: E402
from repro.pubsub.routing_table import RoutingTable  # noqa: E402

N_SERVICES = 50


def make_filter(rng: random.Random, selectivity: float) -> Filter:
    """A subscription filter; with probability ``selectivity`` it carries an
    indexable equality constraint (the selective, realistic case)."""
    if rng.random() < selectivity:
        constraints = [Equals("service", f"svc-{rng.randrange(N_SERVICES)}")]
        if rng.random() < 0.5:
            low = rng.randint(0, 50)
            constraints.append(Range("value", low, low + 25))
        return Filter(constraints)
    # unindexable: range-only or multi-value InSet — always fully evaluated
    if rng.random() < 0.5:
        low = rng.randint(0, 50)
        return Filter([Range("value", low, low + 25)])
    services = [f"svc-{rng.randrange(N_SERVICES)}" for _ in range(3)]
    return Filter([InSet("service", services)])


def make_notification(rng: random.Random, notification_id: int | None = None) -> Notification:
    return Notification(
        {
            "service": f"svc-{rng.randrange(N_SERVICES)}",
            "value": rng.randint(0, 100),
            "location": f"r{rng.randrange(8)}",
        },
        notification_id=notification_id,
    )


# --------------------------------------------------------------- table sweep


def bench_table(links: int, subscriptions: int, selectivity: float, notifications: int, seed: int = 0):
    rng = random.Random(seed)
    filters = [(make_filter(rng, selectivity), f"L{i % links}", f"s{i}") for i in range(subscriptions)]
    payloads = [make_notification(rng) for _ in range(notifications)]

    metrics = {}
    reference = None
    for matcher in ("brute", "indexed"):
        table = RoutingTable(matcher=matcher)
        for f, link, sub_id in filters:
            table.add(f, link, sub_id)
        results = []
        start = time.perf_counter()
        for n in payloads:
            results.append(table.destinations(n))
        elapsed = time.perf_counter() - start
        metrics[f"{matcher}_us"] = 1e6 * elapsed / notifications
        if reference is None:
            reference = results
        elif results != reference:
            raise AssertionError(
                f"matcher divergence at links={links} subs={subscriptions} sel={selectivity}"
            )
    metrics["speedup"] = metrics["brute_us"] / metrics["indexed_us"]
    return {
        "sweep": "table",
        "config": {"links": links, "subscriptions": subscriptions, "selectivity": selectivity},
        "metrics": metrics,
    }


# ------------------------------------------------------------- network sweep


def run_network(matcher: str, brokers: int, subscriptions: int, selectivity: float,
                publications: int, seed: int = 0):
    rng = random.Random(seed)
    sim = Simulator()
    network = random_tree_topology(sim, brokers, seed=seed, matcher=matcher)
    names = network.broker_names()
    subscribers = []
    for i in range(subscriptions):
        client = network.add_client(f"sub-{i}", names[i % len(names)])
        client.subscribe(make_filter(rng, selectivity))
        subscribers.append(client)
    sim.run_until_idle()
    publisher = network.add_client("pub", names[0])
    payloads = [make_notification(rng, notification_id=10_000 + i) for i in range(publications)]
    start = time.perf_counter()
    for n in payloads:
        publisher.publish(n)
    sim.run_until_idle()
    elapsed = time.perf_counter() - start
    deliveries = {
        c.name: sorted(d.notification.notification_id for d in c.deliveries) for c in subscribers
    }
    return elapsed, deliveries


def bench_network(brokers: int, subscriptions: int, selectivity: float, publications: int, seed: int = 0):
    brute_s, brute_deliveries = run_network("brute", brokers, subscriptions, selectivity, publications, seed)
    indexed_s, indexed_deliveries = run_network("indexed", brokers, subscriptions, selectivity, publications, seed)
    if brute_deliveries != indexed_deliveries:
        raise AssertionError(
            f"delivery divergence at brokers={brokers} subs={subscriptions} sel={selectivity}"
        )
    return {
        "sweep": "network",
        "config": {"brokers": brokers, "subscriptions": subscriptions, "selectivity": selectivity},
        "metrics": {
            "brute_s": brute_s,
            "indexed_s": indexed_s,
            "speedup": brute_s / indexed_s,
            "deliveries_identical": True,
        },
    }


# -------------------------------------------------------------------- driver


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="small sweep for CI smoke runs")
    parser.add_argument("--output", "-o", default=str(Path(__file__).resolve().parent.parent / "BENCH_routing.json"))
    args = parser.parse_args(argv)

    if args.fast:
        table_configs = [(4, 100, 0.9), (4, 1000, 0.9)]
        network_configs = [(4, 200, 0.9, 30)]
        notifications = 100
    else:
        table_configs = [
            (links, subs, sel)
            for links in (4, 8)
            for subs in (100, 1000, 5000)
            for sel in (0.5, 0.9, 1.0)
        ]
        network_configs = [
            (4, 200, 0.9, 100),
            (10, 200, 0.9, 100),
            (10, 1000, 0.9, 100),
        ]
        notifications = 300

    results = []
    for links, subs, sel in table_configs:
        record = bench_table(links, subs, sel, notifications)
        results.append(record)
        m = record["metrics"]
        print(
            f"table   links={links:<2} subs={subs:<5} sel={sel:<4} "
            f"brute={m['brute_us']:9.1f}us indexed={m['indexed_us']:8.1f}us "
            f"speedup={m['speedup']:6.1f}x"
        )
    for brokers, subs, sel, pubs in network_configs:
        record = bench_network(brokers, subs, sel, pubs)
        results.append(record)
        m = record["metrics"]
        print(
            f"network brokers={brokers:<2} subs={subs:<5} sel={sel:<4} "
            f"brute={m['brute_s']:7.3f}s indexed={m['indexed_s']:7.3f}s "
            f"speedup={m['speedup']:6.1f}x"
        )

    # headline: the largest selective table config (>= 1000 subscriptions)
    headline_pool = [
        r for r in results
        if r["sweep"] == "table"
        and r["config"]["subscriptions"] >= 1000
        and r["config"]["selectivity"] >= 0.9
    ]
    headline = max(headline_pool, key=lambda r: r["metrics"]["speedup"]) if headline_pool else None

    payload = {
        "benchmark": "routing_scale",
        "mode": "fast" if args.fast else "full",
        "results": results,
        "headline": headline,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if headline is not None:
        speedup = headline["metrics"]["speedup"]
        print(f"headline: {headline['config']} -> {speedup:.1f}x")
        if speedup < 3.0:
            print("WARNING: headline speedup below the 3x acceptance bar", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
