"""Transport backend benchmark: simulator vs asyncio sockets.

Measures end-to-end notification throughput and delivery-latency percentiles
of the same pub/sub workload (a line of brokers, one subscriber per broker,
one publisher) on both transport backends:

* ``sim`` — the deterministic discrete-event simulator; wall time here is
  pure matching/routing compute, with zero serialization;
* ``asyncio`` — real localhost TCP sockets; every hop pays wire
  serialization, framing and kernel socket round-trips, and the latency
  percentiles are *real* end-to-end latencies measured against the event
  loop's monotonic clock.

Every run also verifies that each subscriber received exactly the
notification set its filter promises, on both backends — the benchmark
doubles as an integration gate and exits non-zero on any miss.

Emits ``BENCH_transport.json`` (see ``--output``), consumable by
``benchmarks/compare.py``.  All wall-clock metrics are stored under
``*_sec``/``*_ops_per_sec``/``*_latency_sec`` keys, which ``compare.py``
deliberately ignores (they are machine-dependent); the CI job still runs the
comparison so that record/config drift between the committed baseline and
the current benchmark fails loudly.  Usage::

    PYTHONPATH=src python benchmarks/bench_transport.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_transport.py --fast   # CI smoke
    python benchmarks/compare.py BENCH_transport.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pubsub.testing import run_line_workload  # noqa: E402


def run_backend(backend: str, brokers: int, notifications: int):
    """Run the shared line workload on one backend; returns (metrics, mismatches).

    The workload itself (progressive AtLeast filters, per-backend latency,
    delivery verification) lives in ``repro.pubsub.testing.run_line_workload``
    and is the exact code path the ``repro net-demo`` CLI exercises.
    """
    result = run_line_workload(backend, brokers, notifications, topic="bench", payload_pad="x" * 32)
    latencies = result.all_latencies()

    def percentile(p: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(p * len(latencies)))]

    wall = result.wall_sec
    metrics = {
        "wall_sec": wall,
        "throughput_ops_per_sec": result.delivered / wall if wall > 0 else 0.0,
        "p50_latency_sec": percentile(0.50),
        "p95_latency_sec": percentile(0.95),
        "p99_latency_sec": percentile(0.99),
        "delivered_fraction": result.delivered / result.expected if result.expected else 1.0,
    }
    return metrics, result.mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="small sweep for CI smoke runs")
    parser.add_argument(
        "--output", "-o",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_transport.json"),
    )
    args = parser.parse_args(argv)

    # fast mode keeps the (3, 600) record so its config key matches the
    # committed full-sweep baseline and compare.py finds shared records
    configs = [(3, 600)]
    if not args.fast:
        configs.append((5, 2000))

    results = []
    status = 0
    for brokers, notifications in configs:
        for backend in ("sim", "asyncio"):
            metrics, mismatches = run_backend(backend, brokers, notifications)
            if mismatches:
                print(
                    f"ERROR: {mismatches} subscriber(s) missed notifications "
                    f"(backend={backend}, brokers={brokers})",
                    file=sys.stderr,
                )
                status = 1
            results.append(
                {
                    "sweep": "transport",
                    "config": {
                        "backend": backend,
                        "brokers": brokers,
                        "notifications": notifications,
                    },
                    "metrics": metrics,
                }
            )
            m = metrics
            print(
                f"transport {backend:<8} brokers={brokers} n={notifications:<6} "
                f"wall={m['wall_sec']:7.3f}s "
                f"({m['throughput_ops_per_sec']:9.0f} deliveries/s) "
                f"p50={m['p50_latency_sec'] * 1000:7.2f}ms "
                f"p95={m['p95_latency_sec'] * 1000:7.2f}ms "
                f"p99={m['p99_latency_sec'] * 1000:7.2f}ms "
                f"delivered={m['delivered_fraction']:.3f}"
            )

    payload = {
        "benchmark": "transport",
        "mode": "fast" if args.fast else "full",
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if status == 0:
        print("delivery sets verified on both backends")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
