"""Transport backend benchmark: simulator vs socket backends, per wire codec.

Measures end-to-end notification throughput and delivery-latency percentiles
of the same pub/sub workload (a line of brokers, one subscriber per broker,
one publisher) across the transport backends:

* ``sim`` — the deterministic discrete-event simulator; wall time here is
  pure matching/routing compute, with zero serialization;
* ``asyncio`` — real localhost TCP sockets; every hop pays wire
  serialization, framing and kernel socket round-trips, and the latency
  percentiles are *real* end-to-end latencies measured against the event
  loop's monotonic clock;
* ``cluster`` — one OS process per broker (full sweep only, on the headline
  config): the same workload across real process boundaries.

The socket backends run once per wire codec (``json``, the golden-trace
reference, and ``binary``, the interned-string performance codec); each
binary record carries a ``speedup`` metric — the ratio of the JSON wall time
to the binary wall time for the same backend and config, measured in the
same invocation.  ``compare.py`` gates ``speedup`` (higher is better) and
the deterministic ``*_count`` delivery totals (exact), so both the headline
codec win and the delivery sets are CI-guarded.  Each row is the best of
``--repeats`` runs: best-of damps scheduler noise, which otherwise dominates
sub-second walls on small machines.

Every run also verifies that each subscriber received exactly the
notification set its filter promises, on every backend — the benchmark
doubles as an integration gate and exits non-zero on any miss.

Emits ``BENCH_transport.json`` (see ``--output``).  Wall-clock metrics are
stored under ``*_sec``/``*_ops_per_sec``/``*_latency_sec`` keys, which
``compare.py`` deliberately ignores (they are machine-dependent).  Usage::

    PYTHONPATH=src python benchmarks/bench_transport.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_transport.py --fast   # CI smoke
    PYTHONPATH=src python benchmarks/bench_transport.py --fast --codec binary
    python benchmarks/compare.py BENCH_transport.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pubsub.testing import run_line_workload  # noqa: E402


def run_backend(backend: str, brokers: int, notifications: int, codec=None, repeats: int = 3):
    """Run the shared line workload on one backend; returns (metrics, mismatches).

    The workload itself (progressive AtLeast filters, per-backend latency,
    delivery verification) lives in ``repro.pubsub.testing.run_line_workload``
    and is the exact code path the ``repro net-demo`` CLI exercises.  The
    fastest of ``repeats`` runs is recorded; every run's delivery sets are
    verified.
    """
    best = None
    mismatches = 0
    for _ in range(max(1, repeats)):
        result = run_line_workload(
            backend, brokers, notifications, topic="bench", payload_pad="x" * 32, codec=codec
        )
        mismatches = max(mismatches, result.mismatches)
        if best is None or result.wall_sec < best.wall_sec:
            best = result
    latencies = best.all_latencies()

    def percentile(p: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(p * len(latencies)))]

    wall = best.wall_sec
    metrics = {
        "wall_sec": wall,
        "throughput_ops_per_sec": best.delivered / wall if wall > 0 else 0.0,
        "p50_latency_sec": percentile(0.50),
        "p95_latency_sec": percentile(0.95),
        "p99_latency_sec": percentile(0.99),
        "delivered_fraction": best.delivered / best.expected if best.expected else 1.0,
        "delivered_count": best.delivered,
        "expected_count": best.expected,
    }
    return metrics, mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="small sweep for CI smoke runs")
    parser.add_argument(
        "--codec",
        choices=("json", "binary", "both"),
        default="both",
        help="wire codec(s) for the socket backends (default: both; the "
        "binary rows only carry a speedup metric when json ran too)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per (backend, codec, config); the best one is recorded (default: 3)",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_transport.json"),
    )
    args = parser.parse_args(argv)

    codecs = ("json", "binary") if args.codec == "both" else (args.codec,)

    # fast mode keeps the (3, 600) record so its config key matches the
    # committed full-sweep baseline and compare.py finds shared records
    configs = [(3, 600)]
    if not args.fast:
        configs.append((5, 2000))

    results = []
    status = 0
    for brokers, notifications in configs:
        # sim rows are codec-free: the simulator passes object references and
        # never serializes, so its config key deliberately has no codec
        plan = [("sim", None)]
        backends = ["asyncio"]
        if not args.fast and (brokers, notifications) == (5, 2000):
            backends.append("cluster")  # the headline cross-process config
        for backend in backends:
            for codec in codecs:
                plan.append((backend, codec))

        walls = {}
        for backend, codec in plan:
            metrics, mismatches = run_backend(
                backend, brokers, notifications, codec=codec, repeats=args.repeats
            )
            if mismatches:
                print(
                    f"ERROR: {mismatches} subscriber(s) missed notifications "
                    f"(backend={backend}, codec={codec}, brokers={brokers})",
                    file=sys.stderr,
                )
                status = 1
            config = {
                "backend": backend,
                "brokers": brokers,
                "notifications": notifications,
            }
            note = ""
            if codec is not None:
                config["codec"] = codec
                walls[codec] = (backend, metrics["wall_sec"])
                if codec == "binary" and walls.get("json", (None,))[0] == backend:
                    metrics["speedup"] = walls["json"][1] / metrics["wall_sec"]
                    note = f"  speedup={metrics['speedup']:.2f}x vs json"
            results.append({"sweep": "transport", "config": config, "metrics": metrics})
            m = metrics
            print(
                f"transport {backend:<8} codec={codec or '-':<7} "
                f"brokers={brokers} n={notifications:<6} "
                f"wall={m['wall_sec']:7.3f}s "
                f"({m['throughput_ops_per_sec']:9.0f} deliveries/s) "
                f"p50={m['p50_latency_sec'] * 1000:7.2f}ms "
                f"p95={m['p95_latency_sec'] * 1000:7.2f}ms "
                f"delivered={m['delivered_fraction']:.3f}{note}"
            )

    payload = {
        "benchmark": "transport",
        "mode": "fast" if args.fast else "full",
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if status == 0:
        print("delivery sets verified on every backend")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
