"""Soak/chaos-fuzz benchmark: seeded schedule sweeps and resource plateaus.

Two sweeps, both fully deterministic per seed so ``benchmarks/compare.py``
can gate them exactly:

* **chaos_fuzz** — run a block of consecutive seeds through the
  property-based chaos engine (:mod:`repro.pubsub.chaosgen`) per backend and
  record the outcome under ``*_count`` keys: violations (must stay 0),
  publications, provably-lost and replayed messages, delivered totals and
  applied schedule events.  Every count is a pure function of the seeds, so
  a mismatch against the committed baseline means the generator, the
  executor or the middleware's recovery behaviour changed observably;
* **soak** — run a fixed number of soak iterations (chaos plans plus
  seed-drawn mobility workload members) and gate the resource plateau:
  ``fd_growth_count`` must be exactly 0 (no leaked sockets, pipes or
  timers across iterations) and no invariant may fire.  RSS is reported
  under ``_kb`` keys for the human reading the JSON, never gated — but the
  in-process routing/registry/link non-growth checks inside every iteration
  are part of the violation count.

Emits ``BENCH_soak.json`` (see ``--output``).  Usage::

    PYTHONPATH=src python benchmarks/bench_soak.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_soak.py --fast     # CI smoke
    python benchmarks/compare.py BENCH_soak.json new.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pubsub.chaosgen import run_chaos_fuzz, run_soak  # noqa: E402

#: seeds per backend: the sim sweep is wide, the socket backends spot-check
#: the same leading seeds (every plan is backend-agnostic by construction).
#: fast mode drops only whole backends, never seed counts, so its records
#: stay comparable against the committed full-mode baseline
FUZZ_SEEDS = {"sim": 25, "asyncio": 6, "cluster": 4}
FAST_FUZZ_SEEDS = {"sim": 25, "cluster": 4}
SOAK_ITERATIONS = {"sim": 6, "asyncio": 4}
FAST_SOAK_ITERATIONS = {"sim": 6}


def run_fuzz_sweep(backend: str, seeds: int):
    """Fuzz ``seeds`` consecutive seeds; returns (metrics, errors)."""
    errors = []
    totals = {
        "seed_count": seeds,
        "violation_count": 0,
        "published_count": 0,
        "lost_count": 0,
        "replayed_count": 0,
        "delivered_count": 0,
        "events_applied_count": 0,
    }
    started = time.perf_counter()
    for seed in range(seeds):
        report = run_chaos_fuzz(seed, backend=backend, shrink=False)
        totals["violation_count"] += len(report.violations)
        totals["published_count"] += report.result.published
        totals["lost_count"] += report.result.lost
        totals["replayed_count"] += report.result.replayed
        totals["delivered_count"] += sum(len(ids) for ids in report.result.delivered.values())
        totals["events_applied_count"] += report.result.events_applied
        if not report.ok:
            errors.append(f"[{backend}] {report.summary()}")
            for violation in report.violations:
                errors.append(f"[{backend}]   {violation}")
    totals["wall_sec"] = time.perf_counter() - started
    return totals, errors


def run_soak_block(backend: str, iterations: int):
    """Run exactly ``iterations`` soak iterations; returns (metrics, errors)."""
    errors = []
    result = run_soak(backend=backend, budget_sec=0.0, seed=0, min_iterations=iterations)
    baseline = result.plateau_baseline
    final = result.plateau_final
    metrics = {
        "iteration_count": result.iterations,
        "violation_count": len(result.violations),
        "fd_growth_count": final.get("fds", 0) - baseline.get("fds", 0),
        "rss_baseline_kb": baseline.get("rss_kb", 0),
        "rss_final_kb": final.get("rss_kb", 0),
        "wall_sec": result.wall_sec,
    }
    if not result.ok:
        for violation in result.violations:
            errors.append(f"[{backend} soak] {violation}")
        errors.append(
            f"[{backend} soak] failing seed {result.seeds[-1]}; repro: "
            f"repro chaos-fuzz --seed {result.seeds[-1]} --backend {backend}"
        )
    return metrics, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="reduced seed blocks for CI smoke runs")
    parser.add_argument(
        "--output",
        "-o",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_soak.json"),
    )
    args = parser.parse_args(argv)

    fuzz_plan = FAST_FUZZ_SEEDS if args.fast else FUZZ_SEEDS
    soak_plan = FAST_SOAK_ITERATIONS if args.fast else SOAK_ITERATIONS
    results = []
    status = 0
    for backend, seeds in fuzz_plan.items():
        metrics, errors = run_fuzz_sweep(backend, seeds)
        for error in errors:
            print(f"ERROR: {error}", file=sys.stderr)
            status = 1
        results.append(
            {
                "sweep": "chaos_fuzz",
                "config": {"backend": backend, "seeds": seeds},
                "metrics": metrics,
            }
        )
        print(
            f"chaos-fuzz {backend:<8} seeds={seeds:<3} wall={metrics['wall_sec']:6.2f}s "
            f"violations={metrics['violation_count']} "
            f"published={metrics['published_count']} lost={metrics['lost_count']} "
            f"replayed={metrics['replayed_count']} "
            f"delivered={metrics['delivered_count']}"
        )
    for backend, iterations in soak_plan.items():
        metrics, errors = run_soak_block(backend, iterations)
        for error in errors:
            print(f"ERROR: {error}", file=sys.stderr)
            status = 1
        results.append(
            {
                "sweep": "soak",
                "config": {"backend": backend, "iterations": iterations},
                "metrics": metrics,
            }
        )
        print(
            f"soak       {backend:<8} iters={metrics['iteration_count']:<3} "
            f"wall={metrics['wall_sec']:6.2f}s "
            f"violations={metrics['violation_count']} "
            f"fd_growth={metrics['fd_growth_count']} "
            f"rss={metrics['rss_baseline_kb']}->{metrics['rss_final_kb']}kb"
        )

    payload = {
        "benchmark": "soak",
        "mode": "fast" if args.fast else "full",
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if status == 0:
        print("all seeds held every invariant; resource plateaus flat")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
