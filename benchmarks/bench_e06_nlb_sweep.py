"""Benchmark/driver for experiment E6 (Sect. 4): coverage vs cost across the nlb spectrum."""

from repro.experiments import e06_nlb_sweep


def test_e06_nlb_sweep_table(experiment_runner):
    table = experiment_runner(e06_nlb_sweep.run, duration=2000.0)
    walk = {row["predictor"]: row for row in table.rows_where(workload="random-walk")}
    teleport = {row["predictor"]: row for row in table.rows_where(workload="teleport")}
    # coverage is monotone in the shadow budget
    assert walk["nlb-1"]["coverage"] == 1.0
    assert walk["flooding"]["coverage"] == 1.0
    assert walk["none"]["coverage"] == 0.0
    assert walk["nlb-1"]["mean_shadows"] < walk["nlb-2"]["mean_shadows"] < walk["flooding"]["mean_shadows"]
    # the markov predictor needs no more shadows than nlb for covered movement
    assert walk["markov"]["mean_shadows"] <= walk["nlb-1"]["mean_shadows"] + 0.5
    # teleporting clients break nlb but not flooding (the paper's exception-mode motivation)
    assert teleport["nlb-1"]["coverage"] < 0.5
    assert teleport["flooding"]["coverage"] == 1.0
