"""Benchmark/driver for experiment E4 (Sect. 3, Fig. 4): the headline comparison.

Reactive re-subscription vs the replicator's pre-subscriptions on the
car-on-a-route workload.
"""

from repro.experiments import e04_replicator


def test_e04_replicator_table(experiment_runner):
    table = experiment_runner(e04_replicator.run, duration=80.0)
    reactive = table.rows_where(variant="reactive")[0]
    replicator = table.rows_where(variant="replicator")[0]
    flooding = table.rows_where(variant="replicator-flooding")[0]
    assert replicator["missed"] < reactive["missed"]
    assert replicator["delivery_rate"] > reactive["delivery_rate"]
    assert replicator["first_delivery_latency"] < reactive["first_delivery_latency"]
    assert replicator["replayed"] > 0
    # the flooding shadow placement pays more state for (at best) equal quality
    assert flooding["shadows"] > replicator["shadows"]
