"""Fault-tolerance benchmark: chaos-recovery outcomes and recovery times.

Runs the scripted chaos storyline of :mod:`repro.pubsub.chaos` (baseline
traffic -> ``kill -9`` + supervised restart -> TCP link sever/restore ->
covering churn) on each backend and records two kinds of metrics:

* **deterministic outcomes** under ``*_count`` keys — lost/replayed
  publication counts, duplicate deliveries, resync markers and the
  transport's recovery-action counters.  ``benchmarks/compare.py`` requires
  these to match the committed baseline *exactly*, so any change to the
  recovery protocol's observable behaviour fails the CI gate;
* **recovery times** under ``*_sec`` keys — wall-clock medians/maxima for
  the crash-recover and sever-restore phases across ``--repeat`` runs.
  These are machine-dependent and deliberately ignored by the gate; they
  are recorded for the human reading the JSON.

Every run also re-checks the cross-backend convergence claim: the
post-recovery delivered sets on the real-process cluster must be identical
to the deterministic simulator's, and the benchmark exits non-zero when
they are not (or when repeats disagree on any deterministic count).

Emits ``BENCH_faults.json`` (see ``--output``).  Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_faults.py --fast     # CI smoke
    python benchmarks/compare.py BENCH_faults.json new.json
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pubsub.chaos import ChaosError, run_chaos_scenario  # noqa: E402

TEMPS = 8
DEEP = 4


def _counts(result) -> dict:
    """The deterministic outcome of one chaos run, as gated ``_count`` keys."""
    recovery = result.recovery
    return {
        "delivered_total_count": result.delivered_total(),
        "messages_lost_count": result.lost,
        "replayed_delivered_count": result.replayed,
        "duplicate_delivery_count": result.duplicates,
        "resync_marker_count": result.resync_markers,
        "kill_count": recovery.get("kills", 0),
        "restart_count": recovery.get("restarts", 0),
        "link_sever_count": recovery.get("link_severs", 0),
        "link_restore_count": recovery.get("link_restores", 0),
        "client_resubscribe_count": recovery.get("client_resubscribes", 0),
    }


def run_backend(backend: str, repeat: int):
    """Run the chaos scenario ``repeat`` times on ``backend``.

    Returns ``(metrics, delivered, errors)`` where ``delivered`` is the
    first run's post-recovery delivered sets (for the cross-backend check)
    and ``errors`` lists invariant violations and repeat disagreements.
    """
    errors = []
    counts = None
    delivered = None
    resync_forwards = None
    walls, recover_times, restore_times = [], [], []
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        try:
            result = run_chaos_scenario(backend, temps=TEMPS, deep=DEEP)
        except ChaosError as exc:
            errors.append(str(exc))
            break
        walls.append(time.perf_counter() - start)
        recover_times.append(result.phase_sec.get("recover", 0.0))
        restore_times.append(result.phase_sec.get("restore", 0.0))
        if counts is None:
            counts = _counts(result)
            delivered = result.delivered
            resync_forwards = result.resync_forwards
        elif _counts(result) != counts or result.delivered != delivered:
            errors.append(
                f"[{backend}] repeats disagree on deterministic outcomes: "
                f"{counts} vs {_counts(result)}"
            )
    if counts is None:
        return None, None, errors
    metrics = dict(counts)
    # timing-dependent on the cluster (covering state may or may not have
    # been rebuilt when a resync arrives), so reported but never gated
    metrics["resync_forwards"] = resync_forwards
    metrics["wall_sec"] = min(walls)
    metrics["recover_p50_sec"] = statistics.median(recover_times)
    metrics["recover_max_sec"] = max(recover_times)
    metrics["restore_p50_sec"] = statistics.median(restore_times)
    metrics["restore_max_sec"] = max(restore_times)
    return metrics, delivered, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="skip the asyncio backend for CI smoke runs")
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="chaos runs per backend; counts must agree across all of them (default: 3)",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_faults.json"),
    )
    args = parser.parse_args(argv)

    backends = ["sim", "cluster"] if args.fast else ["sim", "asyncio", "cluster"]
    results = []
    baseline_delivered = None
    status = 0
    for backend in backends:
        metrics, delivered, errors = run_backend(backend, args.repeat)
        for error in errors:
            print(f"ERROR: {error}", file=sys.stderr)
            status = 1
        if metrics is None:
            continue
        if backend == "sim":
            baseline_delivered = delivered
        elif baseline_delivered is not None and delivered != baseline_delivered:
            print(
                f"ERROR: [{backend}] post-recovery delivered sets diverge from "
                f"the sim baseline: {delivered} vs {baseline_delivered}",
                file=sys.stderr,
            )
            status = 1
        results.append(
            {
                "sweep": "chaos_recovery",
                "config": {"backend": backend, "temps": TEMPS, "deep": DEEP},
                "metrics": metrics,
            }
        )
        print(
            f"chaos {backend:<8} wall={metrics['wall_sec']:6.3f}s "
            f"delivered={metrics['delivered_total_count']} "
            f"lost={metrics['messages_lost_count']} "
            f"replayed={metrics['replayed_delivered_count']} "
            f"resyncs={metrics['resync_marker_count']} "
            f"recover_p50={metrics['recover_p50_sec']:.3f}s "
            f"restore_p50={metrics['restore_p50_sec']:.3f}s"
        )

    payload = {
        "benchmark": "faults",
        "mode": "fast" if args.fast else "full",
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if status == 0:
        print("post-recovery delivered sets identical across all backends")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
