"""Unified system configuration for the pub/sub middleware.

:class:`SystemConfig` is the one object that names every tunable the
broker fabric understands — matcher strategy, advertising mode, transport
backend, wire codec, socket flush cap, duplicate-suppression capacity and
the live-metrics switch.  It replaces the four-kwarg sprawl
(``matcher=/advertising=/transport=/codec=``) that used to be threaded
through :class:`~repro.pubsub.broker_network.BrokerNetwork`, the topology
builders, the workloads and every CLI demo.

The dataclass is frozen and validated at construction: an unknown name
fails *immediately* with the allowed set in the message, instead of
surfacing deep inside broker construction (the old
``BrokerNetwork(matcher="indxed")`` silent-typo hole).  ``to_dict`` /
``from_dict`` round-trip it over the wire — cluster node specs carry one,
and the ``configure`` control op ships partial overlays validated against
:data:`RUNTIME_KNOBS`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional

from repro.net.transport import RUNTIME_KNOBS, TRANSPORT_NAMES
from repro.net.wire import CODEC_NAMES
from repro.pubsub.routing import ADVERTISING_NAMES
from repro.pubsub.routing_table import MATCHER_NAMES

__all__ = ["SystemConfig", "RUNTIME_KNOBS", "DEFAULT_FLUSH_CAP", "DEFAULT_DUPLICATES_CAPACITY"]

DEFAULT_FLUSH_CAP = 64 * 1024
DEFAULT_DUPLICATES_CAPACITY = 65536

_NAME_SETS = {
    "matcher": MATCHER_NAMES,
    "advertising": ADVERTISING_NAMES,
    "transport": TRANSPORT_NAMES,
    "codec": CODEC_NAMES,
}


def _check_name(field: str, value: str) -> None:
    allowed = _NAME_SETS[field]
    if value not in allowed:
        raise ValueError(f"unknown {field} {value!r}; allowed: {', '.join(allowed)}")


def _check_positive(field: str, value: Any) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(f"{field} must be a positive integer, got {value!r}")


@dataclass(frozen=True)
class SystemConfig:
    """Every system-wide tunable, validated once, passed everywhere.

    >>> SystemConfig(matcher="brute", transport="asyncio").to_dict()["matcher"]
    'brute'
    >>> SystemConfig(matcher="indxed")
    Traceback (most recent call last):
        ...
    ValueError: unknown matcher 'indxed'; allowed: brute, indexed, interval
    """

    matcher: str = "indexed"
    advertising: str = "incremental"
    transport: str = "sim"
    codec: str = "json"
    flush_cap: int = DEFAULT_FLUSH_CAP
    duplicates_capacity: int = DEFAULT_DUPLICATES_CAPACITY
    metrics: bool = True

    def __post_init__(self) -> None:
        for field in ("matcher", "advertising", "transport", "codec"):
            _check_name(field, getattr(self, field))
        _check_positive("flush_cap", self.flush_cap)
        _check_positive("duplicates_capacity", self.duplicates_capacity)
        if not isinstance(self.metrics, bool):
            raise ValueError(f"metrics must be a bool, got {self.metrics!r}")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict, suitable for cluster node specs and ``configure``."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SystemConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys are an error."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown SystemConfig key(s) {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(sorted(known))}"
            )
        return cls(**dict(payload))

    def replace(self, **changes: Any) -> "SystemConfig":
        """A copy with ``changes`` applied (re-validated by construction)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_args(cls, ns: Any, transport: Optional[str] = None) -> "SystemConfig":
        """Build a config from an argparse namespace.

        Reads the conventional CLI attribute names when present —
        ``backend`` (transport), ``codec``, ``matcher``, ``advertising`` —
        then applies any repeatable ``--set key=value`` overlays collected
        in ``ns.set``.  ``transport`` overrides the namespace backend, for
        subcommands that resolve it themselves (e.g. ``both`` modes).
        """
        base: Dict[str, Any] = {}
        backend = transport if transport is not None else getattr(ns, "backend", None)
        if backend is not None:
            base["transport"] = backend
        for field in ("codec", "matcher", "advertising"):
            value = getattr(ns, field, None)
            if value is not None:
                base[field] = value
        config = cls(**base)
        overlays = getattr(ns, "set", None) or ()
        if overlays:
            config = config.with_overrides(overlays)
        return config

    def with_overrides(self, pairs: Iterable[str]) -> "SystemConfig":
        """Apply ``key=value`` strings (the ``--set`` flag) onto this config."""
        changes: Dict[str, Any] = {}
        known = {f.name: f for f in dataclasses.fields(self)}
        for pair in pairs:
            key, sep, raw = pair.partition("=")
            if not sep or not key:
                raise ValueError(f"--set expects key=value, got {pair!r}")
            if key not in known:
                raise ValueError(
                    f"unknown SystemConfig key {key!r}; allowed: {', '.join(sorted(known))}"
                )
            changes[key] = _coerce(key, raw)
        return self.replace(**changes) if changes else self

    def describe(self) -> str:
        """One-line human summary (used by ``repro info`` style output)."""
        return (
            f"transport={self.transport} codec={self.codec} matcher={self.matcher} "
            f"advertising={self.advertising} flush_cap={self.flush_cap} "
            f"duplicates_capacity={self.duplicates_capacity} "
            f"metrics={'on' if self.metrics else 'off'}"
        )


def _coerce(key: str, raw: str) -> Any:
    if key in ("flush_cap", "duplicates_capacity"):
        try:
            return int(raw)
        except ValueError:
            raise ValueError(f"{key} expects an integer, got {raw!r}") from None
    if key == "metrics":
        lowered = raw.lower()
        if lowered in ("1", "true", "on", "yes"):
            return True
        if lowered in ("0", "false", "off", "no"):
            return False
        raise ValueError(f"metrics expects a boolean, got {raw!r}")
    return raw
