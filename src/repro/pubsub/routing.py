"""Routing strategies.

Section 2 of the paper assumes *simple routing* — "active filters are simply
added to the routing table according to the link they belong to" and
forwarded to all other brokers — while noting that REBECA also provides the
*covering* and *merging* optimisations.  Experiment E12 reproduces that
substrate comparison, so this module implements the whole family:

* :class:`FloodingRouting` — notifications are flooded through the broker
  graph, subscriptions never leave their border broker.  The trivially
  correct baseline with maximal notification traffic.
* :class:`SimpleRouting` — every subscription is forwarded to every broker.
* :class:`IdentityRouting` — a subscription is not forwarded over a link if
  an identical filter has already been forwarded over it.
* :class:`CoveringRouting` — a subscription is not forwarded over a link if a
  *covering* filter has already been forwarded over it.
* :class:`MergingRouting` — like covering, but additionally replaces sets of
  forwarded filters by a coarser merged filter (imperfect merging: the merge
  may accept more notifications, which costs traffic but never correctness
  because border brokers still match against the clients' exact filters).

Two implementations of the subscription-control path are available (the
``advertising`` knob):

* ``"scan"`` — the baseline: every ``needs_forwarding`` query rebuilds the
  list of filters forwarded on the link and re-evaluates equality/``covers``
  against each of them, O(forwarded subscriptions) per query with full
  ``covers`` evaluations.
* ``"incremental"`` (default) — a maintained per-link
  :class:`_ForwardedFilterIndex`: a refcounted multiset of forwarded filter
  keys, distinct filters grouped by constrained attribute set (the covering
  candidate bound), a memoised ``covers`` relation, and refcounted
  constraint counts from which merging reads its merged filter without
  re-folding the merge chain.  Forwarding decisions are identical to
  ``"scan"`` — the index is a maintained view of the same state.

All strategies are stateful per broker and interact with their broker through
a narrow interface (`routing_table`, `broker_neighbors`, `forward_subscribe`,
`forward_unsubscribe`), which keeps them unit-testable with a fake broker.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Set, Tuple

from ..obs.metrics import NULL_COUNTER
from .filters import Constraint, Filter
from .notification import Notification
from .subscription import Subscription, next_subscription_id

ADVERTISING_NAMES = ("scan", "incremental")


class RoutingBroker(Protocol):
    """The part of a broker that routing strategies are allowed to see."""

    routing_table: "RoutingTable"

    def broker_neighbors(self) -> List[str]: ...

    def client_links(self) -> List[str]: ...

    def forward_subscribe(self, subscription: Subscription, link: str) -> None: ...

    def forward_unsubscribe(self, sub_id: str, filter: Filter, link: str) -> None: ...


from .routing_table import RoutingTable  # noqa: E402  (after Protocol to avoid confusion)


class _LinkAdverts:
    """The forwarded-filter state of one link, maintained incrementally.

    Tracks the multiset of filters currently advertised over the link as a
    per-(subscription, link) contribution list, aggregated three ways:

    * ``key_count``/``rep`` — refcount and one representative filter per
      distinct ``Filter.key()``; identity queries are one dict probe.
    * ``by_attrs`` — distinct filters grouped by constrained attribute set.
      ``G.covers(F)`` implies ``attrs(G) ⊆ attrs(F)``, so only buckets whose
      attribute set is a subset of the queried filter's can hold a coverer.
    * ``constraint_count``/``constraint_rep``/``total`` — per-constraint
      refcounts over the multiset; a constraint present in every advertised
      filter (count == total) is part of the merged filter, which makes the
      merge fold an O(distinct constraints) read.
    """

    __slots__ = (
        "subs",
        "key_count",
        "rep",
        "by_attrs",
        "ordered",
        "constraint_count",
        "constraint_rep",
        "total",
    )

    def __init__(self) -> None:
        self.subs: Dict[str, List[Filter]] = {}
        self.key_count: Dict[Tuple, int] = {}
        self.rep: Dict[Tuple, Filter] = {}
        self.by_attrs: Dict[frozenset, Dict[Tuple, Filter]] = {}
        # lazily sorted per-bucket probe order (see ordered_bucket)
        self.ordered: Dict[frozenset, List[Filter]] = {}
        self.constraint_count: Dict[Tuple, int] = {}
        self.constraint_rep: Dict[Tuple, Constraint] = {}
        self.total = 0

    def set_contribution(self, sub_id: str, filters: List[Filter]) -> None:
        if sub_id in self.subs:
            self.remove_contribution(sub_id)
        self.subs[sub_id] = list(filters)
        for filter in filters:
            self.total += 1
            key = filter.key()
            count = self.key_count.get(key, 0)
            self.key_count[key] = count + 1
            if count == 0:
                self.rep[key] = filter
                bucket = self.by_attrs.get(filter.attribute_set)
                if bucket is None:
                    bucket = self.by_attrs[filter.attribute_set] = {}
                bucket[key] = filter
                self.ordered.pop(filter.attribute_set, None)
            for ckey, constraint in {c.key(): c for c in filter.constraints}.items():
                ccount = self.constraint_count.get(ckey, 0)
                self.constraint_count[ckey] = ccount + 1
                if ccount == 0:
                    self.constraint_rep[ckey] = constraint

    def remove_contribution(self, sub_id: str) -> None:
        filters = self.subs.pop(sub_id, None)
        if not filters:
            return
        for filter in filters:
            self.total -= 1
            key = filter.key()
            count = self.key_count[key] - 1
            if count:
                self.key_count[key] = count
            else:
                del self.key_count[key]
                del self.rep[key]
                bucket = self.by_attrs[filter.attribute_set]
                del bucket[key]
                self.ordered.pop(filter.attribute_set, None)
                if not bucket:
                    del self.by_attrs[filter.attribute_set]
            for ckey in {c.key() for c in filter.constraints}:
                ccount = self.constraint_count[ckey] - 1
                if ccount:
                    self.constraint_count[ckey] = ccount
                else:
                    del self.constraint_count[ckey]
                    del self.constraint_rep[ckey]

    def empty(self) -> bool:
        return not self.subs

    def ordered_bucket(self, attrs: frozenset) -> List[Filter]:
        """The bucket's distinct filters, cheapest ``covers()`` probe first.

        Representatives are ordered by ascending constraint count: a filter
        with fewer constraints is both cheaper to evaluate (``covers`` loops
        over the coverer's constraints) and more likely to succeed (fewer
        conjuncts — broader filter), so probing cheapest-first front-loads
        the early exits.  The sort is computed lazily and cached until the
        bucket's membership changes.
        """
        cached = self.ordered.get(attrs)
        if cached is None:
            bucket = self.by_attrs.get(attrs)
            if not bucket:
                return []
            cached = self.ordered[attrs] = sorted(
                bucket.values(), key=lambda filter: len(filter.constraints)
            )
        return cached

    def merged_filter(self) -> Filter:
        """The constraint intersection of the advertised multiset.

        Identical (as a filter, i.e. by key) to folding ``Filter.merge`` over
        the multiset: ``merge`` keeps the constraints present in both
        operands, so the fold keeps exactly the constraints present in every
        advertised filter.
        """
        total = self.total
        return Filter(
            constraint
            for ckey, constraint in self.constraint_rep.items()
            if self.constraint_count[ckey] == total
        )


class _ForwardedFilterIndex:
    """Incrementally maintained cover structure over forwarded filters.

    One :class:`_LinkAdverts` per link plus a globally memoised ``covers``
    relation keyed by filter-key pairs (filter keys identify filters up to
    semantic equality, so the memo is sound).  The cache is cleared when it
    exceeds :data:`COVERS_CACHE_LIMIT` entries, bounding broker memory.
    """

    COVERS_CACHE_LIMIT = 1 << 20

    def __init__(self, hits=NULL_COUNTER) -> None:
        self._links: Dict[str, _LinkAdverts] = {}
        self._covers_cache: Dict[Tuple[Tuple, Tuple], bool] = {}
        # live-metrics counter bumped whenever the index answers "covered"
        # (the forwarding suppressions the incremental structure exists for)
        self._hits = hits

    # ---------------------------------------------------------- maintenance
    def set_contribution(self, sub_id: str, link: str, filters: List[Filter]) -> None:
        state = self._links.get(link)
        if state is None:
            state = self._links[link] = _LinkAdverts()
        state.set_contribution(sub_id, filters)

    def remove_contribution(self, sub_id: str, link: str) -> None:
        state = self._links.get(link)
        if state is None:
            return
        state.remove_contribution(sub_id)
        if state.empty():
            del self._links[link]

    # --------------------------------------------------------------- queries
    def has_key(self, link: str, key: Tuple) -> bool:
        state = self._links.get(link)
        return state is not None and key in state.key_count

    def covers_cached(self, coverer: Filter, coveree: Filter) -> bool:
        pair = (coverer.key(), coveree.key())
        cache = self._covers_cache
        verdict = cache.get(pair)
        if verdict is None:
            verdict = coverer.covers(coveree)
            if len(cache) >= self.COVERS_CACHE_LIMIT:
                cache.clear()
            cache[pair] = verdict
        return verdict

    def covered(self, link: str, filter: Filter) -> bool:
        """True iff some filter advertised over ``link`` covers ``filter``."""
        state = self._links.get(link)
        if state is None:
            return False
        key = filter.key()
        if key in state.key_count:
            # an identically-keyed filter is advertised over the link;
            # covers() is reflexive for every well-behaved constraint, but a
            # NaN-valued equality is not equal to itself, so evaluate the
            # (memoised) relation instead of assuming — scan mode would
            if self.covers_cached(state.rep[key], filter):
                self._hits.inc()
                return True
        attrs = filter.attribute_set
        for bucket_attrs in state.by_attrs:
            if not bucket_attrs <= attrs:
                continue
            # cheapest-first probe order: fewest-constraint reps are cheaper
            # to test and more likely to cover, so they go first
            for rep in state.ordered_bucket(bucket_attrs):
                if self.covers_cached(rep, filter):
                    self._hits.inc()
                    return True
        return False

    def count(self, link: str) -> int:
        state = self._links.get(link)
        return state.total if state is not None else 0

    def merged_filter(self, link: str) -> Filter:
        return self._links[link].merged_filter()

    def subs_on(self, link: str) -> Dict[str, List[Filter]]:
        state = self._links.get(link)
        return dict(state.subs) if state is not None else {}

    def filters_on(self, link: str) -> List[Filter]:
        """The advertised multiset of a link (test/diagnostic view)."""
        state = self._links.get(link)
        if state is None:
            return []
        return [filter for filters in state.subs.values() for filter in filters]


class RoutingStrategy:
    """Base class: subscription-forwarding behaviour shared by all strategies."""

    name = "abstract"
    #: strategies that consult the forwarded-filter set in needs_forwarding /
    #: merging; flooding and simple routing never do, so they skip the index.
    uses_advert_index = False

    def __init__(self, broker: RoutingBroker, advertising: str = "incremental", metrics=None):
        if advertising not in ADVERTISING_NAMES:
            raise ValueError(
                f"unknown advertising mode {advertising!r}; available: {ADVERTISING_NAMES}"
            )
        self.broker = broker
        self.advertising = advertising
        # the live covering-index-hits counter (a no-op when the owning
        # broker runs without a metrics registry or with metrics disabled)
        self._covering_hits = (
            metrics.counter("routing.covering_index_hits") if metrics is not None else NULL_COUNTER
        )
        # sub_id -> links this broker has forwarded the subscription to
        self._forwarded: Dict[str, Set[str]] = defaultdict(set)
        self._index: Optional[_ForwardedFilterIndex] = (
            _ForwardedFilterIndex(hits=self._covering_hits)
            if advertising == "incremental" and self.uses_advert_index
            else None
        )
        # links whose advertised set changed since the last merge fold
        self._adverts_changed: Set[str] = set()

    # ------------------------------------------------------------ subscriptions
    def handle_subscribe(self, subscription: Subscription, from_link: str) -> None:
        """Record the subscription and forward it where the strategy requires."""
        self.broker.routing_table.add_subscription(subscription, from_link)
        if subscription.sub_id in self._forwarded:
            # an already-forwarded subscription gained a routing-table entry:
            # its advertised contributions changed, in both modes
            self._refresh_contributions(subscription.sub_id)
        for link in self._forward_targets(from_link):
            if self.needs_forwarding(subscription.filter, link):
                self._do_forward(subscription, link)

    def handle_unsubscribe(self, sub_id: str, filter: Filter, from_link: str) -> None:
        """Remove the subscription's entry for ``from_link`` and propagate."""
        self.broker.routing_table.remove(sub_id, link=from_link)
        # sorted: emission order must not depend on set iteration order, so
        # runs are reproducible across processes/hash seeds (the golden-trace
        # transport cross-check hashes the delivered byte sequence)
        forwarded_links = sorted(self._forwarded.pop(sub_id, set()))
        if self._index is not None:
            for link in forwarded_links:
                self._index.remove_contribution(sub_id, link)
        self._adverts_changed.update(forwarded_links)
        for link in forwarded_links:
            self.broker.forward_unsubscribe(sub_id, filter, link)
        self._reforward_uncovered(filter, forwarded_links)

    def on_entries_removed(self, entries: Iterable) -> None:
        """The broker removed routing-table entries behind our back.

        Called after bulk removals (link detach) that bypass
        :meth:`handle_unsubscribe`, so the incremental index can re-derive
        the contributions of still-forwarded subscriptions from the live
        table (scan mode only needs the changed-adverts marks: it reads the
        table on every query).
        """
        for sub_id in {entry.sub_id for entry in entries}:
            if sub_id in self._forwarded:
                self._refresh_contributions(sub_id)

    # ------------------------------------------------------------- notifications
    def route(self, notification: Mapping, from_link: str) -> List[str]:
        """Return the links the notification must be forwarded on."""
        return self.broker.routing_table.destinations(notification, exclude=(from_link,))

    # ------------------------------------------------------------------ plumbing
    def needs_forwarding(self, filter: Filter, link: str) -> bool:
        """Strategy-specific test: must ``filter`` be advertised over ``link``?"""
        return True

    def set_advertising(self, advertising: str) -> None:
        """Switch the subscription-control implementation, rebuilding the index."""
        if advertising not in ADVERTISING_NAMES:
            raise ValueError(
                f"unknown advertising mode {advertising!r}; available: {ADVERTISING_NAMES}"
            )
        if advertising == self.advertising:
            return
        self.advertising = advertising
        if advertising == "scan" or not self.uses_advert_index:
            self._index = None
        else:
            self._index = _ForwardedFilterIndex(hits=self._covering_hits)
            for sub_id, links in self._forwarded.items():
                filters = [
                    entry.filter
                    for entry in self.broker.routing_table.entries_for_sub(sub_id)
                ]
                for link in links:
                    self._index.set_contribution(sub_id, link, filters)
        self._adverts_changed.update(
            link for links in self._forwarded.values() for link in links
        )

    def _forward_targets(self, from_link: str) -> List[str]:
        return [link for link in self.broker.broker_neighbors() if link != from_link]

    def _do_forward(self, subscription: Subscription, link: str) -> None:
        sub_id = subscription.sub_id
        self._forwarded[sub_id].add(link)
        if self._index is not None:
            self._index.set_contribution(
                sub_id,
                link,
                [entry.filter for entry in self.broker.routing_table.entries_for_sub(sub_id)],
            )
        self._adverts_changed.add(link)
        self.broker.forward_subscribe(subscription, link)

    def _refresh_contributions(self, sub_id: str) -> None:
        """A forwarded subscription's table entries changed: re-derive its
        index contributions and mark its links' advertised sets changed."""
        links = self._forwarded.get(sub_id, ())
        if self._index is not None:
            filters = [
                entry.filter
                for entry in self.broker.routing_table.entries_for_sub(sub_id)
            ]
            for link in links:
                self._index.set_contribution(sub_id, link, filters)
        self._adverts_changed.update(links)

    def _forwarded_filters(self, link: str) -> List[Filter]:
        filters = []
        for sub_id, links in self._forwarded.items():
            if link in links:
                entries = self.broker.routing_table.entries_for_sub(sub_id)
                filters.extend(entry.filter for entry in entries)
        return filters

    def _reforward_uncovered(self, removed_filter: Filter, removed_from_links: Iterable[str]) -> None:
        """After an unsubscription, re-advertise suppressed subscriptions.

        A strategy that suppressed forwarding of subscription *T* because the
        removed subscription's filter made it redundant must now forward *T*,
        otherwise upstream brokers would stop routing T's notifications.
        """
        removed_from_links = list(removed_from_links)  # consumed once per table entry
        if not removed_from_links:
            return
        table = self.broker.routing_table
        # Group candidate entries by (sub_id, link) up front: a subscription
        # with entries on several links must produce at most one shadow
        # forward per link, but every entry's filter is tried — a later
        # entry's filter may be the one that actually needs re-advertising.
        # Iteration is sorted so shadow-forward emission order is independent
        # of set/hash ordering (byte-reproducible runs).
        pending: Dict[Tuple[str, str], List] = {}
        for sub_id in sorted(table.subscription_ids()):
            forwarded = self._forwarded.get(sub_id, set())
            for entry in table.entries_for_sub(sub_id):
                for link in removed_from_links:
                    if link == entry.link or link in forwarded:
                        continue
                    pending.setdefault((sub_id, link), []).append(entry)
        for (sub_id, link), entries in pending.items():
            for entry in entries:
                if link in self._forwarded.get(sub_id, ()):
                    break  # an earlier entry already restored this pair
                if self.needs_forwarding(entry.filter, link):
                    shadow = Subscription(
                        sub_id=sub_id, filter=entry.filter, subscriber=entry.link
                    )
                    self._do_forward(shadow, link)

    def resync_link(self, link: str) -> int:
        """Re-advertise this broker's routing state over ``link`` from scratch.

        The recovery half of the paper's subscription re-sync: after the
        peer behind ``link`` lost its state (a broker process restart) or
        the connection was re-established after a severed TCP link, the
        peer's view of our advertisements is void.  Forget everything this
        strategy believes it forwarded over the link, then re-forward the
        current routing table making the same decisions a fresh boot would
        — so the peer converges back to the steady-state advertisement set.
        Returns the number of subscriptions re-forwarded.
        """
        for sub_id in [s for s, links in self._forwarded.items() if link in links]:
            links = self._forwarded[sub_id]
            links.discard(link)
            if self._index is not None:
                self._index.remove_contribution(sub_id, link)
            if not links:
                del self._forwarded[sub_id]
        self._adverts_changed.add(link)
        if link not in self.broker.broker_neighbors():
            return 0
        table = self.broker.routing_table
        count = 0
        # sorted: re-advertisement order must not depend on set iteration
        # order (byte-reproducible runs), mirroring _reforward_uncovered
        for sub_id in sorted(table.subscription_ids()):
            for entry in table.entries_for_sub(sub_id):
                if entry.link == link:
                    continue  # never echo the peer's own subscriptions back
                if link in self._forwarded.get(sub_id, ()):
                    break  # an earlier entry already re-advertised this pair
                if self.needs_forwarding(entry.filter, link):
                    shadow = Subscription(
                        sub_id=sub_id, filter=entry.filter, subscriber=entry.link
                    )
                    self._do_forward(shadow, link)
                    count += 1
        return count

    # -------------------------------------------------------------------- stats
    def forwarded_count(self) -> int:
        return sum(len(links) for links in self._forwarded.values())

    def advertised_multisets(self) -> Dict[str, List[Tuple]]:
        """The advertised filter multiset per forwarded link, as sorted keys.

        In incremental mode this reads the maintained
        :class:`_ForwardedFilterIndex`; in scan mode it rebuilds the view
        from the routing table the way every ``needs_forwarding`` query
        does.  Both modes describe the same state, so the live
        reconfiguration path asserts this view is invariant across an
        advertising-mode flip.
        """
        links = sorted({link for links in self._forwarded.values() for link in links})
        result: Dict[str, List[Tuple]] = {}
        for link in links:
            if self._index is not None:
                filters = self._index.filters_on(link)
            else:
                filters = self._forwarded_filters(link)
            result[link] = sorted((filter.key() for filter in filters), key=repr)
        return result


class FloodingRouting(RoutingStrategy):
    """Flood notifications everywhere; never forward subscriptions."""

    name = "flooding"

    def handle_subscribe(self, subscription: Subscription, from_link: str) -> None:
        # Only local knowledge: the routing table holds the entry so that the
        # border broker can deliver to its own clients.
        self.broker.routing_table.add_subscription(subscription, from_link)

    def handle_unsubscribe(self, sub_id: str, filter: Filter, from_link: str) -> None:
        self.broker.routing_table.remove(sub_id, link=from_link)

    def route(self, notification: Mapping, from_link: str) -> List[str]:
        destinations = [
            link for link in self.broker.broker_neighbors() if link != from_link
        ]
        client_targets = self.broker.routing_table.destinations(
            notification, exclude=set(self.broker.broker_neighbors()) | {from_link}
        )
        return sorted(set(destinations) | set(client_targets))

    def resync_link(self, link: str) -> int:
        # flooding never advertises subscriptions, so there is nothing to
        # re-advertise after a peer restart
        return 0


class SimpleRouting(RoutingStrategy):
    """Forward every subscription to every neighbouring broker (the paper's default)."""

    name = "simple"


class IdentityRouting(SimpleRouting):
    """Suppress forwarding of filters identical to one already forwarded on a link."""

    name = "identity"
    uses_advert_index = True

    def needs_forwarding(self, filter: Filter, link: str) -> bool:
        if self._index is not None:
            return not self._index.has_key(link, filter.key())
        return all(existing != filter for existing in self._forwarded_filters(link))


class CoveringRouting(SimpleRouting):
    """Suppress forwarding of filters covered by one already forwarded on a link."""

    name = "covering"
    uses_advert_index = True

    def needs_forwarding(self, filter: Filter, link: str) -> bool:
        if self._index is not None:
            return not self._index.covered(link, filter)
        return not any(existing.covers(filter) for existing in self._forwarded_filters(link))


class MergingRouting(CoveringRouting):
    """Covering plus imperfect merging of forwarded filters.

    When more than ``merge_threshold`` distinct filters have been forwarded on
    a link, the strategy advertises a single merged filter that covers them
    and retracts the individual advertisements.  The merge is *imperfect*
    (it may be broader than the union), which increases notification traffic
    towards this broker but never loses notifications.

    The fold is only recomputed for links whose advertised set actually
    changed since the last call (``_adverts_changed``); in incremental mode
    the merged filter is additionally read straight from the maintained
    constraint counts instead of re-folding the merge chain.
    """

    name = "merging"
    merge_threshold = 4

    def __init__(self, broker: RoutingBroker, advertising: str = "incremental", metrics=None):
        super().__init__(broker, advertising=advertising, metrics=metrics)
        # link -> merged subscription currently advertised (if any)
        self._merged_subs: Dict[str, Subscription] = {}

    def handle_subscribe(self, subscription: Subscription, from_link: str) -> None:
        super().handle_subscribe(subscription, from_link)
        for link in self._forward_targets(from_link):
            self._maybe_merge(link)

    def resync_link(self, link: str) -> int:
        # the peer lost the merged advertisement with the rest of its state;
        # drop the record so a later fold re-advertises instead of assuming
        # the peer still holds an identical merged filter
        self._merged_subs.pop(link, None)
        count = super().resync_link(link)
        self._maybe_merge(link)
        return count

    def _maybe_merge(self, link: str) -> None:
        if link not in self._adverts_changed:
            return  # advertised set unchanged since the last fold
        self._adverts_changed.discard(link)
        if self._index is not None:
            if self._index.count(link) <= self.merge_threshold:
                return
            merged_filter = self._index.merged_filter(link)
        else:
            forwarded = self._forwarded_filters(link)
            if len(forwarded) <= self.merge_threshold:
                return
            merged_filter = forwarded[0]
            for other in forwarded[1:]:
                merged_filter = merged_filter.merge(other)
        previous = self._merged_subs.get(link)
        if previous is not None and previous.filter == merged_filter:
            return
        merged = Subscription(
            sub_id=next_subscription_id("merged"),
            filter=merged_filter,
            subscriber="<merged>",
        )
        if previous is not None:
            self.broker.forward_unsubscribe(previous.sub_id, previous.filter, link)
        self.broker.forward_subscribe(merged, link)
        self._merged_subs[link] = merged
        self._retract_covered_adverts(merged_filter, link)

    def _retract_covered_adverts(self, merged_filter: Filter, link: str) -> None:
        """Retract the fine-grained advertisements now covered by the merge."""
        if self._index is not None:
            link_subs = self._index.subs_on(link)
            # iterate in _forwarded insertion order: the same retraction
            # order the scan baseline produces
            for sub_id in list(self._forwarded):
                filters = link_subs.get(sub_id)
                if filters and all(
                    self._index.covers_cached(merged_filter, filter) for filter in filters
                ):
                    self.broker.forward_unsubscribe(sub_id, filters[0], link)
                    self._forwarded[sub_id].discard(link)
                    self._index.remove_contribution(sub_id, link)
                    self._adverts_changed.add(link)
            return
        for sub_id, links in list(self._forwarded.items()):
            if link in links:
                entries = self.broker.routing_table.entries_for_sub(sub_id)
                filters = [entry.filter for entry in entries]
                if filters and all(merged_filter.covers(f) for f in filters):
                    self.broker.forward_unsubscribe(sub_id, filters[0], link)
                    links.discard(link)
                    self._adverts_changed.add(link)


STRATEGIES = {
    FloodingRouting.name: FloodingRouting,
    SimpleRouting.name: SimpleRouting,
    IdentityRouting.name: IdentityRouting,
    CoveringRouting.name: CoveringRouting,
    MergingRouting.name: MergingRouting,
}


def make_strategy(
    name: str, broker: RoutingBroker, advertising: str = "incremental", metrics=None
) -> RoutingStrategy:
    """Instantiate the routing strategy called ``name`` for ``broker``."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None
    return cls(broker, advertising=advertising, metrics=metrics)
