"""Routing strategies.

Section 2 of the paper assumes *simple routing* — "active filters are simply
added to the routing table according to the link they belong to" and
forwarded to all other brokers — while noting that REBECA also provides the
*covering* and *merging* optimisations.  Experiment E12 reproduces that
substrate comparison, so this module implements the whole family:

* :class:`FloodingRouting` — notifications are flooded through the broker
  graph, subscriptions never leave their border broker.  The trivially
  correct baseline with maximal notification traffic.
* :class:`SimpleRouting` — every subscription is forwarded to every broker.
* :class:`IdentityRouting` — a subscription is not forwarded over a link if
  an identical filter has already been forwarded over it.
* :class:`CoveringRouting` — a subscription is not forwarded over a link if a
  *covering* filter has already been forwarded over it.
* :class:`MergingRouting` — like covering, but additionally replaces sets of
  forwarded filters by a coarser merged filter (imperfect merging: the merge
  may accept more notifications, which costs traffic but never correctness
  because border brokers still match against the clients' exact filters).

All strategies are stateful per broker and interact with their broker through
a narrow interface (`routing_table`, `broker_neighbors`, `forward_subscribe`,
`forward_unsubscribe`), which keeps them unit-testable with a fake broker.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Set

from .filters import Filter
from .notification import Notification
from .subscription import Subscription, next_subscription_id


class RoutingBroker(Protocol):
    """The part of a broker that routing strategies are allowed to see."""

    routing_table: "RoutingTable"

    def broker_neighbors(self) -> List[str]: ...

    def client_links(self) -> List[str]: ...

    def forward_subscribe(self, subscription: Subscription, link: str) -> None: ...

    def forward_unsubscribe(self, sub_id: str, filter: Filter, link: str) -> None: ...


from .routing_table import RoutingTable  # noqa: E402  (after Protocol to avoid confusion)


class RoutingStrategy:
    """Base class: subscription-forwarding behaviour shared by all strategies."""

    name = "abstract"

    def __init__(self, broker: RoutingBroker):
        self.broker = broker
        # sub_id -> links this broker has forwarded the subscription to
        self._forwarded: Dict[str, Set[str]] = defaultdict(set)

    # ------------------------------------------------------------ subscriptions
    def handle_subscribe(self, subscription: Subscription, from_link: str) -> None:
        """Record the subscription and forward it where the strategy requires."""
        self.broker.routing_table.add_subscription(subscription, from_link)
        for link in self._forward_targets(from_link):
            if self.needs_forwarding(subscription.filter, link):
                self._do_forward(subscription, link)

    def handle_unsubscribe(self, sub_id: str, filter: Filter, from_link: str) -> None:
        """Remove the subscription's entry for ``from_link`` and propagate."""
        self.broker.routing_table.remove(sub_id, link=from_link)
        forwarded_links = self._forwarded.pop(sub_id, set())
        for link in forwarded_links:
            self.broker.forward_unsubscribe(sub_id, filter, link)
        self._reforward_uncovered(filter, forwarded_links)

    # ------------------------------------------------------------- notifications
    def route(self, notification: Mapping, from_link: str) -> List[str]:
        """Return the links the notification must be forwarded on."""
        return self.broker.routing_table.destinations(notification, exclude=(from_link,))

    # ------------------------------------------------------------------ plumbing
    def needs_forwarding(self, filter: Filter, link: str) -> bool:
        """Strategy-specific test: must ``filter`` be advertised over ``link``?"""
        return True

    def _forward_targets(self, from_link: str) -> List[str]:
        return [link for link in self.broker.broker_neighbors() if link != from_link]

    def _do_forward(self, subscription: Subscription, link: str) -> None:
        self._forwarded[subscription.sub_id].add(link)
        self.broker.forward_subscribe(subscription, link)

    def _forwarded_filters(self, link: str) -> List[Filter]:
        filters = []
        for sub_id, links in self._forwarded.items():
            if link in links:
                entries = self.broker.routing_table.entries_for_sub(sub_id)
                filters.extend(entry.filter for entry in entries)
        return filters

    def _reforward_uncovered(self, removed_filter: Filter, removed_from_links: Set[str]) -> None:
        """After an unsubscription, re-advertise suppressed subscriptions.

        A strategy that suppressed forwarding of subscription *T* because the
        removed subscription's filter made it redundant must now forward *T*,
        otherwise upstream brokers would stop routing T's notifications.
        """
        if not removed_from_links:
            return
        table = self.broker.routing_table
        for sub_id in list(table.subscription_ids()):
            for entry in table.entries_for_sub(sub_id):
                for link in removed_from_links:
                    if link == entry.link:
                        continue
                    if link in self._forwarded.get(sub_id, set()):
                        continue
                    if self.needs_forwarding(entry.filter, link):
                        shadow = Subscription(
                            sub_id=sub_id, filter=entry.filter, subscriber=entry.link
                        )
                        self._do_forward(shadow, link)

    # -------------------------------------------------------------------- stats
    def forwarded_count(self) -> int:
        return sum(len(links) for links in self._forwarded.values())


class FloodingRouting(RoutingStrategy):
    """Flood notifications everywhere; never forward subscriptions."""

    name = "flooding"

    def handle_subscribe(self, subscription: Subscription, from_link: str) -> None:
        # Only local knowledge: the routing table holds the entry so that the
        # border broker can deliver to its own clients.
        self.broker.routing_table.add_subscription(subscription, from_link)

    def handle_unsubscribe(self, sub_id: str, filter: Filter, from_link: str) -> None:
        self.broker.routing_table.remove(sub_id, link=from_link)

    def route(self, notification: Mapping, from_link: str) -> List[str]:
        destinations = [
            link for link in self.broker.broker_neighbors() if link != from_link
        ]
        client_targets = self.broker.routing_table.destinations(
            notification, exclude=set(self.broker.broker_neighbors()) | {from_link}
        )
        return sorted(set(destinations) | set(client_targets))


class SimpleRouting(RoutingStrategy):
    """Forward every subscription to every neighbouring broker (the paper's default)."""

    name = "simple"


class IdentityRouting(SimpleRouting):
    """Suppress forwarding of filters identical to one already forwarded on a link."""

    name = "identity"

    def needs_forwarding(self, filter: Filter, link: str) -> bool:
        return all(existing != filter for existing in self._forwarded_filters(link))


class CoveringRouting(SimpleRouting):
    """Suppress forwarding of filters covered by one already forwarded on a link."""

    name = "covering"

    def needs_forwarding(self, filter: Filter, link: str) -> bool:
        return not any(existing.covers(filter) for existing in self._forwarded_filters(link))


class MergingRouting(CoveringRouting):
    """Covering plus imperfect merging of forwarded filters.

    When more than ``merge_threshold`` distinct filters have been forwarded on
    a link, the strategy advertises a single merged filter that covers them
    and retracts the individual advertisements.  The merge is *imperfect*
    (it may be broader than the union), which increases notification traffic
    towards this broker but never loses notifications.
    """

    name = "merging"
    merge_threshold = 4

    def __init__(self, broker: RoutingBroker):
        super().__init__(broker)
        # link -> merged subscription currently advertised (if any)
        self._merged_subs: Dict[str, Subscription] = {}

    def handle_subscribe(self, subscription: Subscription, from_link: str) -> None:
        super().handle_subscribe(subscription, from_link)
        for link in self._forward_targets(from_link):
            self._maybe_merge(link)

    def _maybe_merge(self, link: str) -> None:
        forwarded = self._forwarded_filters(link)
        if len(forwarded) <= self.merge_threshold:
            return
        merged_filter = forwarded[0]
        for other in forwarded[1:]:
            merged_filter = merged_filter.merge(other)
        previous = self._merged_subs.get(link)
        if previous is not None and previous.filter == merged_filter:
            return
        merged = Subscription(
            sub_id=next_subscription_id("merged"),
            filter=merged_filter,
            subscriber="<merged>",
        )
        if previous is not None:
            self.broker.forward_unsubscribe(previous.sub_id, previous.filter, link)
        self.broker.forward_subscribe(merged, link)
        self._merged_subs[link] = merged
        # Retract the fine-grained advertisements now covered by the merge.
        for sub_id, links in list(self._forwarded.items()):
            if link in links:
                entries = self.broker.routing_table.entries_for_sub(sub_id)
                filters = [entry.filter for entry in entries]
                if filters and all(merged_filter.covers(f) for f in filters):
                    self.broker.forward_unsubscribe(sub_id, filters[0], link)
                    links.discard(link)


STRATEGIES = {
    FloodingRouting.name: FloodingRouting,
    SimpleRouting.name: SimpleRouting,
    IdentityRouting.name: IdentityRouting,
    CoveringRouting.name: CoveringRouting,
    MergingRouting.name: MergingRouting,
}


def make_strategy(name: str, broker: RoutingBroker) -> RoutingStrategy:
    """Instantiate the routing strategy called ``name`` for ``broker``."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None
    return cls(broker)
