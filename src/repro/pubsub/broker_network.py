"""Broker network topologies.

"The communication topology of the pub/sub system is given by a graph, which
is assumed to be acyclic and connected." (Sect. 2, Fig. 2)

:class:`BrokerNetwork` wires :class:`~repro.pubsub.broker.Broker` processes
together over FIFO links, registers the broker-to-broker peer relationships
(so brokers can distinguish broker links from client links) and validates the
acyclic/connected assumption.  The module also provides the standard topology
builders used by the experiments: line, star, balanced tree and random tree.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..net.link import Link, Network
from ..net.simulator import Simulator
from .broker import Broker
from .client import Client


class TopologyError(ValueError):
    """Raised when the broker graph violates the acyclic/connected assumption."""


class BrokerNetwork:
    """A set of brokers connected in an acyclic graph, plus attached clients.

    The preferred way to pick the substrate and knobs is one
    :class:`~repro.config.SystemConfig` passed as ``config=`` — it selects
    the transport backend, wire codec, matcher, advertising mode, flush cap
    and metrics switch in a single validated object.  The legacy kwargs
    (``matcher=``/``advertising=``/``transport=``/``codec=``) keep working:
    they are folded into a synthesized ``SystemConfig``, which also means a
    typo like ``matcher="indxed"`` now fails *here*, at construction, with
    the allowed names in the message.  Passing ``config=`` *and* a legacy
    knob is an error — one source of truth.

    The transport backends: ``"sim"`` / ``None`` (default) is the
    deterministic discrete-event simulator (pass ``sim`` as before, or let
    one be created); ``"asyncio"`` (or a
    :class:`~repro.net.transport.Transport` instance) runs every broker and
    client on real localhost TCP sockets with wire-serialized messages;
    ``"cluster"`` shards the broker graph across spawned OS processes
    coordinated by a TCP registry (:mod:`repro.net.cluster`) — the cluster
    boots lazily when the first client attaches, freezing the broker
    topology.  The pub/sub behaviour is identical on all backends; see
    :mod:`repro.net.transport` for the guarantees each one makes.
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        routing: str = "simple",
        link_latency: float = 0.001,
        matcher: Optional[str] = None,
        advertising: Optional[str] = None,
        transport=None,
        codec=None,
        config=None,
    ):
        from ..config import SystemConfig  # lazy: config imports this package

        if config is not None:
            clashing = [
                knob
                for knob, value in (("matcher", matcher), ("advertising", advertising), ("codec", codec))
                if value is not None
            ]
            if clashing:
                raise ValueError(
                    f"got config= and legacy knob(s) {', '.join(clashing)}; "
                    "fold them into the SystemConfig (config.replace(...)) instead"
                )
            if not isinstance(config, SystemConfig):
                raise TypeError(f"config must be a SystemConfig, got {type(config).__name__}")
            if transport is None:
                transport = config.transport
            self.network = Network(sim=sim, transport=transport, codec=config.codec)
        else:
            # legacy kwargs: synthesize the equivalent SystemConfig so the
            # knobs are validated up front and the control plane (metrics,
            # runtime reconfiguration) is uniformly available
            self.network = Network(sim=sim, transport=transport, codec=codec)
            resolved_codec = getattr(self.network.transport, "codec", None)
            config = SystemConfig(
                matcher=matcher if matcher is not None else "indexed",
                advertising=advertising if advertising is not None else "incremental",
                transport=self.network.transport.name,
                codec=resolved_codec.name if resolved_codec is not None else "json",
            )
        self.config = config
        self.routing = routing
        self.link_latency = link_latency
        self.matcher = config.matcher
        self.advertising = config.advertising
        self.transport = self.network.transport
        self.transport.apply_config(config)
        self.sim = self.network.sim
        self.brokers: Dict[str, Broker] = {}
        self.clients: Dict[str, Client] = {}
        self._broker_edges: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------ build
    def add_broker(
        self,
        name: str,
        routing: Optional[str] = None,
        matcher: Optional[str] = None,
        advertising: Optional[str] = None,
    ) -> Broker:
        """Create and register a broker process.

        The transport decides what a "broker process" is: the in-process
        backends return a real :class:`~repro.pubsub.broker.Broker`, the
        ``"cluster"`` backend a :class:`~repro.net.cluster.RemoteBroker`
        proxy whose broker runs in its own spawned OS process.
        """
        broker = self.transport.build_broker(
            name,
            routing=routing or self.routing,
            matcher=matcher or self.matcher,
            advertising=advertising or self.advertising,
        )
        self.brokers[name] = broker
        self.network.add_process(broker)
        return broker

    def connect_brokers(self, a: str, b: str, latency: Optional[float] = None) -> Link:
        """Create a broker-to-broker link and register the peer relation on both ends."""
        if a not in self.brokers or b not in self.brokers:
            raise KeyError(f"both {a!r} and {b!r} must be brokers in this network")
        link = self.network.connect(
            a, b, latency=latency if latency is not None else self.link_latency
        )
        self.brokers[a].register_broker_peer(b)
        self.brokers[b].register_broker_peer(a)
        self._broker_edges.append((a, b))
        return link

    def add_client(self, name: str, broker_name: str, latency: Optional[float] = None) -> Client:
        """Create a client process and attach it to a border broker."""
        client = Client(self.sim, name)
        self.clients[name] = client
        self.network.add_process(client)
        self.attach_client(client, broker_name, latency=latency)
        return client

    def attach_client(
        self, client: Client, broker_name: str, latency: Optional[float] = None
    ) -> Link:
        """Attach an existing client process to ``broker_name`` and connect its local broker."""
        if broker_name not in self.brokers:
            raise KeyError(f"{broker_name!r} is not a broker in this network")
        if client.name not in self.network.processes:
            self.network.add_process(client)
            self.clients[client.name] = client
        link = self.network.connect(
            client.name, broker_name, latency=latency if latency is not None else self.link_latency
        )
        client.connect_to(broker_name)
        return link

    def add_process(self, process) -> None:
        """Register a non-broker, non-client process (e.g. a replicator)."""
        self.network.add_process(process)

    def connect_processes(self, a: str, b: str, latency: Optional[float] = None) -> Link:
        """Create a link between two arbitrary registered processes."""
        return self.network.connect(
            a, b, latency=latency if latency is not None else self.link_latency
        )

    # -------------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise :class:`TopologyError` unless the broker graph is acyclic and connected."""
        names = list(self.brokers.keys())
        if not names:
            return
        edges = self._broker_edges
        if len(edges) != len(names) - 1:
            raise TopologyError(
                f"an acyclic connected graph over {len(names)} brokers needs exactly "
                f"{len(names) - 1} edges, found {len(edges)}"
            )
        adjacency: Dict[str, List[str]] = {name: [] for name in names}
        for a, b in edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        seen = set()
        stack = [names[0]]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(peer for peer in adjacency[node] if peer not in seen)
        if seen != set(names):
            missing = sorted(set(names) - seen)
            raise TopologyError(f"broker graph is not connected; unreachable: {missing}")

    # ------------------------------------------------------------------ views
    def broker_edges(self) -> List[Tuple[str, str]]:
        return list(self._broker_edges)

    def broker_names(self) -> List[str]:
        return sorted(self.brokers.keys())

    def border_brokers(self) -> List[Broker]:
        return [broker for broker in self.brokers.values() if broker.is_border]

    def neighbors_of(self, broker_name: str) -> List[str]:
        """Broker-graph neighbourhood of a broker (used as a default movement graph)."""
        result = []
        for a, b in self._broker_edges:
            if a == broker_name:
                result.append(b)
            elif b == broker_name:
                result.append(a)
        return sorted(result)

    # ------------------------------------------------------------------ stats
    def total_messages(self, kind: Optional[str] = None) -> int:
        return self.network.total_messages(kind)

    def total_bytes(self) -> int:
        return self.network.total_bytes()

    def broker_link_messages(self, kind: Optional[str] = None) -> int:
        """Messages that crossed broker-to-broker links only (network load metric)."""
        total = 0
        for a, b in self._broker_edges:
            link = self.network.link_between(a, b)
            if link is None:
                continue
            total += link.total_messages() if kind is None else link.messages_of_kind(kind)
        return total

    def total_routing_table_size(self) -> int:
        return sum(broker.routing_table_size() for broker in self.brokers.values())

    def run(self, until: Optional[float] = None) -> float:
        """Convenience passthrough to the transport's clock."""
        return self.sim.run(until=until)

    def run_until_idle(self) -> float:
        """Drive the substrate until no traffic or scheduled work remains."""
        return self.transport.run_until_idle()

    def close(self) -> None:
        """Release substrate resources (a no-op on the simulator backend)."""
        self.transport.close()


# ----------------------------------------------------------------- topologies


def line_topology(
    sim: Optional[Simulator] = None,
    n_brokers: int = 2,
    routing: str = "simple",
    link_latency: float = 0.001,
    prefix: str = "B",
    matcher: Optional[str] = None,
    advertising: Optional[str] = None,
    transport=None,
    codec=None,
    config=None,
) -> BrokerNetwork:
    """Brokers connected in a chain: B1 - B2 - ... - Bn."""
    net = BrokerNetwork(
        sim,
        routing=routing,
        link_latency=link_latency,
        matcher=matcher,
        advertising=advertising,
        transport=transport,
        codec=codec,
        config=config,
    )
    names = [f"{prefix}{i + 1}" for i in range(n_brokers)]
    for name in names:
        net.add_broker(name)
    for left, right in zip(names, names[1:]):
        net.connect_brokers(left, right)
    net.validate()
    return net


def star_topology(
    sim: Optional[Simulator] = None,
    n_leaves: int = 2,
    routing: str = "simple",
    link_latency: float = 0.001,
    prefix: str = "B",
    matcher: Optional[str] = None,
    advertising: Optional[str] = None,
    transport=None,
    codec=None,
    config=None,
) -> BrokerNetwork:
    """One hub broker connected to ``n_leaves`` border brokers."""
    net = BrokerNetwork(
        sim,
        routing=routing,
        link_latency=link_latency,
        matcher=matcher,
        advertising=advertising,
        transport=transport,
        codec=codec,
        config=config,
    )
    hub = net.add_broker(f"{prefix}0")
    for i in range(n_leaves):
        leaf = net.add_broker(f"{prefix}{i + 1}")
        net.connect_brokers(hub.name, leaf.name)
    net.validate()
    return net


def balanced_tree_topology(
    sim: Optional[Simulator] = None,
    branching: int = 2,
    depth: int = 1,
    routing: str = "simple",
    link_latency: float = 0.001,
    prefix: str = "B",
    matcher: Optional[str] = None,
    advertising: Optional[str] = None,
    transport=None,
    codec=None,
    config=None,
) -> BrokerNetwork:
    """A balanced tree of brokers with the given branching factor and depth."""
    if branching < 1 or depth < 0:
        raise ValueError("branching must be >= 1 and depth >= 0")
    net = BrokerNetwork(
        sim,
        routing=routing,
        link_latency=link_latency,
        matcher=matcher,
        advertising=advertising,
        transport=transport,
        codec=codec,
        config=config,
    )
    counter = 0

    def make(depth_left: int, parent: Optional[str]) -> None:
        nonlocal counter
        counter += 1
        name = f"{prefix}{counter}"
        net.add_broker(name)
        if parent is not None:
            net.connect_brokers(parent, name)
        if depth_left > 0:
            for _ in range(branching):
                make(depth_left - 1, name)

    make(depth, None)
    net.validate()
    return net


def random_tree_topology(
    sim: Optional[Simulator] = None,
    n_brokers: int = 2,
    routing: str = "simple",
    link_latency: float = 0.001,
    seed: int = 0,
    prefix: str = "B",
    matcher: Optional[str] = None,
    advertising: Optional[str] = None,
    transport=None,
    codec=None,
    config=None,
) -> BrokerNetwork:
    """A uniformly random tree over ``n_brokers`` brokers (random attachment)."""
    rng = random.Random(seed)
    net = BrokerNetwork(
        sim,
        routing=routing,
        link_latency=link_latency,
        matcher=matcher,
        advertising=advertising,
        transport=transport,
        codec=codec,
        config=config,
    )
    names = [f"{prefix}{i + 1}" for i in range(n_brokers)]
    for name in names:
        net.add_broker(name)
    for i in range(1, n_brokers):
        parent = names[rng.randrange(i)]
        net.connect_brokers(parent, names[i])
    net.validate()
    return net


def grid_border_topology(
    sim: Optional[Simulator] = None,
    rows: int = 1,
    cols: int = 2,
    routing: str = "simple",
    link_latency: float = 0.001,
    prefix: str = "B",
    matcher: Optional[str] = None,
    advertising: Optional[str] = None,
    transport=None,
    codec=None,
    config=None,
) -> Tuple[BrokerNetwork, Dict[Tuple[int, int], str]]:
    """A broker per grid cell as a spanning tree (row backbones joined by the first column).

    Returns the network and a mapping from ``(row, col)`` cells to broker
    names.  The physical adjacency of the grid (4-neighbourhood) is what
    movement graphs are typically built from, while the broker *network*
    stays an acyclic tree as the paper requires.
    """
    net = BrokerNetwork(
        sim,
        routing=routing,
        link_latency=link_latency,
        matcher=matcher,
        advertising=advertising,
        transport=transport,
        codec=codec,
        config=config,
    )
    cells: Dict[Tuple[int, int], str] = {}
    for r in range(rows):
        for c in range(cols):
            name = f"{prefix}_{r}_{c}"
            net.add_broker(name)
            cells[(r, c)] = name
    for r in range(rows):
        for c in range(1, cols):
            net.connect_brokers(cells[(r, c - 1)], cells[(r, c)])
    for r in range(1, rows):
        net.connect_brokers(cells[(r - 1, 0)], cells[(r, 0)])
    net.validate()
    return net, cells
