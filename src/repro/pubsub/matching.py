"""Matching engine: find the subscriptions matched by a notification.

Brokers match every incoming notification against their routing table and —
at border brokers — against the subscriptions of locally attached clients.
The engine below keeps matching independent from routing so it can be unit
tested and benchmarked in isolation (experiment E1/E12 use it directly).

Two strategies are provided:

* :class:`BruteForceMatcher` — evaluates every registered filter; the
  baseline, always correct.
* :class:`AttributeIndexMatcher` — a pre-selection index on equality
  constraints (the "counting / pre-filtering" family of algorithms referenced
  by the paper via [16]).  Candidates are pre-selected by the value of one
  indexed equality attribute per filter and only those candidates are fully
  evaluated, so results are identical to brute force.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from .filters import Equals, Filter, InSet
from .notification import Notification
from .subscription import Subscription


def pick_index_key(filter: Filter) -> Optional[Tuple[str, object]]:
    """Choose one hashable ``(attribute, value)`` equality pair as index key.

    A filter can be pre-selected by an equality constraint (``Equals`` or a
    single-value ``InSet``): it can only match notifications that carry
    exactly that value for the attribute.  Returns ``None`` when the filter
    has no such constraint — those filters must always be evaluated.

    Shared by :class:`AttributeIndexMatcher` and the routing table's per-link
    index (:mod:`repro.pubsub.routing_table`).
    """
    for constraint in filter.constraints:
        if isinstance(constraint, Equals):
            try:
                hash(constraint.value)
            except TypeError:
                continue
            return (constraint.attribute, constraint.value)
        if isinstance(constraint, InSet) and len(constraint.values) == 1:
            (value,) = tuple(constraint.values)
            try:
                hash(value)
            except TypeError:
                continue
            return (constraint.attribute, value)
    return None


class BruteForceMatcher:
    """Evaluate every registered subscription on every notification."""

    def __init__(self) -> None:
        self._subscriptions: Dict[str, Subscription] = {}

    def add(self, subscription: Subscription) -> None:
        self._subscriptions[subscription.sub_id] = subscription

    def remove(self, sub_id: str) -> Optional[Subscription]:
        return self._subscriptions.pop(sub_id, None)

    def clear(self) -> None:
        self._subscriptions.clear()

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._subscriptions

    @property
    def subscriptions(self) -> List[Subscription]:
        return list(self._subscriptions.values())

    def match(self, notification: Mapping) -> List[Subscription]:
        """Return all subscriptions whose filter matches ``notification``."""
        return [sub for sub in self._subscriptions.values() if sub.filter.matches(notification)]

    def matching_ids(self, notification: Mapping) -> Set[str]:
        return {sub.sub_id for sub in self.match(notification)}


class AttributeIndexMatcher:
    """Pre-select candidate subscriptions by one indexed equality attribute.

    For each filter, one ``Equals``/single-value ``InSet`` constraint is
    chosen as the index key.  At match time only subscriptions whose index key
    agrees with the notification (plus all unindexable subscriptions) are
    evaluated in full, which keeps the result identical to brute force while
    skipping most non-matching filters on selective workloads.
    """

    def __init__(self) -> None:
        self._by_key: Dict[Tuple[str, object], Dict[str, Subscription]] = defaultdict(dict)
        self._unindexed: Dict[str, Subscription] = {}
        self._index_of: Dict[str, Optional[Tuple[str, object]]] = {}
        self.full_evaluations = 0

    # ------------------------------------------------------------------ admin
    def add(self, subscription: Subscription) -> None:
        key = self._pick_index_key(subscription.filter)
        self._index_of[subscription.sub_id] = key
        if key is None:
            self._unindexed[subscription.sub_id] = subscription
        else:
            self._by_key[key][subscription.sub_id] = subscription

    def remove(self, sub_id: str) -> Optional[Subscription]:
        key = self._index_of.pop(sub_id, None)
        if key is None:
            return self._unindexed.pop(sub_id, None)
        bucket = self._by_key.get(key, {})
        removed = bucket.pop(sub_id, None)
        if not bucket and key in self._by_key:
            del self._by_key[key]
        return removed

    def clear(self) -> None:
        self._by_key.clear()
        self._unindexed.clear()
        self._index_of.clear()

    def __len__(self) -> int:
        return len(self._index_of)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._index_of

    @property
    def subscriptions(self) -> List[Subscription]:
        subs = list(self._unindexed.values())
        for bucket in self._by_key.values():
            subs.extend(bucket.values())
        return subs

    # --------------------------------------------------------------- matching
    def match(self, notification: Mapping) -> List[Subscription]:
        candidates: List[Subscription] = list(self._unindexed.values())
        for (attribute, value), bucket in self._candidate_buckets(notification):
            candidates.extend(bucket.values())
        matched = []
        for sub in candidates:
            self.full_evaluations += 1
            if sub.filter.matches(notification):
                matched.append(sub)
        return matched

    def matching_ids(self, notification: Mapping) -> Set[str]:
        return {sub.sub_id for sub in self.match(notification)}

    def _candidate_buckets(self, notification: Mapping):
        """Buckets keyed by the notification's own attribute/value pairs.

        O(notification attributes) dictionary probes instead of a scan over
        every distinct index key.  Unhashable attribute values cannot appear
        as index keys (``pick_index_key`` refuses them), so they are skipped.
        """
        by_key = self._by_key
        if not by_key:
            return
        for attribute, value in notification.items():
            try:
                bucket = by_key.get((attribute, value))
            except TypeError:  # unhashable notification value
                continue
            if bucket:
                yield (attribute, value), bucket

    # ------------------------------------------------------------------ index
    _pick_index_key = staticmethod(pick_index_key)


def cross_check(
    matchers: Iterable, notifications: Iterable[Notification]
) -> bool:
    """Return True iff all matchers agree on every notification (test helper)."""
    matchers = list(matchers)
    for notification in notifications:
        reference = matchers[0].matching_ids(notification)
        for other in matchers[1:]:
            if other.matching_ids(notification) != reference:
                return False
    return True
