"""Matching engine: find the subscriptions matched by a notification.

Brokers match every incoming notification against their routing table and —
at border brokers — against the subscriptions of locally attached clients.
The engine below keeps matching independent from routing so it can be unit
tested and benchmarked in isolation (experiment E1/E12 use it directly).

Two strategies are provided:

* :class:`BruteForceMatcher` — evaluates every registered filter; the
  baseline, always correct.
* :class:`AttributeIndexMatcher` — a pre-selection index on equality
  constraints (the "counting / pre-filtering" family of algorithms referenced
  by the paper via [16]).  Candidates are pre-selected by the value of one
  indexed equality attribute per filter and only those candidates are fully
  evaluated, so results are identical to brute force.  Filters without an
  equality constraint but with a :class:`~repro.pubsub.filters.Range`
  constraint are candidate-pruned through :class:`RangeSegmentIndex`
  (sorted boundaries + bisect) instead of landing in the always-evaluated
  fallback set.

:class:`RangeSegmentIndex` is shared with the routing table's per-link index
(:mod:`repro.pubsub.routing_table`), exactly like :func:`pick_index_key`.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from .filters import Equals, Filter, InSet, Range
from .notification import Notification
from .subscription import Subscription


def pick_index_key(filter: Filter) -> Optional[Tuple[str, object]]:
    """Choose one hashable ``(attribute, value)`` equality pair as index key.

    A filter can be pre-selected by an equality constraint (``Equals`` or a
    single-value ``InSet``): it can only match notifications that carry
    exactly that value for the attribute.  Returns ``None`` when the filter
    has no such constraint — those filters must always be evaluated.

    Shared by :class:`AttributeIndexMatcher` and the routing table's per-link
    index (:mod:`repro.pubsub.routing_table`).
    """
    for constraint in filter.constraints:
        if isinstance(constraint, Equals):
            try:
                hash(constraint.value)
            except TypeError:
                continue
            return (constraint.attribute, constraint.value)
        if isinstance(constraint, InSet) and len(constraint.values) == 1:
            (value,) = tuple(constraint.values)
            try:
                hash(value)
            except TypeError:
                continue
            return (constraint.attribute, value)
    return None


def pick_range_constraint(filter: Filter) -> Optional[Range]:
    """Choose the best ``Range`` constraint for segment-bucket pre-selection.

    Used for filters :func:`pick_index_key` rejects (no usable equality
    constraint): such a filter can still be candidate-pruned by one of its
    range constraints, because it only matches notifications whose value for
    that attribute lies inside the range.  Prefers the most selective range
    (two finite bounds beat one, one beats none); returns ``None`` when the
    filter has no range constraint at all.
    """
    best: Optional[Range] = None
    best_score = -1
    for constraint in filter.constraints:
        if isinstance(constraint, Range):
            score = (constraint.low != -math.inf) + (constraint.high != math.inf)
            if score == 2:
                return constraint
            if score > best_score:
                best, best_score = constraint, score
    return best


class RangeSegmentIndex:
    """Interval-stabbing index over the ``Range`` constraints of one attribute.

    The classic segment-bucket scheme: the sorted list of distinct finite
    range boundaries partitions the number line into elementary segments
    (alternating open gaps and boundary points); within one segment the set
    of ranges containing a value is constant.  A query is one ``bisect`` into
    the boundary list plus a walk over the precomputed member list of the
    selected segment — a superset of the true matches (endpoint inclusivity
    is ignored here), made exact by the full filter evaluation that follows.

    Mutations mark the index dirty; the segment lists are rebuilt lazily on
    the next query, so bulk churn never pays per-operation rebuild costs.
    Heavily overlapping ranges would make the per-segment member lists
    quadratic, so the rebuild *coarsens* the boundary list (halving its
    resolution) until the total membership fits ``MAX_SLOTS_PER_ENTRY``
    slots per entry — candidate sets get less selective but stay supersets,
    and memory stays linear in the entry count.
    """

    __slots__ = ("_entries", "_dirty", "_bounds", "_segments")

    MAX_SLOTS_PER_ENTRY = 32

    def __init__(self) -> None:
        # id -> (low, high, payload)
        self._entries: Dict[str, Tuple[float, float, object]] = {}
        self._dirty = False
        self._bounds: List[float] = []
        self._segments: List[List[object]] = []

    def add(self, entry_id: str, constraint: Range, payload: object) -> None:
        low, high = constraint.bounds()
        self._entries[entry_id] = (low, high, payload)
        self._dirty = True

    def discard(self, entry_id: str) -> None:
        if self._entries.pop(entry_id, None) is not None:
            self._dirty = True

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, entry_id: str) -> Optional[object]:
        entry = self._entries.get(entry_id)
        return entry[2] if entry is not None else None

    def payloads(self) -> List[object]:
        return [payload for (_low, _high, payload) in self._entries.values()]

    @staticmethod
    def _segment_of(bounds: List[float], value: float) -> int:
        """Elementary-segment index of ``value``: even indices are the open
        gaps between boundaries, odd indices the boundary points themselves."""
        i = bisect_left(bounds, value)
        if i < len(bounds) and bounds[i] == value:
            return 2 * i + 1
        return 2 * i

    def _rebuild(self) -> None:
        self._dirty = False
        entries = self._entries
        bounds = sorted(
            {
                bound
                for (low, high, _payload) in entries.values()
                for bound in (low, high)
                if -math.inf < bound < math.inf
            }
        )
        budget = self.MAX_SLOTS_PER_ENTRY * len(entries) + 64
        while True:
            n_segments = 2 * len(bounds) + 1
            spans = []
            total = 0
            for low, high, payload in entries.values():
                start = 0 if low == -math.inf else self._segment_of(bounds, low)
                end = n_segments - 1 if high == math.inf else self._segment_of(bounds, high)
                spans.append((start, end, payload))
                total += end - start + 1
            if total <= budget or len(bounds) <= 8:
                break
            bounds = bounds[::2]  # coarsen: halve the boundary resolution
        self._bounds = bounds
        segments: List[List[object]] = [[] for _ in range(2 * len(bounds) + 1)]
        for start, end, payload in spans:
            for segment in range(start, end + 1):
                segments[segment].append(payload)
        self._segments = segments

    def candidates(self, value: object) -> List[object]:
        """Payloads of the ranges that may contain ``value`` (a superset)."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return []  # a Range constraint never matches a non-numeric value
        if value != value:
            return []  # NaN lies inside no interval (and would misbisect)
        if self._dirty:
            self._rebuild()
        if not self._segments:
            return []
        return self._segments[self._segment_of(self._bounds, value)]


class IntervalBucketIndex:
    """Incrementally-maintained interval-stabbing index (bucketed boundaries).

    The churn-proof sibling of :class:`RangeSegmentIndex`: instead of a
    lazily rebuilt elementary-segment table (O(n log n) on the first query
    after *any* mutation), the number line is partitioned into buckets by a
    monotonically growing sorted cut list, and every range is stored in each
    bucket it overlaps.  Insert and remove are two ``bisect`` calls plus a
    handful of dict operations; a query is one ``bisect`` into the cut list
    plus the member dict of one bucket — no rebuild, ever.

    Local repair keeps buckets small: when an insert pushes a bucket past
    ``MAX_BUCKET`` entries, the bucket is split at the median of the member
    bounds falling strictly inside it (one ``repairs`` increment, reported
    through the optional ``repair_counter`` as ``index.repair``).  Ranges
    that would straddle more than ``MAX_SPAN`` buckets at insert time go
    into the always-scanned ``wide`` set instead — the incremental analogue
    of the segment index's self-coarsening fallback, so heavily overlapping
    workloads degrade to linear scans of those entries rather than to
    quadratic bucket membership.  A bucket whose members cannot be separated
    (e.g. all-identical point intervals) refuses to split and backs off
    until it doubles, so degenerate workloads cannot trigger repeated O(n)
    split attempts.

    Candidate sets are supersets exactly like the segment index (endpoint
    inclusivity is ignored; the full filter evaluation downstream restores
    exactness), and each entry is yielded at most once per query: a narrow
    entry lives in many buckets but a value stabs exactly one, and wide
    entries live only in ``wide``.
    """

    __slots__ = ("_entries", "_cuts", "_buckets", "_retry_at", "_wide", "repairs", "repair_counter")

    MAX_BUCKET = 24
    MAX_SPAN = 4

    def __init__(self, repair_counter: object = None) -> None:
        # id -> (low, high, payload, wide)
        self._entries: Dict[str, Tuple[float, float, object, bool]] = {}
        self._cuts: List[float] = []  # bucket i covers (cuts[i-1], cuts[i]]
        self._buckets: List[Dict[str, object]] = [{}]
        #: per-bucket size below which a failed split is not re-attempted
        self._retry_at: List[int] = [0]
        self._wide: Dict[str, object] = {}
        self.repairs = 0
        #: optional live metrics Counter observing every split
        self.repair_counter = repair_counter

    def add(self, entry_id: str, constraint: Range, payload: object) -> None:
        if entry_id in self._entries:
            self.discard(entry_id)
        low, high = constraint.bounds()
        cuts = self._cuts
        lo = bisect_left(cuts, low)
        hi = bisect_left(cuts, high)
        if hi - lo >= self.MAX_SPAN:
            self._entries[entry_id] = (low, high, payload, True)
            self._wide[entry_id] = payload
            return
        self._entries[entry_id] = (low, high, payload, False)
        buckets = self._buckets
        for i in range(lo, hi + 1):
            buckets[i][entry_id] = payload
        # repair right-to-left so a split (which inserts at i + 1) never
        # shifts a bucket index this loop still has to visit
        for i in range(hi, lo - 1, -1):
            if len(buckets[i]) > self.MAX_BUCKET and len(buckets[i]) >= self._retry_at[i]:
                self._split(i)

    def discard(self, entry_id: str) -> None:
        entry = self._entries.pop(entry_id, None)
        if entry is None:
            return
        low, high, _payload, wide = entry
        if wide:
            self._wide.pop(entry_id, None)
        else:
            cuts = self._cuts
            buckets = self._buckets
            for i in range(bisect_left(cuts, low), bisect_left(cuts, high) + 1):
                buckets[i].pop(entry_id, None)
        if not self._entries:
            # compaction: cuts only ever grow, so reset once the index drains
            self._cuts = []
            self._buckets = [{}]
            self._retry_at = [0]
            self._wide = {}

    def _split(self, i: int) -> None:
        """Split bucket ``i`` at the median interior bound (local repair)."""
        bucket = self._buckets[i]
        cuts = self._cuts
        entries = self._entries
        bucket_lo = cuts[i - 1] if i > 0 else -math.inf
        bucket_hi = cuts[i] if i < len(cuts) else math.inf
        points = sorted(
            {
                bound
                for entry_id in bucket
                for bound in entries[entry_id][:2]
                if bucket_lo < bound < bucket_hi
            }
        )
        if not points:
            # unsplittable (members span the bucket or share one boundary):
            # back off until the bucket doubles before trying again
            self._retry_at[i] = 2 * len(bucket)
            return
        cut = points[len(points) // 2]
        left: Dict[str, object] = {}
        right: Dict[str, object] = {}
        for entry_id, payload in bucket.items():
            low, high = entries[entry_id][0], entries[entry_id][1]
            if low <= cut:
                left[entry_id] = payload
            if high > cut:
                right[entry_id] = payload
        cuts.insert(i, cut)
        self._buckets[i : i + 1] = [left, right]
        self._retry_at[i : i + 1] = [0, 0]
        self.repairs += 1
        counter = self.repair_counter
        if counter is not None:
            counter.inc()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, entry_id: str) -> Optional[object]:
        entry = self._entries.get(entry_id)
        return entry[2] if entry is not None else None

    def payloads(self) -> List[object]:
        return [payload for (_low, _high, payload, _wide) in self._entries.values()]

    def candidates(self, value: object) -> List[object]:
        """Payloads of the ranges that may contain ``value`` (a superset)."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return []  # a Range constraint never matches a non-numeric value
        if value != value:
            return []  # NaN lies inside no interval
        cuts = self._cuts
        bucket = self._buckets[bisect_left(cuts, value)] if cuts else self._buckets[0]
        wide = self._wide
        if not wide:
            return list(bucket.values())
        out = list(bucket.values())
        out.extend(wide.values())
        return out


#: range-index implementations selectable per matcher: ``"segment"`` is the
#: lazily rebuilt :class:`RangeSegmentIndex` (the ``"indexed"`` matcher),
#: ``"interval"`` the incrementally maintained :class:`IntervalBucketIndex`
RANGE_INDEX_NAMES = ("segment", "interval")


def make_range_index(name: str, repair_counter: object = None):
    """Instantiate the range index selected by ``name`` (see RANGE_INDEX_NAMES)."""
    if name == "segment":
        return RangeSegmentIndex()
    if name == "interval":
        return IntervalBucketIndex(repair_counter=repair_counter)
    raise ValueError(f"unknown range index {name!r}; available: {RANGE_INDEX_NAMES}")


class BruteForceMatcher:
    """Evaluate every registered subscription on every notification."""

    def __init__(self) -> None:
        self._subscriptions: Dict[str, Subscription] = {}

    def add(self, subscription: Subscription) -> None:
        self._subscriptions[subscription.sub_id] = subscription

    def remove(self, sub_id: str) -> Optional[Subscription]:
        return self._subscriptions.pop(sub_id, None)

    def clear(self) -> None:
        self._subscriptions.clear()

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._subscriptions

    @property
    def subscriptions(self) -> List[Subscription]:
        return list(self._subscriptions.values())

    def match(self, notification: Mapping) -> List[Subscription]:
        """Return all subscriptions whose filter matches ``notification``."""
        return [sub for sub in self._subscriptions.values() if sub.filter.matches(notification)]

    def matching_ids(self, notification: Mapping) -> Set[str]:
        return {sub.sub_id for sub in self.match(notification)}


class AttributeIndexMatcher:
    """Pre-select candidate subscriptions by one indexed equality attribute.

    For each filter, one ``Equals``/single-value ``InSet`` constraint is
    chosen as the index key.  At match time only subscriptions whose index key
    agrees with the notification (plus all unindexable subscriptions) are
    evaluated in full, which keeps the result identical to brute force while
    skipping most non-matching filters on selective workloads.  Filters with
    no equality constraint but at least one ``Range`` constraint are bucketed
    in a per-attribute range index — the lazily rebuilt
    :class:`RangeSegmentIndex` (``range_index="segment"``, the default) or
    the incrementally maintained :class:`IntervalBucketIndex`
    (``range_index="interval"``) — and pre-selected by the notification's
    value for that attribute.

    Repeated publishes of a hot notification shape skip candidate gathering
    entirely: results are memoized by the notification's attribute signature
    in an epoch-guarded cache that every mutation invalidates, so a stale
    answer can never be served (``cache_hits`` counts the skips).
    """

    #: bound on the memoized notification signatures (FIFO eviction)
    CACHE_CAPACITY = 4096

    def __init__(self, range_index: str = "segment") -> None:
        if range_index not in RANGE_INDEX_NAMES:
            raise ValueError(
                f"unknown range index {range_index!r}; available: {RANGE_INDEX_NAMES}"
            )
        self._range_index_name = range_index
        self._by_key: Dict[Tuple[str, object], Dict[str, Subscription]] = defaultdict(dict)
        self._by_range: Dict[str, object] = {}
        self._unindexed: Dict[str, Subscription] = {}
        # sub_id -> ("eq", key) | ("range", attribute) | None (unindexed)
        self._index_of: Dict[str, Optional[Tuple[str, object]]] = {}
        self.full_evaluations = 0
        self.cache_hits = 0
        self._epoch = 0
        self._cache_epoch = 0
        self._match_cache: Dict[Tuple, List[Subscription]] = {}

    # ------------------------------------------------------------------ admin
    def add(self, subscription: Subscription) -> None:
        self._epoch += 1
        sub_id = subscription.sub_id
        key = self._pick_index_key(subscription.filter)
        if key is not None:
            self._index_of[sub_id] = ("eq", key)
            self._by_key[key][sub_id] = subscription
            return
        range_constraint = pick_range_constraint(subscription.filter)
        if range_constraint is not None:
            attribute = range_constraint.attribute
            self._index_of[sub_id] = ("range", attribute)
            index = self._by_range.get(attribute)
            if index is None:
                index = self._by_range[attribute] = make_range_index(self._range_index_name)
            index.add(sub_id, range_constraint, subscription)
            return
        self._index_of[sub_id] = None
        self._unindexed[sub_id] = subscription

    def remove(self, sub_id: str) -> Optional[Subscription]:
        if sub_id not in self._index_of:
            return None
        self._epoch += 1
        tag = self._index_of.pop(sub_id)
        if tag is None:
            return self._unindexed.pop(sub_id, None)
        kind, detail = tag
        if kind == "range":
            index = self._by_range.get(detail)
            if index is None:
                return None
            removed = index.get(sub_id)
            index.discard(sub_id)
            if not len(index):
                del self._by_range[detail]
            return removed
        bucket = self._by_key.get(detail, {})
        removed = bucket.pop(sub_id, None)
        if not bucket and detail in self._by_key:
            del self._by_key[detail]
        return removed

    def clear(self) -> None:
        self._epoch += 1
        self._by_key.clear()
        self._by_range.clear()
        self._unindexed.clear()
        self._index_of.clear()

    def __len__(self) -> int:
        return len(self._index_of)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._index_of

    @property
    def subscriptions(self) -> List[Subscription]:
        subs = list(self._unindexed.values())
        for bucket in self._by_key.values():
            subs.extend(bucket.values())
        for index in self._by_range.values():
            subs.extend(index.payloads())
        return subs

    # --------------------------------------------------------------- matching
    def match(self, notification: Mapping) -> List[Subscription]:
        cache = self._match_cache
        if self._cache_epoch != self._epoch:
            cache.clear()
            self._cache_epoch = self._epoch
        try:
            # attributes are unique keys, so sorting never compares values
            # and the signature is hashable iff every value is
            signature = tuple(sorted(notification.items()))
            cached = cache.get(signature)
        except TypeError:  # unorderable items view or unhashable value
            signature = None
            cached = None
        if cached is not None:
            self.cache_hits += 1
            return list(cached)
        matched = self._match_uncached(notification)
        if signature is not None:
            if len(cache) >= self.CACHE_CAPACITY:
                del cache[next(iter(cache))]
            cache[signature] = matched
        return list(matched)

    def _match_uncached(self, notification: Mapping) -> List[Subscription]:
        candidates: List[Subscription] = list(self._unindexed.values())
        for (attribute, value), bucket in self._candidate_buckets(notification):
            candidates.extend(bucket.values())
        by_range = self._by_range
        if by_range:
            for attribute, value in notification.items():
                index = by_range.get(attribute)
                if index is not None:
                    candidates.extend(index.candidates(value))
        matched = []
        for sub in candidates:
            self.full_evaluations += 1
            if sub.filter.matches(notification):
                matched.append(sub)
        return matched

    def matching_ids(self, notification: Mapping) -> Set[str]:
        return {sub.sub_id for sub in self.match(notification)}

    def _candidate_buckets(self, notification: Mapping):
        """Buckets keyed by the notification's own attribute/value pairs.

        O(notification attributes) dictionary probes instead of a scan over
        every distinct index key.  Unhashable attribute values cannot appear
        as index keys (``pick_index_key`` refuses them), so they are skipped.
        """
        by_key = self._by_key
        if not by_key:
            return
        for attribute, value in notification.items():
            try:
                bucket = by_key.get((attribute, value))
            except TypeError:  # unhashable notification value
                continue
            if bucket:
                yield (attribute, value), bucket

    # ------------------------------------------------------------------ index
    _pick_index_key = staticmethod(pick_index_key)


def cross_check(
    matchers: Iterable, notifications: Iterable[Notification]
) -> bool:
    """Return True iff all matchers agree on every notification (test helper)."""
    matchers = list(matchers)
    for notification in notifications:
        reference = matchers[0].matching_ids(notification)
        for other in matchers[1:]:
            if other.matching_ids(notification) != reference:
                return False
    return True
