"""Property-based chaos engine: seeded fault schedules with explicit oracles.

:mod:`repro.pubsub.chaos` scripts *one* storyline; this module draws whole
families of them.  :func:`generate_plan` derives a :class:`ChaosPlan` — a
covering line topology plus a round-indexed schedule of crash / restart /
sever / restore / link-flap / handover / covering-churn / publish-spike
events — as a pure function of an integer seed, so the same seed produces a
byte-identical schedule on every machine and every backend.

:func:`execute_plan` replays a plan through the transport-agnostic
:meth:`~repro.net.transport.Transport.inject_fault` seam (simulator, asyncio
sockets or the multi-process cluster) and checks the invariant library of
:mod:`repro.pubsub.invariants` as it goes.  The oracle stays computable
because the scenario family is built for it:

* the topology is a broker line ``B1 — B2 — … — BN`` and the publisher sits
  on ``B1``, so a subscriber on ``Bk`` is reachable iff every broker and
  every edge on the ``B1..Bk`` prefix is healthy;
* every subscriber owns a *unique* probe filter, so a replayed burst matches
  exactly the subscriber that provably missed it (brokers do not deduplicate
  by default — replaying a shared filter would double-deliver);
* a roaming subscription (``probe == "roam"``) hops between brokers on
  handover events, interleaving subscription movement with faults;
* shared-temperature bursts (the covering-churn traffic) run only in fully
  healthy rounds, so covering flips never race a partitioned routing layer;
* every mutation runs to exact quiescence before the next one, which is what
  makes the delivered sets backend-invariant.

On an invariant violation :func:`run_chaos_fuzz` *shrinks* the schedule —
binary-searching the minimal failing prefix, then greedily dropping and
advancing events — and reports a one-line repro command
(``repro chaos-fuzz --seed N --backend cluster``) that replays the original
draw deterministically.  :func:`run_soak` loops seeded plans under a time
budget and asserts that file descriptors, RSS and every transport/routing
resource return to their post-warmup plateau.
"""

from __future__ import annotations

import gc
import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..net.faults import FaultInjector
from .broker_network import line_topology
from .filters import Equals, Filter, Range
from .invariants import (
    Violation,
    check_conservation,
    check_convergence,
    check_exactly_once,
    check_no_duplicates,
    check_non_growth,
    check_provable_loss,
    resource_snapshot,
)
from .notification import Notification

#: schedule event vocabulary, in the order the generator may draw them
EVENT_ACTIONS = (
    "crash",
    "restart",
    "sever",
    "restore",
    "flap",
    "handover",
    "churn",
    "spike",
)

#: deliberate executor bugs for fuzzer self-tests: the oracle keeps believing
#: the schedule while the execution silently deviates from it
INJECTABLE_BUGS = ("skip_sever", "skip_replay")

#: notification-id layout: ``ROUND_BASE + round * ROUND_SPAN + slot * SLOT_SPAN``
ROUND_BASE = 100_000
ROUND_SPAN = 10_000
SLOT_SPAN = 100
TEMP_SLOT = 90  # temperature bursts use the last slot of each round


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled event: what happens, to which target, in which round."""

    round: int
    action: str
    #: broker name (``crash``/``restart``/``handover``), edge name
    #: ``"Bi-Bj"`` (``sever``/``restore``/``flap``), or ``""``
    target: str

    def describe(self) -> str:
        return (
            f"r{self.round}:{self.action}:{self.target}"
            if self.target
            else f"r{self.round}:{self.action}"
        )


@dataclass(frozen=True)
class ScenarioParams:
    """The topology/traffic shape a plan runs against (drawn from the seed)."""

    seed: int
    brokers: int
    rounds: int
    temps: int
    probes: int
    spike_factor: int
    roam_start: str


@dataclass(frozen=True)
class ChaosPlan:
    """A scenario plus its fault schedule — a pure function of the seed."""

    params: ScenarioParams
    events: Tuple[ChaosEvent, ...]

    def events_in_round(self, round_index: int) -> List[ChaosEvent]:
        return [event for event in self.events if event.round == round_index]

    def fault_events(self) -> List[ChaosEvent]:
        return [e for e in self.events if e.action in ("crash", "sever", "flap")]

    def describe(self) -> str:
        """A stable one-line description; equal seeds give equal strings."""
        p = self.params
        head = (
            f"seed={p.seed} brokers={p.brokers} rounds={p.rounds} "
            f"temps={p.temps} probes={p.probes} spike_factor={p.spike_factor} "
            f"roam={p.roam_start}"
        )
        return head + " | " + " ".join(event.describe() for event in self.events)


def generate_plan(seed: int) -> ChaosPlan:
    """Draw a :class:`ChaosPlan` from ``seed`` — deterministically.

    The family keeps at most one outstanding fault (a down broker *or* a
    severed edge) at any time, which is the regime the paper's recovery
    machinery is specified for; the interleaving of fault placement, heal
    delay, roaming handovers, covering churn and publish spikes is what the
    seed varies.  ``B1`` (the publisher's broker) is never crashed, so the
    reachability oracle stays a prefix predicate on the line.
    """
    rng = random.Random(seed)
    brokers = rng.randint(3, 5)
    rounds = rng.randint(4, 7)
    params = ScenarioParams(
        seed=seed,
        brokers=brokers,
        rounds=rounds,
        temps=rng.randint(2, 4),
        probes=rng.randint(1, 3),
        spike_factor=rng.randint(2, 3),
        roam_start=f"B{rng.randint(1, brokers)}",
    )
    edges = [f"B{i}-B{i + 1}" for i in range(1, brokers)]
    buckets: Dict[int, List[ChaosEvent]] = {r: [] for r in range(rounds)}
    down: Optional[str] = None
    severed: Optional[str] = None
    heal_round: Optional[int] = None
    roam_at = params.roam_start
    drew_fault = False

    for r in range(rounds):
        if heal_round == r:
            down = severed = heal_round = None  # the heal event sits in the bucket already
        outstanding = down is not None or severed is not None
        if not outstanding and rng.random() < 0.6:
            kind = rng.choice(("crash", "sever", "flap"))
            drew_fault = True
            if kind == "crash":
                down = f"B{rng.randint(2, brokers)}"
                buckets[r].append(ChaosEvent(r, "crash", down))
            elif kind == "sever":
                severed = rng.choice(edges)
                buckets[r].append(ChaosEvent(r, "sever", severed))
            else:
                buckets[r].append(ChaosEvent(r, "flap", rng.choice(edges)))
            if kind in ("crash", "sever"):
                delay = rng.randint(1, 2)
                if r + delay < rounds:
                    heal_round = r + delay
                    heal = "restart" if kind == "crash" else "restore"
                    buckets[heal_round].append(
                        ChaosEvent(heal_round, heal, down if kind == "crash" else severed)
                    )
                # past the last round the executor's end-of-plan heal takes over
        healthy = down is None and severed is None
        if healthy and rng.random() < 0.4:
            neighbours = _line_neighbours(roam_at, brokers)
            target = rng.choice(neighbours)
            buckets[r].append(ChaosEvent(r, "handover", target))
            roam_at = target
        if healthy and rng.random() < 0.3:
            buckets[r].append(ChaosEvent(r, "churn", ""))
        if rng.random() < 0.25:
            buckets[r].append(ChaosEvent(r, "spike", ""))

    if not drew_fault:
        # a fault-free plan would make every provable-loss check vacuous;
        # pin a flap mid-schedule so each plan exercises the fault plane
        middle = rounds // 2
        buckets[middle].insert(0, ChaosEvent(middle, "flap", rng.choice(edges)))

    events = tuple(event for r in range(rounds) for event in buckets[r])
    return ChaosPlan(params=params, events=events)


def _line_neighbours(broker: str, brokers: int) -> List[str]:
    index = int(broker[1:])
    return [f"B{k}" for k in (index - 1, index + 1) if 1 <= k <= brokers]


# ----------------------------------------------------------------- execution


@dataclass
class ExecutionResult:
    """Everything one plan execution observed, invariant verdicts included."""

    backend: str
    seed: int
    #: subscriber name -> sorted delivered notification ids
    delivered: Dict[str, Tuple[int, ...]]
    violations: List[Violation] = field(default_factory=list)
    lost: int = 0
    replayed: int = 0
    published: int = 0
    events_applied: int = 0
    events_skipped: int = 0
    resources_baseline: Dict[str, int] = field(default_factory=dict)
    resources_final: Dict[str, int] = field(default_factory=dict)
    recovery: Dict[str, int] = field(default_factory=dict)
    wall_sec: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


class _PlanRun:
    """Mutable execution state for one plan on one backend."""

    def __init__(
        self, plan: ChaosPlan, backend: str, inject_bug: Optional[str], codec=None, matcher=None
    ):
        if inject_bug is not None and inject_bug not in INJECTABLE_BUGS:
            raise ValueError(f"unknown injectable bug {inject_bug!r}; know {INJECTABLE_BUGS}")
        self.plan = plan
        self.params = plan.params
        self.inject_bug = inject_bug
        self.net = line_topology(
            n_brokers=self.params.brokers,
            routing="covering",
            transport=backend,
            codec=codec,
            matcher=matcher,
        )
        self.injector = FaultInjector(self.net.sim, self.net.network, seed=self.params.seed)
        self.down: set = set()
        self.severed: set = set()
        self.roam_at = self.params.roam_start
        self.broad_on = True
        self.broad_serial = 0
        #: subscription key ("s3", "roam") -> lost probe ids awaiting replay
        self.pending: Dict[str, List[int]] = {}
        #: client name -> expected delivered ids (the exactly-once oracle)
        self.expected: Dict[str, set] = {}
        self.result = ExecutionResult(backend=backend, seed=self.params.seed, delivered={})

    # -------------------------------------------------------------- topology
    def setup(self) -> None:
        net, params = self.net, self.params
        self.pub = net.add_client("pub", "B1")
        self.subscribers: Dict[str, object] = {}
        self.roamers: Dict[str, object] = {}
        for k in range(1, params.brokers + 1):
            name = f"s{k}"
            client = net.add_client(name, f"B{k}")
            client.subscribe(Filter([Equals("probe", name)]), sub_id=f"g-probe-{name}")
            self.subscribers[name] = client
            self.expected[name] = set()
            roamer = net.add_client(f"roam{k}", f"B{k}")
            self.roamers[f"B{k}"] = roamer
            self.expected[f"roam{k}"] = set()
        self.subscribers["s1"].subscribe(Filter([Equals("service", "temp")]), sub_id="g-broad-0")
        self.subscribers["s2"].subscribe(
            Filter([Equals("service", "temp"), Range("value", 10, 30)]), sub_id="g-covered"
        )
        self.roamers[self.roam_at].subscribe(Filter([Equals("probe", "roam")]), sub_id="g-roam")
        net.run_until_idle()
        self.result.resources_baseline = resource_snapshot(net)

    # ------------------------------------------------------------ primitives
    def reachable(self, broker: str) -> bool:
        """Prefix reachability on the line: publisher sits on B1."""
        index = int(broker[1:])
        if any(f"B{k}" in self.down for k in range(1, index + 1)):
            return False
        return not any(f"B{k}-B{k + 1}" in self.severed for k in range(1, index))

    def healthy(self) -> bool:
        return not self.down and not self.severed

    def quiesce(self) -> None:
        self.net.run_until_idle()

    def all_delivered_ids(self) -> List[int]:
        return [nid for client in self.all_clients() for nid in _ids(client)]

    def all_clients(self) -> List[object]:
        return list(self.subscribers.values()) + list(self.roamers.values())

    # ---------------------------------------------------------------- events
    def apply_event(self, event: ChaosEvent) -> bool:
        """Apply one event; unapplicable events (after shrinking) are no-ops."""
        action, target = event.action, event.target
        if action == "crash":
            if target == "B1" or target in self.down or not self.healthy():
                return False
            self.injector.crash_now(target)
            self.down.add(target)
        elif action == "restart":
            if target not in self.down:
                return False
            self.injector.restart_now(target)
            self.down.discard(target)
            self.quiesce()
        elif action == "sever":
            if target in self.severed or not self.healthy():
                return False
            if self.inject_bug != "skip_sever":
                a, b = target.split("-")
                self.injector.link_down_now(a, b)
            self.severed.add(target)
        elif action == "restore":
            if target not in self.severed:
                return False
            if self.inject_bug != "skip_sever":
                a, b = target.split("-")
                self.injector.link_up_now(a, b)
            self.severed.discard(target)
            self.quiesce()
        elif action == "flap":
            if target in self.severed:
                return False
            a, b = target.split("-")
            self.injector.link_down_now(a, b)
            self.injector.link_up_now(a, b)
            self.quiesce()
        elif action == "handover":
            if not self.healthy() or target == self.roam_at:
                return False
            self.roamers[self.roam_at].unsubscribe("g-roam")
            self.quiesce()
            self.roamers[target].subscribe(Filter([Equals("probe", "roam")]), sub_id="g-roam")
            self.quiesce()
            self.roam_at = target
        elif action == "churn":
            if not self.healthy():
                return False
            if self.broad_on:
                self.subscribers["s1"].unsubscribe(f"g-broad-{self.broad_serial}")
            else:
                self.broad_serial += 1
                self.subscribers["s1"].subscribe(
                    Filter([Equals("service", "temp")]),
                    sub_id=f"g-broad-{self.broad_serial}",
                )
            self.broad_on = not self.broad_on
            self.quiesce()
        elif action == "spike":
            return True  # consumed by the publish phase of this round
        else:  # pragma: no cover - generator never emits unknown actions
            raise ValueError(f"unknown chaos action {action!r}")
        return True

    # --------------------------------------------------------------- traffic
    def publish_probes(self, round_index: int, burst: int) -> None:
        """One probe burst per subscription; lost ones are remembered for replay."""
        res = self.result
        targets: List[Tuple[str, str, str]] = [
            (f"s{k}", f"s{k}", f"B{k}") for k in range(1, self.params.brokers + 1)
        ]
        targets.append(("roam", f"roam{int(self.roam_at[1:])}", self.roam_at))
        for slot, (key, client_name, broker) in enumerate(targets):
            base = ROUND_BASE + round_index * ROUND_SPAN + slot * SLOT_SPAN
            ids = [base + i for i in range(burst)]
            for nid in ids:
                self.pub.publish(Notification({"probe": key}, notification_id=nid))
            res.published += burst
            if self.reachable(broker):
                self.expected[client_name].update(ids)
            else:
                self.pending.setdefault(key, []).extend(ids)
                res.lost += burst
        self.quiesce()
        for slot, (key, client_name, broker) in enumerate(targets):
            if self.reachable(broker):
                continue
            base = ROUND_BASE + round_index * ROUND_SPAN + slot * SLOT_SPAN
            res.violations.extend(
                check_provable_loss(
                    key,
                    range(base, base + burst),
                    self.all_delivered_ids(),
                    context=f"round {round_index}",
                )
            )

    def replay_pending(self) -> None:
        """Republish lost probes whose subscriber is reachable again."""
        res = self.result
        for key in sorted(self.pending):
            if key == "roam":
                client_name, broker = f"roam{int(self.roam_at[1:])}", self.roam_at
            else:
                client_name, broker = key, f"B{key[1:]}"
            if not self.reachable(broker):
                continue
            ids = self.pending.pop(key)
            self.expected[client_name].update(ids)
            res.replayed += len(ids)
            if self.inject_bug == "skip_replay":
                continue
            for nid in ids:
                self.pub.publish(Notification({"probe": key}, notification_id=nid))
            res.published += len(ids)
        self.quiesce()

    def publish_temps(self, round_index: int) -> None:
        """Shared temperature burst — healthy rounds only, so covering churn
        and the Range-covered subscriber see a consistent routing layer."""
        base = ROUND_BASE + round_index * ROUND_SPAN + TEMP_SLOT * SLOT_SPAN
        values = [15 + 5 * i for i in range(self.params.temps)]
        for i, value in enumerate(values):
            self.pub.publish(
                Notification({"service": "temp", "value": value}, notification_id=base + i)
            )
        self.result.published += len(values)
        if self.broad_on:
            self.expected["s1"].update(base + i for i in range(len(values)))
        self.expected["s2"].update(base + i for i, value in enumerate(values) if 10 <= value <= 30)
        self.quiesce()

    # ------------------------------------------------------------------- run
    def run(self) -> ExecutionResult:
        started = time.perf_counter()
        res = self.result
        try:
            self.setup()
            for r in range(self.params.rounds):
                spike = False
                for event in self.plan.events_in_round(r):
                    applied = self.apply_event(event)
                    res.events_applied += applied
                    res.events_skipped += not applied
                    spike = spike or (applied and event.action == "spike")
                self.quiesce()
                self.replay_pending()
                burst = self.params.probes * (self.params.spike_factor if spike else 1)
                self.publish_probes(r, burst)
                if self.healthy():
                    self.publish_temps(r)
            self._heal_and_settle()
            self._final_checks()
            res.recovery = dict(getattr(self.net.transport, "recovery", {}))
            res.wall_sec = time.perf_counter() - started
            return res
        finally:
            self.net.close()

    def _heal_and_settle(self) -> None:
        """Return to the exact setup state so non-growth gating is strict."""
        for broker in sorted(self.down):
            self.injector.restart_now(broker)
        self.down.clear()
        for edge in sorted(self.severed):
            a, b = edge.split("-")
            if self.inject_bug != "skip_sever":
                self.injector.link_up_now(a, b)
        self.severed.clear()
        self.quiesce()
        if self.roam_at != self.params.roam_start:
            self.apply_event(ChaosEvent(self.params.rounds, "handover", self.params.roam_start))
        if not self.broad_on:
            self.apply_event(ChaosEvent(self.params.rounds, "churn", ""))
        self.replay_pending()
        self.quiesce()

    def _final_checks(self) -> None:
        res = self.result
        res.delivered = {client.name: _ids(client) for client in self.all_clients()}
        res.violations.extend(
            check_no_duplicates(
                {client.name: client.duplicate_deliveries() for client in self.all_clients()}
            )
        )
        for client in self.all_clients():
            res.violations.extend(
                check_exactly_once(client.name, self.expected[client.name], _ids(client))
            )
        expected_total = sum(len(ids) for ids in self.expected.values())
        received_total = sum(
            len(set(_ids(client)) & self.expected[client.name]) for client in self.all_clients()
        )
        res.violations.extend(check_conservation("healthy-paths", expected_total, received_total))
        res.resources_final = resource_snapshot(self.net)
        # covering advertisement order may legitimately differ by one entry
        # per broker across fault cycles (a covered subscription is forwarded
        # or suppressed depending on interleaving); one entry of slack absorbs
        # that while still catching actual growth — transport resources
        # (links, writers, timers, registries) are gated exactly
        slack = {key: 1 for key in res.resources_baseline if key.startswith("routing:")}
        res.violations.extend(
            check_non_growth(res.resources_baseline, res.resources_final, slack=slack)
        )


def _ids(client) -> Tuple[int, ...]:
    return tuple(sorted(d.notification.notification_id for d in client.deliveries))


def execute_plan(
    plan: ChaosPlan,
    backend: str = "sim",
    inject_bug: Optional[str] = None,
    codec=None,
    matcher=None,
) -> ExecutionResult:
    """Execute ``plan`` on ``backend`` and return observations + verdicts.

    ``inject_bug`` deliberately de-synchronises execution from the oracle
    (see :data:`INJECTABLE_BUGS`) so tests can prove the fuzzer catches and
    shrinks real invariant violations.  ``codec`` selects the wire codec of
    the socket backends (the simulator ignores it); ``matcher`` selects the
    brokers' routing-table matching strategy.
    """
    return _PlanRun(plan, backend, inject_bug, codec=codec, matcher=matcher).run()


# ------------------------------------------------------------------ shrinking


def shrink_plan(
    plan: ChaosPlan,
    fails: Callable[[ChaosPlan], bool],
    max_executions: int = 64,
) -> ChaosPlan:
    """Find a smaller schedule that still fails, classic two-stage shrink.

    First binary-search the minimal failing *prefix* of the event list, then
    greedily try dropping each remaining event and advancing events to
    earlier rounds.  ``fails`` must be deterministic (run the sim backend);
    every candidate plan is executable because the executor treats unpaired
    events — a restart with nobody down, a restore of a live link — as no-ops
    and heals all outstanding faults at the end of the schedule.
    """
    budget = [max_executions]

    def failing(candidate: ChaosPlan) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return fails(candidate)

    def with_events(events: Sequence[ChaosEvent]) -> ChaosPlan:
        return ChaosPlan(params=plan.params, events=tuple(events))

    best = plan
    # stage 1: minimal failing prefix (binary search)
    lo, hi = 0, len(plan.events)
    while lo < hi:
        mid = (lo + hi) // 2
        if failing(with_events(plan.events[:mid])):
            hi = mid
        else:
            lo = mid + 1
    if hi <= len(plan.events) and failing(with_events(plan.events[:hi])):
        best = with_events(plan.events[:hi])
    # stage 2: greedy single-event removal, last to first
    events = list(best.events)
    for index in range(len(events) - 1, -1, -1):
        candidate = events[:index] + events[index + 1 :]
        if failing(with_events(candidate)):
            events = candidate
    # stage 3: advance events to earlier rounds while still failing
    changed = True
    while changed:
        changed = False
        for index, event in enumerate(events):
            if event.round == 0:
                continue
            advanced = ChaosEvent(event.round - 1, event.action, event.target)
            candidate = sorted(
                events[:index] + [advanced] + events[index + 1 :],
                key=lambda e: e.round,
            )
            if failing(with_events(candidate)):
                events = candidate
                changed = True
    return with_events(events)


# -------------------------------------------------------------------- fuzzing


@dataclass
class FuzzReport:
    """One ``chaos-fuzz`` verdict: plan, violations, shrunk repro if failing."""

    seed: int
    backend: str
    plan: ChaosPlan
    result: ExecutionResult
    violations: List[Violation] = field(default_factory=list)
    shrunk: Optional[ChaosPlan] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def repro_command(self) -> str:
        return f"repro chaos-fuzz --seed {self.seed} --backend {self.backend}"

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"FAIL ({len(self.violations)} violations)"
        line = (
            f"[{verdict}] seed={self.seed} backend={self.backend} "
            f"events={len(self.plan.events)} published={self.result.published} "
            f"lost={self.result.lost} replayed={self.result.replayed}"
        )
        if self.shrunk is not None:
            line += f" shrunk_events={len(self.shrunk.events)}"
        if not self.ok:
            line += f"  repro: {self.repro_command}"
        return line


def run_chaos_fuzz(
    seed: int,
    backend: str = "sim",
    shrink: bool = True,
    inject_bug: Optional[str] = None,
    codec=None,
    matcher=None,
) -> FuzzReport:
    """Generate, execute and judge the plan for ``seed`` on ``backend``.

    On a non-sim backend the identical plan also runs on the simulator and
    the per-subscriber delivered sets must converge (the sim is the oracle).
    The sim oracle always runs with the *default* matcher, so a fuzz sweep
    with ``matcher=`` set cross-checks that matcher's forwarding decisions
    against the reference implementation under every drawn fault schedule.
    On any violation the schedule is shrunk on the simulator and the minimal
    failing schedule is attached to the report.
    """
    plan = generate_plan(seed)
    result = execute_plan(plan, backend, inject_bug=inject_bug, codec=codec, matcher=matcher)
    violations = list(result.violations)
    if backend != "sim":
        oracle = execute_plan(plan, "sim", inject_bug=inject_bug)
        violations.extend(
            check_convergence(oracle.delivered, result.delivered, candidate_name=backend)
        )
    report = FuzzReport(
        seed=seed, backend=backend, plan=plan, result=result, violations=violations
    )
    if violations and shrink:
        report.shrunk = shrink_plan(
            plan,
            lambda candidate: _candidate_fails(candidate, backend, inject_bug, codec, matcher),
            max_executions=64 if backend == "sim" else 24,
        )
    return report


def _candidate_fails(
    plan: ChaosPlan, backend: str, inject_bug: Optional[str], codec=None, matcher=None
) -> bool:
    """Shrink predicate: the candidate must fail on the *failing* backend —
    a cluster-only divergence can never be reproduced by a sim-only check."""
    result = execute_plan(plan, backend, inject_bug=inject_bug, codec=codec, matcher=matcher)
    if result.violations:
        return True
    if backend == "sim":
        return False
    oracle = execute_plan(plan, "sim", inject_bug=inject_bug)
    return bool(check_convergence(oracle.delivered, result.delivered, candidate_name=backend))


def sweep(
    seeds: Sequence[int], backend: str = "sim", shrink: bool = True, codec=None, matcher=None
) -> List[FuzzReport]:
    """Run a fuzz sweep; returns one report per seed, failures included."""
    return [
        run_chaos_fuzz(seed, backend=backend, shrink=shrink, codec=codec, matcher=matcher)
        for seed in seeds
    ]


# ----------------------------------------------------------------------- soak


def process_resources() -> Dict[str, int]:
    """Open fds and current RSS of this process (Linux; empty elsewhere)."""
    sizes: Dict[str, int] = {}
    try:
        sizes["fds"] = len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    try:
        with open("/proc/self/statm") as statm:
            pages = int(statm.read().split()[1])
        sizes["rss_kb"] = pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):  # pragma: no cover
        pass
    return sizes


@dataclass
class SoakResult:
    """Outcome of a soak loop: iterations run and plateau verdicts."""

    backend: str
    iterations: int = 0
    seeds: List[int] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    #: process-level plateau baseline (after warmup) and final snapshot
    plateau_baseline: Dict[str, int] = field(default_factory=dict)
    plateau_final: Dict[str, int] = field(default_factory=dict)
    wall_sec: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


#: absolute slack for process-level plateaus: RSS may wiggle by allocator
#: arena churn; fds must stay exactly flat
SOAK_SLACK = {"rss_kb": 4096}


def run_soak(
    backend: str = "sim",
    budget_sec: float = 10.0,
    seed: int = 0,
    min_iterations: int = 2,
    max_iterations: int = 10_000,
    mobility_every: int = 3,
    codec=None,
) -> SoakResult:
    """Loop seeded chaos plans under a time budget, gating resource plateaus.

    The first iteration is warmup (interpreters allocate lazily: event loops,
    import caches, socket machinery); the plateau baseline is taken after it,
    and every later iteration must return to it — open fds exactly, RSS
    within :data:`SOAK_SLACK`.  Every ``mobility_every``-th iteration also
    runs a seed-drawn member of the mobility handover family
    (:class:`repro.mobility.handover_workload.WorkloadSpec`) on the same
    backend, so roaming/replication state is part of the plateau too (skipped
    on the cluster backend, which hosts plain pub/sub only).  Any invariant
    violation aborts the loop with the failing seed recorded, so the repro is
    one ``chaos-fuzz`` away.
    """
    started = time.perf_counter()
    result = SoakResult(backend=backend)
    next_seed = seed
    while result.iterations < max_iterations:
        elapsed = time.perf_counter() - started
        if result.iterations >= min_iterations and elapsed >= budget_sec:
            break
        report = run_chaos_fuzz(next_seed, backend=backend, shrink=False, codec=codec)
        if (
            mobility_every
            and backend in ("sim", "asyncio")
            and result.iterations % mobility_every == mobility_every - 1
        ):
            # deferred import: mobility sits above pubsub in the layering
            from ..mobility.handover_workload import WorkloadSpec, run_handover_workload

            outcome = run_handover_workload(
                backend, spec=WorkloadSpec.draw(next_seed), codec=codec
            )
            duplicates = {c.name: c.duplicates for c in outcome.clients}
            result.violations.extend(check_no_duplicates(duplicates))
        result.iterations += 1
        result.seeds.append(next_seed)
        next_seed += 1
        if not report.ok:
            result.violations.extend(report.violations)
            break
        if result.violations:
            break
        gc.collect()
        snapshot = process_resources()
        if result.iterations == 1:
            result.plateau_baseline = snapshot
        else:
            result.plateau_final = snapshot
            result.violations.extend(
                check_non_growth(result.plateau_baseline, snapshot, slack=SOAK_SLACK)
            )
            if result.violations:
                break
    result.plateau_final = result.plateau_final or dict(result.plateau_baseline)
    result.wall_sec = time.perf_counter() - started
    return result
