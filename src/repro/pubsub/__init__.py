"""REBECA-style content-based publish/subscribe substrate.

This package implements the notification service the paper builds on
(Sect. 2): content-based notifications and filters, subscriptions, routing
tables, the routing-strategy family (flooding, simple, identity, covering,
merging), brokers, clients with local brokers, and acyclic broker-network
topologies.
"""

from .broker import BorderBroker, Broker, InnerBroker
from .broker_network import (
    BrokerNetwork,
    TopologyError,
    balanced_tree_topology,
    grid_border_topology,
    line_topology,
    random_tree_topology,
    star_topology,
)
from .client import Client, Delivery, LocalBroker
from .filters import (
    AtLeast,
    AtMost,
    Constraint,
    Equals,
    Exists,
    Filter,
    GreaterThan,
    InSet,
    LessThan,
    NotEquals,
    Prefix,
    Range,
    conjunction,
    filter_from_dict,
    match_all,
)
from .matching import (
    AttributeIndexMatcher,
    BruteForceMatcher,
    RangeSegmentIndex,
    cross_check,
    pick_index_key,
    pick_range_constraint,
)
from .notification import Notification, notification
from .routing import (
    ADVERTISING_NAMES,
    STRATEGIES,
    CoveringRouting,
    FloodingRouting,
    IdentityRouting,
    MergingRouting,
    RoutingStrategy,
    SimpleRouting,
    make_strategy,
)
from .routing_table import RouteEntry, RoutingTable
from .subscription import Subscription, next_subscription_id, subscription

__all__ = [
    "ADVERTISING_NAMES",
    "AtLeast",
    "AtMost",
    "AttributeIndexMatcher",
    "BorderBroker",
    "Broker",
    "BrokerNetwork",
    "BruteForceMatcher",
    "Client",
    "Constraint",
    "CoveringRouting",
    "Delivery",
    "Equals",
    "Exists",
    "Filter",
    "FloodingRouting",
    "GreaterThan",
    "IdentityRouting",
    "InSet",
    "InnerBroker",
    "LessThan",
    "LocalBroker",
    "MergingRouting",
    "NotEquals",
    "Notification",
    "Prefix",
    "Range",
    "RangeSegmentIndex",
    "RouteEntry",
    "RoutingStrategy",
    "RoutingTable",
    "STRATEGIES",
    "SimpleRouting",
    "Subscription",
    "TopologyError",
    "balanced_tree_topology",
    "conjunction",
    "cross_check",
    "filter_from_dict",
    "grid_border_topology",
    "line_topology",
    "make_strategy",
    "match_all",
    "next_subscription_id",
    "notification",
    "pick_index_key",
    "pick_range_constraint",
    "random_tree_topology",
    "star_topology",
    "subscription",
]
