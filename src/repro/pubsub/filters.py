"""Content-based filters.

"Filters are boolean-valued functions over notifications and a common way of
implementing subscriptions.  The most flexible scheme for specifying these
filters is content-based filtering, which utilizes predicates on the entire
content of a notification." (Sect. 2)

A :class:`Filter` is a conjunction of per-attribute :class:`Constraint`
objects, the standard model used by REBECA, SIENA and JEDI.  Filters support
the operations the routing algorithms need:

* ``matches(notification)`` — evaluation;
* ``covers(other)`` — conservative implication test, used by covering-based
  routing and by the replicator to avoid duplicating subscriptions;
* ``overlaps(other)`` — conservative satisfiability test of the conjunction;
* ``merge(other)`` — a filter covering both operands (perfect merging when
  the operands differ in a single attribute, otherwise an attribute-wise
  widening), used by merging-based routing.

Covering is *conservative*: ``covers`` returning ``True`` guarantees
implication, returning ``False`` makes no claim.  That is the soundness
direction required for correct (if occasionally less optimised) routing.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .notification import Notification

# --------------------------------------------------------------------------- operators

#: Sentinel distinguishing "attribute absent" from any real attribute value.
_MISSING = object()


def _always_true(value: Any) -> bool:
    return True


class Constraint:
    """A predicate over a single notification attribute.

    Constraints are treated as immutable once constructed: their identity
    key and hash are computed once and cached, and :meth:`value_test`
    returns a plain callable that the filter compiler chains into a fast
    evaluation path.
    """

    __slots__ = ("attribute", "_key", "_hash")

    def __init__(self, attribute: str):
        self.attribute = attribute
        self._key: Optional[Tuple] = None
        self._hash: Optional[int] = None

    # -- evaluation ----------------------------------------------------------
    def matches_value(self, value: Any) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def matches(self, notification: Mapping[str, Any]) -> bool:
        if self.attribute not in notification:
            return False
        return self.matches_value(notification[self.attribute])

    def value_test(self) -> Any:
        """A ``value -> bool`` callable equivalent to :meth:`matches_value`.

        Subclasses override this to return a closure without per-call
        attribute lookups; the default is the bound method itself.
        """
        return self.matches_value

    # -- algebra -------------------------------------------------------------
    def covers(self, other: "Constraint") -> bool:
        """Conservative: True only if every value accepted by ``other`` is accepted by self."""
        raise NotImplementedError  # pragma: no cover - interface

    def overlaps(self, other: "Constraint") -> bool:
        """Conservative satisfiability of the conjunction; default: assume they might overlap."""
        return True

    def _make_key(self) -> Tuple:  # pragma: no cover - interface
        raise NotImplementedError

    def key(self) -> Tuple:
        """A hashable identity used for equality and routing-table deduplication."""
        key = self._key
        if key is None:
            key = self._key = self._make_key()
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        result = self._hash
        if result is None:
            result = self._hash = hash(self.key())
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"

    def describe(self) -> str:  # pragma: no cover - overridden
        return self.attribute


class Exists(Constraint):
    """Matches any notification that carries the attribute at all."""

    def matches_value(self, value: Any) -> bool:
        return True

    def value_test(self):
        return _always_true

    def covers(self, other: Constraint) -> bool:
        return other.attribute == self.attribute

    def _make_key(self) -> Tuple:
        return ("exists", self.attribute)

    def describe(self) -> str:
        return f"{self.attribute} exists"


class Equals(Constraint):
    __slots__ = ("value",)

    def __init__(self, attribute: str, value: Any):
        super().__init__(attribute)
        self.value = value

    def matches_value(self, value: Any) -> bool:
        return value == self.value

    def value_test(self):
        expected = self.value

        def test(value: Any, _expected=expected) -> bool:
            return value == _expected

        return test

    def covers(self, other: Constraint) -> bool:
        if other.attribute != self.attribute:
            return False
        if isinstance(other, Equals):
            return other.value == self.value
        if isinstance(other, InSet):
            return set(other.values) == {self.value}
        return False

    def overlaps(self, other: Constraint) -> bool:
        if other.attribute != self.attribute:
            return True
        return other.matches_value(self.value)

    def _make_key(self) -> Tuple:
        return ("eq", self.attribute, _hashable(self.value))

    def describe(self) -> str:
        return f"{self.attribute} == {self.value!r}"


class NotEquals(Constraint):
    __slots__ = ("value",)

    def __init__(self, attribute: str, value: Any):
        super().__init__(attribute)
        self.value = value

    def matches_value(self, value: Any) -> bool:
        return value != self.value

    def covers(self, other: Constraint) -> bool:
        if other.attribute != self.attribute:
            return False
        if isinstance(other, Equals):
            return other.value != self.value
        if isinstance(other, InSet):
            return self.value not in other.values
        if isinstance(other, NotEquals):
            return other.value == self.value
        return False

    def _make_key(self) -> Tuple:
        return ("ne", self.attribute, _hashable(self.value))

    def describe(self) -> str:
        return f"{self.attribute} != {self.value!r}"


class InSet(Constraint):
    """Matches when the attribute value is a member of a finite set.

    This is the constraint used by location-dependent subscriptions: the
    ``myloc`` marker is bound to the set of locations appropriate for the
    client's current position (Sect. 1).
    """

    __slots__ = ("values",)

    def __init__(self, attribute: str, values: Iterable[Any]):
        super().__init__(attribute)
        self.values = frozenset(values)

    def matches_value(self, value: Any) -> bool:
        try:
            return value in self.values
        except TypeError:  # unhashable notification value can never be a member
            return False

    def value_test(self):
        members = self.values

        def test(value: Any, _members=members) -> bool:
            try:
                return value in _members
            except TypeError:  # unhashable notification value
                return False

        return test

    def covers(self, other: Constraint) -> bool:
        if other.attribute != self.attribute:
            return False
        if isinstance(other, Equals):
            return other.value in self.values
        if isinstance(other, InSet):
            return other.values <= self.values
        return False

    def overlaps(self, other: Constraint) -> bool:
        if other.attribute != self.attribute:
            return True
        if isinstance(other, Equals):
            return other.value in self.values
        if isinstance(other, InSet):
            return bool(self.values & other.values)
        return any(other.matches_value(v) for v in self.values)

    def _make_key(self) -> Tuple:
        return ("in", self.attribute, tuple(sorted(map(repr, self.values))))

    def describe(self) -> str:
        return f"{self.attribute} in {{{', '.join(sorted(map(repr, self.values)))}}}"


class Range(Constraint):
    """Matches numeric values inside a (possibly half-open) interval."""

    __slots__ = ("low", "high", "include_low", "include_high")

    def __init__(
        self,
        attribute: str,
        low: float = -math.inf,
        high: float = math.inf,
        include_low: bool = True,
        include_high: bool = True,
    ):
        super().__init__(attribute)
        if low != low or high != high:
            raise ValueError(f"NaN bound for {attribute}: [{low}, {high}]")
        if low > high:
            raise ValueError(f"empty range for {attribute}: [{low}, {high}]")
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high

    def matches_value(self, value: Any) -> bool:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if value != value:  # NaN lies inside no interval
            return False
        if value < self.low or (value == self.low and not self.include_low):
            return False
        if value > self.high or (value == self.high and not self.include_high):
            return False
        return True

    def value_test(self):
        low, high = self.low, self.high
        # one of four specialized closures: a single chained comparison per
        # evaluation, and NaN fails every variant because all its comparisons
        # are false (the chain is phrased positively)
        if self.include_low:
            if self.include_high:

                def test(value: Any, _low=low, _high=high) -> bool:
                    return (
                        isinstance(value, (int, float))
                        and not isinstance(value, bool)
                        and _low <= value <= _high
                    )

            else:

                def test(value: Any, _low=low, _high=high) -> bool:
                    return (
                        isinstance(value, (int, float))
                        and not isinstance(value, bool)
                        and _low <= value < _high
                    )

        elif self.include_high:

            def test(value: Any, _low=low, _high=high) -> bool:
                return (
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and _low < value <= _high
                )

        else:

            def test(value: Any, _low=low, _high=high) -> bool:
                return (
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and _low < value < _high
                )

        return test

    def covers(self, other: Constraint) -> bool:
        if other.attribute != self.attribute:
            return False
        if isinstance(other, Equals):
            return isinstance(other.value, (int, float)) and self.matches_value(other.value)
        if isinstance(other, InSet):
            return all(isinstance(v, (int, float)) and self.matches_value(v) for v in other.values)
        if isinstance(other, Range):
            low_ok = self.low < other.low or (
                self.low == other.low and (self.include_low or not other.include_low)
            )
            high_ok = self.high > other.high or (
                self.high == other.high and (self.include_high or not other.include_high)
            )
            return low_ok and high_ok
        return False

    def overlaps(self, other: Constraint) -> bool:
        if other.attribute != self.attribute:
            return True
        if isinstance(other, Equals):
            return self.matches_value(other.value)
        if isinstance(other, InSet):
            return any(self.matches_value(v) for v in other.values)
        if isinstance(other, Range):
            if self.high < other.low or other.high < self.low:
                return False
            if self.high == other.low:
                return self.include_high and other.include_low
            if other.high == self.low:
                return other.include_high and self.include_low
            return True
        return True

    def _make_key(self) -> Tuple:
        return ("range", self.attribute, self.low, self.high, self.include_low, self.include_high)

    def bounds(self) -> Tuple[float, float]:
        """The (low, high) boundary pair, for segment-bucket index construction.

        Inclusivity is intentionally dropped: an index built from these
        bounds yields a superset of the matching candidates, and the full
        constraint evaluation that follows restores exactness.
        """
        return (self.low, self.high)

    def describe(self) -> str:
        left = "[" if self.include_low else "("
        right = "]" if self.include_high else ")"
        return f"{self.attribute} in {left}{self.low}, {self.high}{right}"


def LessThan(attribute: str, value: float) -> Range:
    """``attribute < value``."""
    return Range(attribute, high=value, include_high=False)


def AtMost(attribute: str, value: float) -> Range:
    """``attribute <= value``."""
    return Range(attribute, high=value, include_high=True)


def GreaterThan(attribute: str, value: float) -> Range:
    """``attribute > value``."""
    return Range(attribute, low=value, include_low=False)


def AtLeast(attribute: str, value: float) -> Range:
    """``attribute >= value``."""
    return Range(attribute, low=value, include_low=True)


class Prefix(Constraint):
    """Matches string values starting with a given prefix."""

    __slots__ = ("prefix",)

    def __init__(self, attribute: str, prefix: str):
        super().__init__(attribute)
        self.prefix = prefix

    def matches_value(self, value: Any) -> bool:
        return isinstance(value, str) and value.startswith(self.prefix)

    def covers(self, other: Constraint) -> bool:
        if other.attribute != self.attribute:
            return False
        if isinstance(other, Equals):
            return isinstance(other.value, str) and other.value.startswith(self.prefix)
        if isinstance(other, InSet):
            return all(isinstance(v, str) and v.startswith(self.prefix) for v in other.values)
        if isinstance(other, Prefix):
            return other.prefix.startswith(self.prefix)
        return False

    def overlaps(self, other: Constraint) -> bool:
        if other.attribute != self.attribute:
            return True
        if isinstance(other, Prefix):
            return other.prefix.startswith(self.prefix) or self.prefix.startswith(other.prefix)
        if isinstance(other, Equals):
            return self.matches_value(other.value)
        if isinstance(other, InSet):
            return any(self.matches_value(v) for v in other.values)
        return True

    def _make_key(self) -> Tuple:
        return ("prefix", self.attribute, self.prefix)

    def describe(self) -> str:
        return f"{self.attribute} startswith {self.prefix!r}"


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, set)):
        return tuple(sorted(map(repr, value)))
    if isinstance(value, dict):
        return tuple(sorted((k, repr(v)) for k, v in value.items()))
    return value


# --------------------------------------------------------------------------- filters


def _compile_matches(constraints: Tuple[Constraint, ...]):
    """Compile a conjunction of constraints into one ``notification -> bool`` closure.

    The compiled form avoids per-call constraint dispatch: each constraint
    contributes a ``(attribute, value_test)`` pair captured once, and missing
    attributes are detected with a sentinel instead of a containment probe
    followed by a second lookup.
    """
    if not constraints:
        return _match_everything
    if len(constraints) == 1:
        (constraint,) = constraints
        attribute = constraint.attribute
        test = constraint.value_test()

        def matches_one(notification: Mapping[str, Any], _a=attribute, _t=test) -> bool:
            value = notification.get(_a, _MISSING)
            return value is not _MISSING and _t(value)

        return matches_one

    tests = tuple((c.attribute, c.value_test()) for c in constraints)

    def matches(notification: Mapping[str, Any], _tests=tests) -> bool:
        get = notification.get
        for attribute, test in _tests:
            value = get(attribute, _MISSING)
            if value is _MISSING or not test(value):
                return False
        return True

    return matches


def _match_everything(notification: Mapping[str, Any]) -> bool:
    return True


class Filter:
    """A conjunction of per-attribute constraints.

    The empty filter matches every notification (it is the unit of the
    conjunction); :func:`match_all` returns it explicitly.

    Filters are immutable: the constraint tuple is fixed at construction, at
    which point :meth:`matches` is precompiled into a closure chain (no
    per-evaluation generator or method dispatch) and ``key()``/``hash()`` are
    cached on first use.  Every routing-table candidate pays full filter
    evaluation, so this is one of the hottest code paths in the system.
    """

    __slots__ = ("_constraints", "_matches", "_key", "_hash", "_attrs", "_wire_json", "_wire_bin")

    def __init__(self, constraints: Iterable[Constraint] = ()):
        self._constraints: Tuple[Constraint, ...] = tuple(constraints)
        self._matches = _compile_matches(self._constraints)
        self._key: Optional[Tuple] = None
        self._hash: Optional[int] = None
        self._attrs: Optional[frozenset] = None
        # per-codec wire fragments, cached by repro.net.wire (filters are
        # immutable); never part of equality or hashing
        self._wire_json: Optional[str] = None
        self._wire_bin: Optional[bytes] = None

    # ------------------------------------------------------------- evaluation
    def matches(self, notification: Mapping[str, Any]) -> bool:
        """True iff every constraint matches the notification."""
        return self._matches(notification)

    def __call__(self, notification: Mapping[str, Any]) -> bool:
        return self._matches(notification)

    # ------------------------------------------------------------------ views
    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return self._constraints

    @property
    def attributes(self) -> List[str]:
        """The attribute names constrained by this filter (duplicates removed, ordered)."""
        seen: List[str] = []
        for constraint in self._constraints:
            if constraint.attribute not in seen:
                seen.append(constraint.attribute)
        return seen

    def constraints_on(self, attribute: str) -> List[Constraint]:
        return [c for c in self._constraints if c.attribute == attribute]

    @property
    def attribute_set(self) -> frozenset:
        """Cached frozenset of constrained attribute names.

        ``G.covers(F)`` requires every attribute constrained by ``G`` to also
        be constrained by ``F``, so this set doubles as the covering
        candidate-pruning signature used by the incremental routing index.
        """
        attrs = self._attrs
        if attrs is None:
            attrs = self._attrs = frozenset(c.attribute for c in self._constraints)
        return attrs

    def is_empty(self) -> bool:
        """True for the match-everything filter."""
        return not self._constraints

    # ---------------------------------------------------------------- algebra
    def covers(self, other: "Filter") -> bool:
        """Conservative implication: True only if every notification matching
        ``other`` also matches ``self``.

        Rule: for each constraint ``c`` of ``self`` there must exist a
        constraint of ``other`` on the same attribute that is covered by
        ``c``.  The empty filter covers everything.
        """
        if not self.attribute_set <= other.attribute_set:
            return False
        for mine in self._constraints:
            others = other.constraints_on(mine.attribute)
            if not others:
                return False
            if not any(mine.covers(theirs) for theirs in others):
                return False
        return True

    def overlaps(self, other: "Filter") -> bool:
        """Conservative satisfiability of ``self AND other``.

        Returns ``False`` only when two constraints on the same attribute are
        provably disjoint.
        """
        for mine in self._constraints:
            for theirs in other.constraints_on(mine.attribute):
                if not mine.overlaps(theirs) and not theirs.overlaps(mine):
                    return False
        return True

    def merge(self, other: "Filter") -> "Filter":
        """Return a filter that covers both ``self`` and ``other``.

        Constraints present (identically) in both filters are kept; all other
        constraints are dropped, which widens the filter — the standard safe
        merge used by merging-based routing.
        """
        mine = {c.key(): c for c in self._constraints}
        theirs = {c.key(): c for c in other._constraints}
        shared = [c for key, c in mine.items() if key in theirs]
        return Filter(shared)

    def conjoin(self, other: "Filter") -> "Filter":
        """Return the conjunction of both filters (all constraints of both)."""
        return Filter(self._constraints + other._constraints)

    # ------------------------------------------------------------------- misc
    def key(self) -> Tuple:
        key = self._key
        if key is None:
            key = self._key = tuple(sorted((c.key() for c in self._constraints), key=repr))
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Filter):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        result = self._hash
        if result is None:
            result = self._hash = hash(self.key())
        return result

    def __repr__(self) -> str:
        if not self._constraints:
            return "Filter(<match-all>)"
        return "Filter(" + " AND ".join(c.describe() for c in self._constraints) + ")"

    def estimated_size(self) -> int:
        """Abstract byte size of the filter, for control-message overhead metrics."""
        return 8 + 24 * len(self._constraints)


def match_all() -> Filter:
    """The filter that matches every notification."""
    return Filter(())


def filter_from_dict(spec: Mapping[str, Any]) -> Filter:
    """Build a filter from a simple ``{attribute: value}`` specification.

    Values map to constraints as follows: a set/frozenset/list/tuple becomes
    :class:`InSet`, a 2-tuple tagged ``("range", (low, high))`` becomes
    :class:`Range`, everything else becomes :class:`Equals`.  This is the
    convenience entry point used by the examples.
    """
    constraints: List[Constraint] = []
    for attribute, value in spec.items():
        if isinstance(value, (set, frozenset, list)):
            constraints.append(InSet(attribute, value))
        elif isinstance(value, tuple) and len(value) == 2 and value[0] == "range":
            low, high = value[1]
            constraints.append(Range(attribute, low=low, high=high))
        else:
            constraints.append(Equals(attribute, value))
    return Filter(constraints)


def conjunction(*constraints: Constraint) -> Filter:
    """Build a filter from constraint objects: ``conjunction(Equals("a", 1), Range("b", 0, 5))``."""
    return Filter(constraints)
