"""Notifications: the messages conveyed by the notification service.

A *notification* is "a message that reifies and describes an occurred event"
(Sect. 2).  REBECA is a content-based system, so a notification is simply a
set of named attributes; filters are predicates over those attributes.

Notifications in this reproduction are immutable mappings from attribute
names to values, with a publication timestamp and a unique id so that the
mobility layer can detect duplicates and measure delivery latency.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, Mapping, Optional

_notification_ids = itertools.count(1)


class Notification(Mapping[str, Any]):
    """An immutable, content-addressable event description.

    Parameters
    ----------
    attributes:
        The event content, e.g. ``{"service": "temperature", "location": "room-4", "value": 21.5}``.
    published_at:
        Simulated publication time, filled in by the publishing client.
    publisher:
        Name of the publishing client (informational; routing never uses it).
    """

    __slots__ = (
        "_attributes",
        "notification_id",
        "published_at",
        "publisher",
        "_wire",
        "_wire_bin",
        "_esize",
    )

    def __init__(
        self,
        attributes: Mapping[str, Any],
        published_at: Optional[float] = None,
        publisher: Optional[str] = None,
        notification_id: Optional[int] = None,
    ):
        self._attributes: Dict[str, Any] = dict(attributes)
        self.notification_id = (
            notification_id if notification_id is not None else next(_notification_ids)
        )
        self.published_at = published_at
        self.publisher = publisher
        # Canonical wire-encoded fragments (one per codec), filled in lazily
        # by repro.net.wire so forwarding hops don't re-serialize an immutable
        # payload once per outgoing link.  Never part of equality or hashing.
        self._wire: Optional[str] = None
        self._wire_bin: Optional[bytes] = None
        self._esize: Optional[int] = None

    # ------------------------------------------------------------- Mapping API
    def __getitem__(self, key: str) -> Any:
        return self._attributes[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def get(self, key: str, default: Any = None) -> Any:
        return self._attributes.get(key, default)

    # ---------------------------------------------------------------- helpers
    @property
    def attributes(self) -> Dict[str, Any]:
        """A copy of the attribute dictionary."""
        return dict(self._attributes)

    def with_attributes(self, **updates: Any) -> "Notification":
        """Return a copy with some attributes replaced (new notification id)."""
        merged = dict(self._attributes)
        merged.update(updates)
        return Notification(merged, published_at=self.published_at, publisher=self.publisher)

    def stamped(self, published_at: float, publisher: str) -> "Notification":
        """Return a copy carrying publication metadata (same id and content)."""
        return Notification(
            self._attributes,
            published_at=published_at,
            publisher=publisher,
            notification_id=self.notification_id,
        )

    def digest(self) -> int:
        """A stable digest of the notification identity.

        Used by the shared-buffer scheme of Sect. 4 ("virtual clients can keep
        only the digest (e.g., IDs or hash) of the events").
        """
        return hash(
            (self.notification_id, tuple(sorted(self._attributes.items(), key=lambda kv: kv[0])))
        )

    def estimated_size(self) -> int:
        """Abstract size in bytes, used for buffer-memory metrics.

        Memoized: attributes are immutable, and every forwarding hop wraps
        the same notification in a fresh envelope whose size estimate walks
        the payload again.
        """
        total = self._esize
        if total is None:
            total = 24
            for key, value in self._attributes.items():
                total += len(key)
                if isinstance(value, str):
                    total += len(value)
                else:
                    total += 8
            self._esize = total
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Notification):
            return NotImplemented
        return (
            self.notification_id == other.notification_id
            and self._attributes == other._attributes
        )

    def __hash__(self) -> int:
        return self.digest()

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self._attributes.items()))
        return f"Notification(#{self.notification_id}, {attrs})"


def notification(**attributes: Any) -> Notification:
    """Convenience constructor: ``notification(service="temperature", value=21)``."""
    return Notification(attributes)
