"""Clients and local brokers.

"Processes of a system based on pub/sub communication ... can act both as
producers and consumers, they are clients of the underlying notification
service.  The communication interface to the service is rather simple and
consists of pub, sub, unsub, and notify calls only." (Sect. 2)

A :class:`Client` is a simulated process with exactly that interface.  The
*local broker* of the paper — the piece of the middleware library loaded into
the client — is modelled by :class:`LocalBroker`, which keeps the client's
active subscriptions so they can be re-issued after reconnection (the basis
of physical mobility) and translates the API calls into messages to the
current border broker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..net.process import Message, Process
from ..net.simulator import Simulator
from .filters import Filter
from .notification import Notification
from .subscription import Subscription, subscription as make_subscription

NotifyCallback = Callable[[Notification], None]


@dataclass
class Delivery:
    """A notification as received by a client, with reception metadata."""

    notification: Notification
    received_at: float
    via: Optional[str] = None

    @property
    def latency(self) -> Optional[float]:
        if self.notification.published_at is None:
            return None
        return self.received_at - self.notification.published_at


class LocalBroker:
    """The client-side library component: tracks subscriptions, talks to the border broker."""

    def __init__(self, client: "Client"):
        self.client = client
        self.subscriptions: Dict[str, Subscription] = {}
        self.border_broker: Optional[str] = None

    # ------------------------------------------------------------- connection
    def connect(self, border_broker_name: str, reissue: bool = True) -> None:
        """Point the local broker at a border broker and (re-)issue subscriptions."""
        self.border_broker = border_broker_name
        if reissue and self.subscriptions:
            if not self.connected:
                self.client.undeliverable_calls += len(self.subscriptions)
                return
            # one batched link event for the whole burst, not one per entry
            self.client.send_many(
                border_broker_name,
                [Message(kind="subscribe", payload=sub) for sub in self.subscriptions.values()],
            )

    def disconnect(self, notify_broker: bool = False) -> None:
        """Forget the border broker; optionally tell it to drop our routing entries."""
        if notify_broker and self.border_broker and self.client.has_link(self.border_broker):
            self.client.send(self.border_broker, Message(kind="detach"))
        self.border_broker = None

    @property
    def connected(self) -> bool:
        return self.border_broker is not None and self.client.has_link(self.border_broker)

    # ------------------------------------------------------------------ calls
    def sub(self, sub: Subscription) -> None:
        self.subscriptions[sub.sub_id] = sub
        self._send("subscribe", sub)

    def unsub(self, sub_id: str) -> Optional[Subscription]:
        sub = self.subscriptions.pop(sub_id, None)
        if sub is not None:
            self._send("unsubscribe", {"sub_id": sub_id, "filter": sub.filter})
        return sub

    def pub(self, notification: Notification) -> bool:
        return self._send("publish", notification)

    def _send(self, kind: str, payload: Any) -> bool:
        if not self.connected or self.border_broker is None:
            self.client.undeliverable_calls += 1
            return False
        self.client.send(self.border_broker, Message(kind=kind, payload=payload))
        return True


class Client(Process):
    """A producer/consumer attached to the notification service.

    The four paper operations map to :meth:`publish` (pub), :meth:`subscribe`
    (sub), :meth:`unsubscribe` (unsub) and the :meth:`on_notify` hook
    (notify).  Received notifications are additionally recorded in
    :attr:`deliveries` so experiments can compute loss, duplication and
    latency without instrumenting application code.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.local_broker = LocalBroker(self)
        self.deliveries: List[Delivery] = []
        self.published: List[Notification] = []
        self.undeliverable_calls = 0
        self._notify_callbacks: List[NotifyCallback] = []

    # ------------------------------------------------------------- connection
    def connect_to(self, border_broker_name: str, reissue: bool = True) -> None:
        """Use the (already wired) link to ``border_broker_name`` as the access point."""
        self.local_broker.connect(border_broker_name, reissue=reissue)

    def disconnect(self, notify_broker: bool = False) -> None:
        self.local_broker.disconnect(notify_broker=notify_broker)

    @property
    def connected(self) -> bool:
        return self.local_broker.connected

    @property
    def border_broker(self) -> Optional[str]:
        return self.local_broker.border_broker

    # ------------------------------------------------------------ pub/sub API
    def subscribe(
        self,
        filter: Filter,
        sub_id: Optional[str] = None,
        location_dependent: bool = False,
        template: Optional[Any] = None,
    ) -> Subscription:
        """Register interest in notifications matching ``filter``."""
        sub = make_subscription(
            filter,
            subscriber=self.name,
            sub_id=sub_id,
            location_dependent=location_dependent,
            template=template,
        )
        self.local_broker.sub(sub)
        return sub

    def unsubscribe(self, sub: Subscription | str) -> Optional[Subscription]:
        """Withdraw a subscription (by object or id)."""
        sub_id = sub if isinstance(sub, str) else sub.sub_id
        return self.local_broker.unsub(sub_id)

    def publish(self, notification: Notification | Mapping[str, Any]) -> Notification:
        """Publish a notification (or a plain attribute mapping)."""
        if not isinstance(notification, Notification):
            notification = Notification(notification)
        stamped = notification.stamped(published_at=self.sim.now, publisher=self.name)
        self.published.append(stamped)
        self.local_broker.pub(stamped)
        return stamped

    @property
    def subscriptions(self) -> List[Subscription]:
        return list(self.local_broker.subscriptions.values())

    # --------------------------------------------------------------- delivery
    def on_message(self, message: Message) -> None:
        if message.kind == "notify":
            notification: Notification = message.payload
            delivery = Delivery(
                notification=notification, received_at=self.sim.now, via=message.sender
            )
            self.deliveries.append(delivery)
            self.on_notify(notification)
            for callback in list(self._notify_callbacks):
                callback(notification)
        # Clients ignore every other message kind.

    def on_notify(self, notification: Notification) -> None:
        """Application hook, called for every delivered notification.  Override freely."""

    def add_notify_callback(self, callback: NotifyCallback) -> None:
        self._notify_callbacks.append(callback)

    # ------------------------------------------------------------------ stats
    def received_notifications(self) -> List[Notification]:
        return [delivery.notification for delivery in self.deliveries]

    def received_ids(self) -> List[int]:
        return [delivery.notification.notification_id for delivery in self.deliveries]

    def duplicate_deliveries(self) -> int:
        """Number of deliveries beyond the first for any notification id."""
        seen: Dict[int, int] = {}
        duplicates = 0
        for delivery in self.deliveries:
            nid = delivery.notification.notification_id
            seen[nid] = seen.get(nid, 0) + 1
            if seen[nid] > 1:
                duplicates += 1
        return duplicates

    def delivery_latencies(self) -> List[float]:
        return [d.latency for d in self.deliveries if d.latency is not None]
