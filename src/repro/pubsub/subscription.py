"""Subscriptions.

A subscription registers a consumer's interest in notifications matching a
filter.  Subscriptions are first-class objects in this reproduction because
the mobility layers need to distinguish *location-dependent* subscriptions
(which the replicator replicates at neighbouring brokers, Sect. 3.1) from
ordinary ones (which are handled by the physical-mobility relocation
algorithm), and need stable identities for relocation, replication and
garbage collection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from .filters import Filter

_subscription_ids = itertools.count(1)


def next_subscription_id(prefix: str = "sub") -> str:
    """Generate a globally unique subscription id."""
    return f"{prefix}-{next(_subscription_ids)}"


@dataclass(frozen=True)
class Subscription:
    """An active registration of interest.

    Attributes
    ----------
    sub_id:
        Unique identity of the subscription.  The same identity is kept when
        a location-dependent subscription is re-bound to a new location or
        replicated to a shadow client, so that covering and garbage
        collection work across the broker network.
    filter:
        The concrete content-based filter that is installed in routing
        tables.  For location-dependent subscriptions this is the *bound*
        filter (``myloc`` already substituted).
    subscriber:
        Name of the (virtual) client that issued the subscription.
    location_dependent:
        True if the subscription was declared with the ``myloc`` marker and
        therefore participates in logical mobility and replication.
    template:
        For location-dependent subscriptions, an opaque reference to the
        unbound template (see :mod:`repro.core.location_filter`), kept so the
        filter can be re-bound when the client's location changes.
    meta:
        Free-form annotations (e.g. the application that owns it).
    """

    sub_id: str
    filter: Filter
    subscriber: str
    location_dependent: bool = False
    template: Optional[Any] = None
    meta: Dict[str, Any] = field(default_factory=dict, compare=False)

    def rebound(self, new_filter: Filter) -> "Subscription":
        """Return a copy with the filter replaced (same id), for re-binding ``myloc``."""
        return replace(self, filter=new_filter)

    def for_subscriber(self, subscriber: str) -> "Subscription":
        """Return a copy owned by a different (virtual) client, keeping id and filter.

        Used when the replicator casts the subscription onto a shadow virtual
        client at a neighbouring broker.
        """
        return replace(self, subscriber=subscriber)

    def matches(self, notification: Any) -> bool:
        """Convenience: evaluate the subscription's filter on a notification."""
        return self.filter.matches(notification)

    def estimated_size(self) -> int:
        """Abstract size of the subscription message on the wire."""
        return 16 + len(self.sub_id) + self.filter.estimated_size()

    def __repr__(self) -> str:
        tag = " [myloc]" if self.location_dependent else ""
        return f"Subscription({self.sub_id}, by={self.subscriber}{tag}, {self.filter!r})"


def subscription(
    filter: Filter,
    subscriber: str,
    sub_id: Optional[str] = None,
    location_dependent: bool = False,
    template: Optional[Any] = None,
) -> Subscription:
    """Create a subscription, generating an id when none is given."""
    return Subscription(
        sub_id=sub_id or next_subscription_id(),
        filter=filter,
        subscriber=subscriber,
        location_dependent=location_dependent,
        template=template,
    )
