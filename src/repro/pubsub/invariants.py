"""Explicit invariant checkers for chaos and soak runs.

The scripted chaos storyline of :mod:`repro.pubsub.chaos` checks its
invariants inline, woven into the phases of one hand-written scenario.  The
randomized schedules of :mod:`repro.pubsub.chaosgen` need the same checks as
*reusable library functions*: every checker below takes plain observations
(delivered id sets, duplicate counters, resource-size snapshots) and returns
a list of :class:`Violation` records — empty means the invariant held.

The library encodes what "self-repairing" means for the paper's middleware:

* **zero duplicates** — no notification is ever delivered twice to the same
  subscriber, across any interleaving of faults and recoveries;
* **exactly-once delivery** of an expected id set — used both for healthy
  traffic (a burst published on a fully-up path must arrive completely) and
  for post-recovery replays of buffered/lost publications;
* **provable loss** — publications routed into a fault window must *not*
  arrive; a zero-sized expectation set is rejected loudly so a degenerate
  window can never pass the check vacuously;
* **cross-backend convergence** — the delivered sets of a real-socket run
  must equal the deterministic simulator oracle under the identical
  schedule;
* **resource non-growth** — routing tables, transport registries, dynamic
  links, timers and file descriptors must return to their baseline after
  fault/recovery cycles (the gated soak metric);
* **conservation** — on paths that saw no fault, every message sent is
  received.

Checkers never raise on violation; callers aggregate the returned lists and
decide (the fuzzer shrinks the schedule, the soak loop aborts, tests
assert).  :func:`require` converts a non-empty violation list into an
:class:`InvariantError` for callers that do want an exception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

#: the invariant names used by the checkers below, in severity order
INVARIANT_NAMES = (
    "no-duplicates",
    "exactly-once",
    "provable-loss",
    "convergence",
    "non-growth",
    "conservation",
)


@dataclass(frozen=True)
class Violation:
    """One invariant violation: which invariant, where, and what happened."""

    invariant: str
    subject: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.invariant}] {self.subject}: {self.detail}"


class InvariantError(AssertionError):
    """Raised by :func:`require` when at least one invariant was violated."""

    def __init__(self, violations: Sequence[Violation]):
        self.violations = list(violations)
        lines = "\n  ".join(str(violation) for violation in self.violations)
        super().__init__(f"{len(self.violations)} invariant violation(s):\n  {lines}")


def require(violations: Sequence[Violation]) -> None:
    """Raise :class:`InvariantError` unless ``violations`` is empty."""
    if violations:
        raise InvariantError(violations)


# ------------------------------------------------------------------ delivery


def check_no_duplicates(duplicates_by_client: Mapping[str, int]) -> List[Violation]:
    """Zero duplicate deliveries, per subscriber."""
    return [
        Violation("no-duplicates", name, f"{count} duplicate deliveries")
        for name, count in sorted(duplicates_by_client.items())
        if count
    ]


def check_exactly_once(
    subject: str,
    expected: Iterable[int],
    delivered: Iterable[int],
    context: str = "",
) -> List[Violation]:
    """Every expected id delivered exactly once, nothing unexpected.

    ``delivered`` is the subscriber's *full* delivered id sequence; only ids
    in ``expected`` are judged, so the checker composes per publish burst.
    """
    expected_set = set(expected)
    note = f" ({context})" if context else ""
    violations: List[Violation] = []
    seen: Dict[int, int] = {}
    for nid in delivered:
        if nid in expected_set:
            seen[nid] = seen.get(nid, 0) + 1
    missing = sorted(expected_set - set(seen))
    if missing:
        violations.append(
            Violation("exactly-once", subject, f"never delivered: {missing[:8]}{note}")
        )
    repeated = sorted(nid for nid, count in seen.items() if count > 1)
    if repeated:
        violations.append(
            Violation("exactly-once", subject, f"delivered more than once: {repeated[:8]}{note}")
        )
    return violations


def check_provable_loss(
    subject: str,
    window: Iterable[int],
    delivered: Iterable[int],
    context: str = "",
) -> List[Violation]:
    """Publications routed into a fault window must not arrive.

    A zero-length window would make the check pass vacuously — the scripted
    chaos scenario once had exactly that hole — so an empty ``window`` is
    itself a violation: the caller asserted "provably lost" about nothing.
    """
    window_set = set(window)
    note = f" ({context})" if context else ""
    if not window_set:
        return [
            Violation(
                "provable-loss",
                subject,
                f"empty fault window: nothing was published into the fault{note}",
            )
        ]
    leaked = sorted(window_set & set(delivered))
    if leaked:
        return [
            Violation(
                "provable-loss",
                subject,
                f"publications into the fault window were delivered: {leaked[:8]}{note}",
            )
        ]
    return []


def check_convergence(
    reference: Mapping[str, Sequence[Tuple]],
    candidate: Mapping[str, Sequence[Tuple]],
    reference_name: str = "sim",
    candidate_name: str = "candidate",
) -> List[Violation]:
    """Per-subscriber delivered sets must be identical across backends."""
    violations: List[Violation] = []
    for name in sorted(set(reference) | set(candidate)):
        expected = list(reference.get(name, ()))
        actual = list(candidate.get(name, ()))
        if expected == actual:
            continue
        missing = [item for item in expected if item not in actual]
        extra = [item for item in actual if item not in expected]
        violations.append(
            Violation(
                "convergence",
                name,
                f"{candidate_name} delivered {len(actual)} vs {reference_name} "
                f"{len(expected)} (missing {missing[:5]}, extra {extra[:5]})",
            )
        )
    return violations


# ------------------------------------------------------------------ resources


def check_non_growth(
    baseline: Mapping[str, int],
    current: Mapping[str, int],
    slack: Mapping[str, int] | None = None,
) -> List[Violation]:
    """No tracked resource may exceed its baseline (plus optional slack).

    ``baseline`` and ``current`` are size snapshots — routing-table entries,
    registry entries, live dynamic links, pending timers, open file
    descriptors — taken at comparable quiesced points.  Shrinking is fine
    (recovery may prune); growth is the leak signal.  ``slack`` grants named
    keys a small absolute allowance (e.g. one or two fds for a lazily
    created pipe).
    """
    slack = slack or {}
    violations: List[Violation] = []
    for key in sorted(current):
        if key not in baseline:
            continue  # a resource that appeared later has no baseline to hold
        allowed = baseline[key] + slack.get(key, 0)
        if current[key] > allowed:
            violations.append(
                Violation(
                    "non-growth",
                    key,
                    f"grew from {baseline[key]} to {current[key]} (allowed {allowed})",
                )
            )
    return violations


def check_conservation(subject: str, sent: int, received: int) -> List[Violation]:
    """On a path that saw no fault, every message sent must be received."""
    if sent != received:
        return [Violation("conservation", subject, f"sent {sent} != received {received}")]
    return []


# ------------------------------------------------------------------ snapshots


def resource_snapshot(net) -> Dict[str, int]:
    """Size snapshot of a :class:`~repro.pubsub.broker_network.BrokerNetwork`.

    Merges per-broker routing-table sizes with whatever the transport
    reports through :meth:`~repro.net.transport.Transport.resource_sizes`
    (links, registries, timers, writers).  Comparable before/after fault
    cycles via :func:`check_non_growth`.
    """
    sizes: Dict[str, int] = {}
    for name in net.broker_names():
        sizes[f"routing:{name}"] = net.brokers[name].routing_table_size()
    for key, value in net.transport.resource_sizes().items():
        sizes[f"transport:{key}"] = value
    return sizes
