"""Chaos scenario: a covering-churn workload under injected faults.

The paper's research agenda (Sect. 4) assumes an infrastructure where links
fail and brokers disappear and return while the subscription set churns.
:func:`run_chaos_scenario` scripts exactly that storyline on a 3-broker
covering line and *checks its own invariants as it goes*:

1. **baseline** — temperature publications flow to a broad subscriber on B1
   and a covered subscriber on B2;
2. **crash** — B2 is crashed (``kill -9`` + loss of all state on the cluster
   backend, a frozen process on the simulator); publications routed through
   it are lost, and the scenario asserts they are;
3. **recover** — B2 is restarted under supervision, re-links, re-syncs
   routing state, clients re-attach; the lost publications are replayed and
   must now arrive exactly once;
4. **sever/restore** — the B2–B3 link is severed and restored with the same
   publish-lost/replay-delivered check;
5. **churn** — the broad subscription is withdrawn, so the covering
   relationship that suppressed the covered subscriber's advertisement
   flips *across the recovered state*, and a final temperature burst must
   reach only the covered subscriber.

Because every fault goes through the transport-agnostic
:meth:`~repro.net.transport.Transport.inject_fault` seam, the same scenario
runs unchanged on the simulator, the in-process asyncio sockets and the
multi-process cluster — and the delivered-notification *sets* must agree
across all three, which is the cross-backend convergence assertion of
``tests/test_faults_cluster.py`` and the ``repro chaos-demo`` CLI.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..net.faults import FaultInjector
from .broker_network import line_topology
from .filters import Equals, Filter, Range
from .notification import Notification

#: notification-id bases per phase, so delivered sets are self-describing
TEMP_BASE = 1000
KILL_BASE = 2000
SEVER_BASE = 3000
FINAL_BASE = 4000


class ChaosError(AssertionError):
    """An invariant of the chaos scenario was violated mid-run."""


@dataclass
class ChaosResult:
    """Outcome of one chaos run; all counts are deterministic per backend."""

    backend: str
    #: subscriber name -> sorted delivered notification ids
    delivered: Dict[str, Tuple[int, ...]]
    #: duplicate deliveries across all subscribers (must be 0)
    duplicates: int
    #: publications that went into a fault window and were provably lost
    lost: int
    #: replayed publications that arrived after recovery (== lost)
    replayed: int
    #: ``resync`` markers received across all brokers
    resync_markers: int
    #: subscriptions re-forwarded by resyncs (timing-dependent on cluster)
    resync_forwards: int
    #: the transport's recovery-action counters (empty on sim/asyncio)
    recovery: Dict[str, int] = field(default_factory=dict)
    #: wall-clock seconds per phase (reporting only, never gated)
    phase_sec: Dict[str, float] = field(default_factory=dict)
    #: the seed that drew this run's publication values (None = the pinned
    #: storyline values); always reported so a failing log is replayable
    seed: Optional[int] = None

    def delivered_total(self) -> int:
        return sum(len(ids) for ids in self.delivered.values())


def run_chaos_scenario(
    backend="sim",
    temps: int = 8,
    deep: int = 4,
    kill: bool = True,
    sever: bool = True,
    seed: Optional[int] = None,
    codec=None,
) -> ChaosResult:
    """Run the chaos storyline on ``backend`` and return its metrics.

    ``temps``/``deep`` size the publication bursts; ``kill``/``sever``
    toggle the crash-recovery and link-sever phases (both on by default).
    ``seed`` draws the temperature values from a private ``Random(seed)``
    instead of the pinned storyline values — same seed, same values, on any
    backend — so CI can vary the scenario while staying replayable from the
    logged seed alone.  Raises :class:`ChaosError` as soon as any invariant
    breaks, and :class:`ValueError` for degenerate burst sizes: a
    zero-length fault window would make the "publications provably lost"
    checks pass vacuously, so it is rejected up front.
    """
    if temps < 2:
        raise ValueError(
            f"chaos scenario needs temps >= 2 (one in-range, one out-of-range value), got {temps}"
        )
    if deep < 1 and (kill or sever):
        raise ValueError(
            f"chaos scenario needs a non-empty fault window: deep >= 1, got {deep} "
            "(a zero-length window would pass the provable-loss checks vacuously)"
        )
    net = line_topology(n_brokers=3, routing="covering", transport=backend, codec=codec)
    phase_sec: Dict[str, float] = {}
    try:
        s1 = net.add_client("s1", "B1")
        c2 = net.add_client("c2", "B2")
        s3 = net.add_client("s3", "B3")
        pub = net.add_client("pub", "B1")
        s1.subscribe(Filter([Equals("service", "temp")]), sub_id="g-broad")
        c2.subscribe(
            Filter([Equals("service", "temp"), Range("value", 10, 30)]), sub_id="g-covered"
        )
        s3.subscribe(Filter([Equals("service", "deep")]), sub_id="g-deep")
        net.run_until_idle()
        injector = FaultInjector(net.sim, net.network)

        if seed is None:
            temp_values = [5 + 5 * i for i in range(temps)]
        else:
            # Draw from a private Random(seed) so the values are replayable
            # from the seed alone.  Pin one value inside and one outside the
            # covered Range(10, 30) so neither covering check is vacuous.
            rng = random.Random(seed)
            temp_values = [rng.randrange(-20, 80) for _ in range(temps)]
            temp_values[rng.randrange(temps)] = rng.randrange(10, 31)
            outside = rng.choice([rng.randrange(-20, 10), rng.randrange(31, 80)])
            candidates = [i for i, value in enumerate(temp_values) if not 10 <= value <= 30]
            temp_values[candidates[0] if candidates else 0] = outside
        in_range = tuple(
            TEMP_BASE + i for i, value in enumerate(temp_values) if 10 <= value <= 30
        )

        def ids(client) -> Tuple[int, ...]:
            return tuple(sorted(d.notification.notification_id for d in client.deliveries))

        def publish_temps(base: int) -> None:
            for i, value in enumerate(temp_values):
                pub.publish(
                    Notification({"service": "temp", "value": value}, notification_id=base + i)
                )
            net.run_until_idle()

        def publish_deep(base: int) -> None:
            for i in range(deep):
                pub.publish(
                    Notification({"service": "deep", "seq": i}, notification_id=base + i)
                )
            net.run_until_idle()

        def expect(condition: bool, detail: str) -> None:
            if not condition:
                raise ChaosError(f"[{net.transport.name}] {detail}")

        lost = replayed = 0

        # ------------------------------------------------------- 1. baseline
        t0 = time.perf_counter()
        publish_temps(TEMP_BASE)
        expect(
            ids(s1) == tuple(TEMP_BASE + i for i in range(temps)),
            f"broad subscriber missed baseline temps: {ids(s1)}",
        )
        expect(ids(c2) == in_range, f"covered subscriber got {ids(c2)}, wanted {in_range}")
        phase_sec["baseline"] = time.perf_counter() - t0

        # -------------------------------------------- 2+3. crash and recover
        if kill:
            t0 = time.perf_counter()
            injector.crash_now("B2")
            publish_deep(KILL_BASE)
            expect(
                not any(KILL_BASE <= nid < KILL_BASE + deep for nid in ids(s3)),
                "publications routed through the dead broker were delivered",
            )
            lost += deep
            phase_sec["crash"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            injector.restart_now("B2")
            net.run_until_idle()  # let resyncs and re-subscriptions settle
            publish_deep(KILL_BASE)  # replay the lost ids
            expect(
                tuple(nid for nid in ids(s3) if KILL_BASE <= nid < KILL_BASE + deep)
                == tuple(KILL_BASE + i for i in range(deep)),
                f"replay after restart not delivered exactly once: {ids(s3)}",
            )
            replayed += deep
            phase_sec["recover"] = time.perf_counter() - t0

        # ------------------------------------------- 4+5. sever and restore
        if sever:
            t0 = time.perf_counter()
            injector.link_down_now("B2", "B3")
            publish_deep(SEVER_BASE)
            expect(
                not any(SEVER_BASE <= nid < SEVER_BASE + deep for nid in ids(s3)),
                "publications crossed a severed link",
            )
            lost += deep
            phase_sec["sever"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            injector.link_up_now("B2", "B3")
            net.run_until_idle()
            publish_deep(SEVER_BASE)
            expect(
                tuple(nid for nid in ids(s3) if SEVER_BASE <= nid < SEVER_BASE + deep)
                == tuple(SEVER_BASE + i for i in range(deep)),
                f"replay after link restore not delivered exactly once: {ids(s3)}",
            )
            replayed += deep
            phase_sec["restore"] = time.perf_counter() - t0

        # -------------------------------------------------- 6. covering churn
        t0 = time.perf_counter()
        s1.unsubscribe("g-broad")
        net.run_until_idle()
        publish_temps(FINAL_BASE)
        expect(
            not any(nid >= FINAL_BASE for nid in ids(s1)),
            "unsubscribed broad subscriber still receives",
        )
        expect(
            tuple(nid for nid in ids(c2) if nid >= FINAL_BASE)
            == tuple(nid - TEMP_BASE + FINAL_BASE for nid in in_range),
            f"covered subscriber wrong after covering churn: {ids(c2)}",
        )
        phase_sec["churn"] = time.perf_counter() - t0

        duplicates = sum(c.duplicate_deliveries() for c in (s1, c2, s3))
        expect(duplicates == 0, f"{duplicates} duplicate deliveries")
        broker_stats = [net.brokers[name].stats() for name in net.broker_names()]
        return ChaosResult(
            backend=net.transport.name,
            delivered={"s1": ids(s1), "c2": ids(c2), "s3": ids(s3)},
            duplicates=duplicates,
            lost=lost,
            replayed=replayed,
            resync_markers=sum(stats.get("resyncs", 0) for stats in broker_stats),
            resync_forwards=sum(stats.get("resync_forwards", 0) for stats in broker_stats),
            recovery=dict(getattr(net.transport, "recovery", {})),
            phase_sec=phase_sec,
            seed=seed,
        )
    finally:
        net.close()
