"""Doubles and shared workloads for exercising the pub/sub stack.

* :class:`RecordingBroker` / :func:`normalize_merged_ids` — drive a routing
  strategy outside a full broker network and compare the control messages it
  emits; shared by the equivalence tests
  (``tests/test_routing_advertising.py``) and the subscription-control
  benchmark (``benchmarks/bench_covering_scale.py``).
* :func:`run_line_workload` — the canonical transport-backend workload (a
  line of brokers, one progressively-narrower subscriber per broker, one
  publisher, delivery verification); shared by the ``repro net-demo`` CLI
  and ``benchmarks/bench_transport.py`` so the demo and the benchmark's
  integration gate can never diverge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Tuple

from .routing_table import RoutingTable


class RecordingBroker:
    """The narrow broker interface a routing strategy sees, with a message log.

    Every ``forward_subscribe``/``forward_unsubscribe`` call is appended to
    :attr:`log` as ``(kind, link, sub_id, filter_key)`` so two strategy runs
    can be compared message by message.
    """

    def __init__(self, neighbors):
        self.routing_table = RoutingTable()
        self._neighbors = list(neighbors)
        self.log: List[Tuple[str, str, str, Tuple]] = []

    def broker_neighbors(self):
        return list(self._neighbors)

    def client_links(self):
        return []

    def forward_subscribe(self, subscription, link):
        self.log.append(
            ("subscribe", link, subscription.sub_id, subscription.filter.key())
        )

    def forward_unsubscribe(self, sub_id, filter, link):
        self.log.append(("unsubscribe", link, sub_id, filter.key()))


@dataclass
class SubscriberOutcome:
    """Per-subscriber result of :func:`run_line_workload`."""

    name: str
    threshold: int
    expected: int
    received: int
    latencies: List[float]

    @property
    def ok(self) -> bool:
        return self.received == self.expected


@dataclass
class LineWorkloadResult:
    """Outcome of :func:`run_line_workload` on one backend."""

    backend: str
    brokers: int
    notifications: int
    wall_sec: float
    subscribers: List[SubscriberOutcome]
    codec: str = "json"

    @property
    def delivered(self) -> int:
        return sum(s.received for s in self.subscribers)

    @property
    def expected(self) -> int:
        return sum(s.expected for s in self.subscribers)

    @property
    def mismatches(self) -> int:
        return sum(1 for s in self.subscribers if not s.ok)

    def all_latencies(self) -> List[float]:
        return sorted(l for s in self.subscribers for l in s.latencies)


def run_line_workload(
    backend: str,
    brokers: int,
    notifications: int,
    topic: str = "demo",
    payload_pad: str = "",
    observer=None,
    codec=None,
    config=None,
) -> LineWorkloadResult:
    """Run the canonical transport workload on ``backend`` and verify it.

    Builds a line of ``brokers`` brokers on the chosen transport, attaches
    one subscriber per broker with a progressively narrower
    ``topic == X AND value >= threshold`` filter, publishes ``notifications``
    values from the first broker, drains to quiescence and reports the
    per-subscriber delivered counts (with real delivery latencies) against
    what each filter promises.  The socket backends (``asyncio`` and the
    multi-process ``cluster``) run at raw socket speed (latency 0); the
    simulator keeps its default link latency.

    ``config`` carries the remaining knobs as one
    :class:`~repro.config.SystemConfig` (its ``transport`` field is
    overridden by ``backend``); the legacy ``codec=`` kwarg keeps working
    but cannot be combined with it.
    """
    from .broker_network import line_topology
    from .filters import AtLeast, Equals, Filter
    from .notification import Notification

    from ..net import wire

    link_latency = 0.001 if backend == "sim" else 0.0
    if config is not None:
        if codec is not None:
            raise ValueError("pass the codec inside config=, not alongside it")
        config = config.replace(transport=backend)
        codec_name = config.codec
        net = line_topology(n_brokers=brokers, link_latency=link_latency, config=config)
    else:
        codec_name = wire.get_codec(codec).name
        net = line_topology(
            n_brokers=brokers,
            transport=backend,
            link_latency=link_latency,
            codec=codec,
        )
    try:
        subscribers = []
        for i, broker_name in enumerate(net.broker_names()):
            threshold = i * max(1, notifications // brokers)
            client = net.add_client(f"sub@{broker_name}", broker_name)
            client.subscribe(
                Filter([Equals("topic", topic), AtLeast("value", threshold)]),
                sub_id=f"{topic}-{broker_name}",
            )
            subscribers.append((client, threshold))
        net.run_until_idle()

        publisher = net.add_client("publisher", net.broker_names()[0])
        payloads = [
            Notification(
                {"topic": topic, "value": value, **({"pad": payload_pad} if payload_pad else {})}
            )
            for value in range(notifications)
        ]
        start = time.perf_counter()
        for payload in payloads:
            publisher.publish(payload)
        net.run_until_idle()
        wall = time.perf_counter() - start

        outcomes = [
            SubscriberOutcome(
                name=client.name,
                threshold=threshold,
                expected=max(0, notifications - threshold),
                received=len(client.deliveries),
                latencies=client.delivery_latencies(),
            )
            for client, threshold in subscribers
        ]
        return LineWorkloadResult(
            backend=backend,
            brokers=brokers,
            notifications=notifications,
            wall_sec=wall,
            subscribers=outcomes,
            codec=codec_name,
        )
    finally:
        # ``observer`` (e.g. the cluster-demo CLI) gets the network just
        # before teardown, so it can keep a transport reference and inspect
        # child exit codes after close(); a raising observer must not skip
        # the close (it would leak broker child processes)
        try:
            if observer is not None:
                observer(net)
        finally:
            net.close()


@dataclass
class FlipWorkloadResult:
    """Outcome of :func:`run_flip_workload` on one backend."""

    backend: str
    brokers: int
    notifications: int
    wall_sec: float
    subscribers: List[SubscriberOutcome]
    #: subscriber name -> sorted ``value`` attributes of its deliveries
    delivered_values: "dict[str, List[int]]"
    #: broker name -> knob values its live reconfiguration applied
    applied: "dict[str, dict]"

    @property
    def delivered(self) -> int:
        return sum(s.received for s in self.subscribers)

    @property
    def expected(self) -> int:
        return sum(s.expected for s in self.subscribers)

    @property
    def mismatches(self) -> int:
        return sum(1 for s in self.subscribers if not s.ok)


def _flipped(value: str, names) -> str:
    """A different member of a knob set (indexed->brute, brute->indexed, interval->brute).

    The first name is the fallback everything else flips to, so the flip is
    well-defined even for knobs that grow beyond two names.
    """
    return names[1] if value == names[0] else names[0]


def run_flip_workload(
    backend: str,
    brokers: int,
    notifications: int,
    topic: str = "flip",
    config=None,
    changes=None,
) -> FlipWorkloadResult:
    """The live-reconfiguration workload: flip every broker mid-traffic.

    Same line topology and subscriber filters as :func:`run_line_workload`,
    but after publishing the first half of the notifications — *without*
    draining first on the socket backends, so frames are genuinely in
    flight — every broker is flipped live through
    :meth:`~repro.net.transport.Transport.configure` (by default to the
    opposite matcher *and* advertising mode), then the second half is
    published and the run drained.  Because the flips are verified in place
    (identical ``destinations()`` and advertised-filter multisets), the
    delivered sets must equal a never-flipped run's exactly — that is what
    the control-plane tests and ``benchmarks/bench_controlplane.py`` pin
    across all three backends.

    ``changes=None`` derives the flip from the starting config;
    ``changes={}`` runs the identical workload with no flip (the oracle).
    """
    from ..config import MATCHER_NAMES, SystemConfig
    from .broker_network import line_topology
    from .filters import AtLeast, Equals, Filter
    from .notification import Notification
    from .routing import ADVERTISING_NAMES

    config = (config if config is not None else SystemConfig()).replace(transport=backend)
    if changes is None:
        changes = {
            "matcher": _flipped(config.matcher, MATCHER_NAMES),
            "advertising": _flipped(config.advertising, ADVERTISING_NAMES),
        }
    net = line_topology(
        n_brokers=brokers,
        link_latency=0.001 if backend == "sim" else 0.0,
        config=config,
    )
    try:
        subscribers = []
        for i, broker_name in enumerate(net.broker_names()):
            threshold = i * max(1, notifications // brokers)
            client = net.add_client(f"sub@{broker_name}", broker_name)
            client.subscribe(
                Filter([Equals("topic", topic), AtLeast("value", threshold)]),
                sub_id=f"{topic}-{broker_name}",
            )
            subscribers.append((client, threshold))
        net.run_until_idle()

        publisher = net.add_client("publisher", net.broker_names()[0])
        half = notifications // 2
        start = time.perf_counter()
        for value in range(half):
            publisher.publish(Notification({"topic": topic, "value": value}))
        applied = {}
        for broker_name in net.broker_names():
            applied[broker_name] = net.transport.configure(broker_name, changes)
        for value in range(half, notifications):
            publisher.publish(Notification({"topic": topic, "value": value}))
        net.run_until_idle()
        wall = time.perf_counter() - start

        outcomes = []
        delivered_values = {}
        for client, threshold in subscribers:
            outcomes.append(
                SubscriberOutcome(
                    name=client.name,
                    threshold=threshold,
                    expected=max(0, notifications - threshold),
                    received=len(client.deliveries),
                    latencies=client.delivery_latencies(),
                )
            )
            delivered_values[client.name] = sorted(
                delivery.notification.attributes["value"] for delivery in client.deliveries
            )
        return FlipWorkloadResult(
            backend=backend,
            brokers=brokers,
            notifications=notifications,
            wall_sec=wall,
            subscribers=outcomes,
            delivered_values=delivered_values,
            applied=applied,
        )
    finally:
        net.close()


def normalize_merged_ids(log):
    """Map generated merged-subscription ids to first-appearance ordinals.

    Merged advertisements draw ids from a process-global counter, so two
    otherwise identical runs disagree on the literal ids; the sequence of
    merges is what must match.
    """
    mapping = {}
    result = []
    for kind, link, sub_id, filter_key in log:
        if sub_id.startswith("merged-"):
            sub_id = mapping.setdefault(sub_id, f"merged#{len(mapping)}")
        result.append((kind, link, sub_id, filter_key))
    return result
