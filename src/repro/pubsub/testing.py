"""Doubles for exercising routing strategies outside a full broker network.

Shared by the equivalence tests (``tests/test_routing_advertising.py``) and
the subscription-control benchmark (``benchmarks/bench_covering_scale.py``),
both of which need to drive a strategy directly and compare the control
messages it emits.
"""

from __future__ import annotations

from typing import List, Tuple

from .routing_table import RoutingTable


class RecordingBroker:
    """The narrow broker interface a routing strategy sees, with a message log.

    Every ``forward_subscribe``/``forward_unsubscribe`` call is appended to
    :attr:`log` as ``(kind, link, sub_id, filter_key)`` so two strategy runs
    can be compared message by message.
    """

    def __init__(self, neighbors):
        self.routing_table = RoutingTable()
        self._neighbors = list(neighbors)
        self.log: List[Tuple[str, str, str, Tuple]] = []

    def broker_neighbors(self):
        return list(self._neighbors)

    def client_links(self):
        return []

    def forward_subscribe(self, subscription, link):
        self.log.append(
            ("subscribe", link, subscription.sub_id, subscription.filter.key())
        )

    def forward_unsubscribe(self, sub_id, filter, link):
        self.log.append(("unsubscribe", link, sub_id, filter.key()))


def normalize_merged_ids(log):
    """Map generated merged-subscription ids to first-appearance ordinals.

    Merged advertisements draw ids from a process-global counter, so two
    otherwise identical runs disagree on the literal ids; the sequence of
    merges is what must match.
    """
    mapping = {}
    result = []
    for kind, link, sub_id, filter_key in log:
        if sub_id.startswith("merged-"):
            sub_id = mapping.setdefault(sub_id, f"merged#{len(mapping)}")
        result.append((kind, link, sub_id, filter_key))
    return result
