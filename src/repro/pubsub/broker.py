"""Brokers: the routing processes of the notification service.

The paper distinguishes three broker roles (Sect. 2):

* *local brokers* are part of the communication library loaded into clients;
  they are not vertices of the broker graph (see :mod:`repro.pubsub.client`);
* *border brokers* form the boundary of the middleware and maintain
  connections to local brokers (i.e. clients, virtual clients, replicators);
* *inner brokers* are only connected to other brokers.

A single :class:`Broker` class implements both border and inner behaviour —
the difference is simply whether any client links are attached.  Brokers
forward ``subscribe``/``unsubscribe``/``publish`` messages according to a
pluggable routing strategy (:mod:`repro.pubsub.routing`) and deliver
``notify`` messages to matching client links.  The routing decision is a
single event in the simulator, which preserves the end-to-end sender-FIFO
characteristic the paper assumes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from ..net.process import Message, Process
from ..net.simulator import Simulator
from ..obs.metrics import DEFAULT_LATENCY_BOUNDS, MetricsRegistry
from .filters import Filter
from .notification import Notification
from .routing import RoutingStrategy, make_strategy
from .routing_table import RoutingTable, probe_notifications
from .subscription import Subscription


class Broker(Process):
    """A routing process in the acyclic broker network.

    Parameters
    ----------
    sim:
        The transport backend's clock: the discrete-event
        :class:`~repro.net.simulator.Simulator` on the default ``"sim"``
        backend, or an :class:`~repro.net.transport.AsyncioClock` when the
        broker runs on real sockets.  Brokers only read time and never
        schedule, so the same routing logic runs unchanged on either.
    name:
        Unique broker name (e.g. ``"B1"``).
    routing:
        Name of the routing strategy (``"flooding"``, ``"simple"``,
        ``"identity"``, ``"covering"``, ``"merging"``).  The paper assumes
        simple routing throughout, which is the default here.
    matcher:
        Routing-table matching strategy: ``"indexed"`` (default; per-link
        attribute index, pre-selects candidate entries), ``"interval"``
        (same index with an incrementally-repaired range structure, built
        for churn-heavy workloads) or ``"brute"`` (evaluate every entry).
        All three produce identical forwarding decisions.
    advertising:
        Subscription-control implementation of the routing strategy:
        ``"incremental"`` (default; maintained forwarded-filter index) or
        ``"scan"`` (rebuild the forwarded-filter list per query).  Both
        produce identical forwarding decisions; the knob only matters for
        the identity/covering/merging strategies.
    duplicates_capacity:
        Maximum number of notification ids remembered for duplicate
        suppression when :attr:`deduplicate` is on; oldest ids are evicted
        first, which bounds broker memory on long-running deployments.
    metrics:
        The live :class:`~repro.obs.metrics.MetricsRegistry` this broker
        reports into (one is created when omitted).  Pass a registry
        constructed with ``enabled=False`` to run without any live
        instrumentation.
    """

    #: default bound on the duplicate-suppression memory
    DEFAULT_DUPLICATES_CAPACITY = 65536

    #: the knobs a *live* broker accepts through :meth:`reconfigure`
    RECONFIGURABLE = ("matcher", "advertising", "duplicates_capacity")

    def __init__(
        self,
        sim: "Simulator | object",
        name: str,
        routing: str = "simple",
        matcher: str = "indexed",
        advertising: str = "incremental",
        duplicates_capacity: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(sim, name)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.routing_table = RoutingTable(matcher=matcher, metrics=self.metrics)
        self._delivery_age = self.metrics.histogram("broker.delivery_age", DEFAULT_LATENCY_BOUNDS)
        self.routing_strategy_name = routing
        self.strategy: RoutingStrategy = make_strategy(
            routing, self, advertising=advertising, metrics=self.metrics
        )
        self._broker_peers: Set[str] = set()
        # metrics
        self.notifications_routed = 0
        self.notifications_forwarded = 0
        self.notifications_delivered_locally = 0
        self.subscriptions_handled = 0
        self.unsubscriptions_handled = 0
        self.duplicate_publishes_dropped = 0
        self.resyncs_sent = 0
        self.resyncs_received = 0
        self.resync_forwards_sent = 0
        if duplicates_capacity is not None and duplicates_capacity < 1:
            raise ValueError("duplicates_capacity must be >= 1 (use deduplicate=False to disable)")
        self.duplicates_capacity = (
            duplicates_capacity
            if duplicates_capacity is not None
            else self.DEFAULT_DUPLICATES_CAPACITY
        )
        self._seen_notification_ids: Dict[int, None] = {}
        self.deduplicate = False

    # ------------------------------------------------------------------ matcher
    @property
    def matcher(self) -> str:
        """The routing-table matching strategy ("brute", "indexed" or "interval")."""
        return self.routing_table.matcher

    def set_matcher(self, matcher: str) -> None:
        """Switch the routing-table matching strategy (rebuilds the index)."""
        self.routing_table.set_matcher(matcher)

    @property
    def advertising(self) -> str:
        """The subscription-control implementation ("scan" or "incremental")."""
        return self.strategy.advertising

    def set_advertising(self, advertising: str) -> None:
        """Switch the subscription-control implementation (rebuilds the index)."""
        self.strategy.set_advertising(advertising)

    def set_duplicates_capacity(self, capacity: int) -> None:
        """Retune the duplicate-suppression memory bound on a live broker."""
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ValueError(f"duplicates_capacity must be a positive integer, got {capacity!r}")
        self.duplicates_capacity = capacity
        seen = self._seen_notification_ids
        while len(seen) > capacity:
            del seen[next(iter(seen))]

    # ------------------------------------------------------------- control plane
    def reconfigure(self, changes: Mapping[str, object]) -> Dict[str, object]:
        """Apply runtime knob changes to this *live* broker, verified.

        Accepts a subset of :attr:`RECONFIGURABLE`.  A ``matcher`` or
        ``advertising`` flip rebuilds the respective index from the routing
        table and is verified in place: a probe notification set synthesized
        from the table's own filters must produce identical
        ``destinations()`` before and after, and the advertised filter
        multiset per link must be unchanged.  Returns the applied values.
        """
        unknown = sorted(set(changes) - set(self.RECONFIGURABLE))
        if unknown:
            raise ValueError(
                f"cannot reconfigure {', '.join(map(repr, unknown))} on a live broker; "
                f"allowed: {', '.join(self.RECONFIGURABLE)}"
            )
        applied: Dict[str, object] = {}
        if "matcher" in changes:
            self._verified_flip(lambda: self.set_matcher(changes["matcher"]))
            applied["matcher"] = self.matcher
        if "advertising" in changes:
            before = self.strategy.advertised_multisets()
            self._verified_flip(lambda: self.set_advertising(changes["advertising"]))
            if self.strategy.advertised_multisets() != before:
                raise RuntimeError(
                    f"{self.name}: advertised filter multisets changed across a live "
                    "advertising flip"
                )
            applied["advertising"] = self.advertising
        if "duplicates_capacity" in changes:
            self.set_duplicates_capacity(changes["duplicates_capacity"])
            applied["duplicates_capacity"] = self.duplicates_capacity
        return applied

    def _verified_flip(self, mutate) -> None:
        """Run ``mutate`` and assert routing decisions are unchanged."""
        probes = probe_notifications(self.routing_table)
        before = [self.routing_table.destinations(probe) for probe in probes]
        mutate()
        after = [self.routing_table.destinations(probe) for probe in probes]
        if before != after:
            raise RuntimeError(
                f"{self.name}: destinations() changed across a live reconfiguration"
            )

    # ------------------------------------------------------------------ wiring
    def register_broker_peer(self, peer_name: str) -> None:
        """Declare that the link towards ``peer_name`` leads to another broker."""
        self._broker_peers.add(peer_name)

    def unregister_broker_peer(self, peer_name: str) -> None:
        self._broker_peers.discard(peer_name)

    def broker_neighbors(self) -> List[str]:
        """Names of neighbouring brokers this broker currently has a link to."""
        return sorted(peer for peer in self._broker_peers if self.has_link(peer))

    def client_links(self) -> List[str]:
        """Names of attached client-side processes (local brokers, replicators)."""
        return sorted(name for name in self.links if name not in self._broker_peers)

    @property
    def is_border(self) -> bool:
        """A broker is a border broker iff it has at least one client link."""
        return bool(self.client_links())

    # --------------------------------------------------------------- messaging
    def on_message(self, message: Message) -> None:
        kind = message.kind
        if kind == "publish":
            self._handle_publish(message)
        elif kind == "subscribe":
            self._handle_subscribe(message)
        elif kind == "unsubscribe":
            self._handle_unsubscribe(message)
        elif kind == "detach":
            self._handle_detach(message)
        elif kind == "resync":
            self._handle_resync(message)
        else:
            # Unknown kinds (mobility control traffic addressed to co-located
            # replicators, etc.) are ignored by the plain broker.
            pass

    # ----------------------------------------------------------- subscriptions
    def _handle_subscribe(self, message: Message) -> None:
        subscription: Subscription = message.payload
        from_link = message.sender or ""
        self.subscriptions_handled += 1
        self.strategy.handle_subscribe(subscription, from_link)

    def _handle_unsubscribe(self, message: Message) -> None:
        payload = message.payload
        sub_id: str = payload["sub_id"]
        filter: Filter = payload.get("filter") or Filter(())
        from_link = message.sender or ""
        self.unsubscriptions_handled += 1
        self.strategy.handle_unsubscribe(sub_id, filter, from_link)

    def _handle_detach(self, message: Message) -> None:
        """A client link announces it is going away: drop all its routing entries."""
        link = message.sender or ""
        self._drop_link_entries(link)

    def _handle_resync(self, message: Message) -> None:
        """A broker peer lost its state: void everything it advertised to us.

        The peer sends the ``resync`` marker first and re-forwards its
        current routing state right behind it; link FIFO guarantees the
        stale entries are gone before the fresh advertisements land.
        """
        link = message.sender or ""
        self.resyncs_received += 1
        self._drop_link_entries(link)

    def _drop_link_entries(self, link: str) -> None:
        removed = self.routing_table.remove_link(link)
        # the bulk removal bypassed the strategy; let its incremental
        # forwarded-filter index re-derive contributions from the live table
        self.strategy.on_entries_removed(removed)
        for entry in removed:
            self.strategy.handle_unsubscribe(entry.sub_id, entry.filter, link)

    # ----------------------------------------------------------- fault recovery
    def resync_link(self, peer_name: str) -> int:
        """Re-synchronise a broker peer's view of our routing state.

        The recovery path after a crash or severed link: send the ``resync``
        marker (the peer drops every entry it holds for this link), then
        re-forward the current routing table exactly as a fresh boot would.
        Returns the number of re-forwarded subscriptions.
        """
        if not self.has_link(peer_name):
            return 0
        self.resyncs_sent += 1
        self.send(peer_name, Message(kind="resync"))
        forwards = self.strategy.resync_link(peer_name)
        self.resync_forwards_sent += forwards
        return forwards

    def handle_link_lost(self, peer_name: str) -> None:
        """The transport lost the link to ``peer_name`` (crash or TCP reset).

        The endpoint is detached so routing skips the peer.  A client
        link's routing entries go with it — a re-attaching client re-issues
        its subscriptions; a broker peer's entries stay, because the peer
        re-syncs them on reconnect and keeping them avoids advertisement
        churn during a transient outage (matching the sim backend, where a
        downed link leaves the routing tables untouched).
        """
        self.detach_link(peer_name)
        if peer_name not in self._broker_peers:
            self._drop_link_entries(peer_name)

    # ------------------------------------------------------------ notifications
    def _handle_publish(self, message: Message) -> None:
        notification: Notification = message.payload
        from_link = message.sender or ""
        if self.deduplicate:
            seen = self._seen_notification_ids
            if notification.notification_id in seen:
                self.duplicate_publishes_dropped += 1
                return
            seen[notification.notification_id] = None
            if len(seen) > self.duplicates_capacity:
                # bounded memory: forget the oldest id (FIFO eviction)
                del seen[next(iter(seen))]
        self.notifications_routed += 1
        destinations = self.strategy.route(notification, from_link)
        broker_peers = self._broker_peers
        links = self.links
        # One Message per kind is shared across every serialising destination
        # endpoint on this hop, so the frame caches encode it exactly once
        # per codec.  In-memory endpoints (shares_fanout False) still get a
        # fresh Message each: the object they carry *is* the delivery.
        shared_publish: Optional[Message] = None
        shared_notify: Optional[Message] = None
        age: Optional[float] = None
        for destination in destinations:
            endpoint = links.get(destination)
            if endpoint is None:
                continue
            if destination in broker_peers:
                self.notifications_forwarded += 1
                if endpoint.shares_fanout:
                    if shared_publish is None:
                        shared_publish = Message(kind="publish", payload=notification)
                    message = shared_publish
                else:
                    message = Message(kind="publish", payload=notification)
            else:
                self.notifications_delivered_locally += 1
                if notification.published_at is not None:
                    if age is None:
                        # transport-clock age at the delivering broker; clamped
                        # at zero because cluster children carry independent
                        # clock origins and skew can go slightly negative
                        age = max(0.0, self.sim.now - notification.published_at)
                    self._delivery_age.observe(age)
                if endpoint.shares_fanout:
                    if shared_notify is None:
                        shared_notify = Message(kind="notify", payload=notification)
                    message = shared_notify
                else:
                    message = Message(kind="notify", payload=notification)
            self.send(destination, message)

    # --------------------------------------------------- strategy callbacks
    def forward_subscribe(self, subscription: Subscription, link: str) -> None:
        """Send a ``subscribe`` control message to a neighbouring broker."""
        if not self.has_link(link):
            return
        self.send(link, Message(kind="subscribe", payload=subscription))

    def forward_unsubscribe(self, sub_id: str, filter: Filter, link: str) -> None:
        """Send an ``unsubscribe`` control message to a neighbouring broker."""
        if not self.has_link(link):
            return
        self.send(link, Message(kind="unsubscribe", payload={"sub_id": sub_id, "filter": filter}))

    # -------------------------------------------------------------------- admin
    def active_subscription_ids(self) -> Set[str]:
        return self.routing_table.subscription_ids()

    def routing_table_size(self) -> int:
        return len(self.routing_table)

    def stats(self) -> Dict[str, int]:
        """A snapshot of the broker's counters, used by the experiment harness."""
        return {
            "routed": self.notifications_routed,
            "delivered_locally": self.notifications_delivered_locally,
            "subscriptions": self.subscriptions_handled,
            "unsubscriptions": self.unsubscriptions_handled,
            "resyncs": self.resyncs_received,
            "resync_forwards": self.resync_forwards_sent,
            "table_size": self.routing_table_size(),
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """The live control-plane view of this broker, as a plain dict.

        Merges the registry-owned instruments (covering-index hits, any
        transport-side counters sharing the registry) with the hot-path
        integer counters and a few point-in-time gauges.  Counter values for
        a deterministic workload are identical across transport backends —
        they count routing decisions, not wire activity.
        """
        snapshot = self.metrics.snapshot()
        counters = dict(snapshot["counters"])
        counters.update(
            {
                "broker.matches": self.notifications_routed,
                "broker.forwards": self.notifications_forwarded,
                "broker.delivered_locally": self.notifications_delivered_locally,
                "broker.duplicates_dropped": self.duplicate_publishes_dropped,
                "broker.subscriptions": self.subscriptions_handled,
                "broker.unsubscriptions": self.unsubscriptions_handled,
                "broker.resyncs_received": self.resyncs_received,
                "broker.resync_forwards_sent": self.resync_forwards_sent,
            }
        )
        return {
            "counters": counters,
            "histograms": snapshot["histograms"],
            "gauges": {
                "broker.routing_table_size": self.routing_table_size(),
                "broker.duplicates_remembered": len(self._seen_notification_ids),
                "broker.forwarded_subscriptions": self.strategy.forwarded_count(),
            },
        }


class InnerBroker(Broker):
    """A broker intended to carry only broker-to-broker links (Fig. 2)."""


class BorderBroker(Broker):
    """A broker intended to also carry client links (Fig. 2).

    Functionally identical to :class:`Broker`; the distinct class makes
    topology descriptions and assertions in tests more readable.
    """
