"""Routing tables.

"Each broker maintains a routing table that determines in which directions a
notification is forwarded.  Each table entry is a pair (F, L) containing a
filter and the link from which it was received, denoting that a matching
notification is to be forwarded along L." (Sect. 2)

The table additionally records which subscription id produced each entry, so
that unsubscriptions, relocations and shadow garbage collection can remove
exactly the right entries.

Three matching strategies are available (the ``matcher`` knob):

* ``"brute"`` — every entry of every link is evaluated against the
  notification; the always-correct baseline the paper's testbed uses.
* ``"indexed"`` (default) — a per-link attribute index in the style of the
  counting/pre-filtering algorithms the paper references via [16].  Each
  entry with a hashable equality constraint is bucketed under its
  ``(attribute, value)`` pair; entries whose best constraint is a ``Range``
  are bucketed in a per-attribute segment index (sorted boundaries +
  bisect, rebuilt lazily after mutations).  At match time only the
  buckets/segments selected by the notification's own attribute/value pairs
  (plus the unindexable entries) are evaluated, and each link
  short-circuits on its first matching entry.  Results are identical to
  brute force — the index is purely a candidate pre-selection.
* ``"interval"`` — the churn-proof variant of ``"indexed"``: range entries
  go into an incrementally maintained
  :class:`~repro.pubsub.matching.IntervalBucketIndex` (bucketed boundary
  cuts with local split repair) instead of the lazily rebuilt segment
  index, so interleaved subscribe/unsubscribe and publish traffic never
  pays an O(n log n) rebuild on the first query after a mutation.

The equality index is maintained incrementally by :meth:`RoutingTable.add`,
:meth:`RoutingTable.remove`, :meth:`RoutingTable.remove_link` and
:meth:`RoutingTable.clear`, so subscription churn never forces a rebuild.

On top of any non-brute matcher sits an epoch-guarded destination cache:
``destinations()`` results are memoized by the notification's attribute
signature (plus the exclude set) and every table mutation bumps the epoch,
so repeated publishes of hot notification shapes skip candidate evaluation
entirely while staleness is impossible by construction.  Cache hits are
reported through the optional metrics registry as ``match.cache_hit``
(interval-index split repairs as ``index.repair``).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .filters import Equals, Filter, InSet, NotEquals, Prefix, Range
from .matching import make_range_index, pick_index_key, pick_range_constraint
from .subscription import Subscription

MATCHER_NAMES = ("brute", "indexed", "interval")


@dataclass(frozen=True)
class RouteEntry:
    """One (filter, link) pair, annotated with the subscription that created it."""

    filter: Filter
    link: str
    sub_id: str

    def matches(self, notification: Mapping) -> bool:
        return self.filter.matches(notification)


#: Links with at most this many entries are scanned directly even in indexed
#: mode: probing the index costs about as much as one compiled filter
#: evaluation, so tiny links (e.g. one subscription per client link) are
#: faster brute. Correctness is unaffected — both paths are exact.
SMALL_LINK_SCAN = 4


class _LinkIndex:
    """The attribute index for the entries of a single link.

    ``by_attr`` buckets entries two levels deep — attribute, then equality
    value — following the ``(attribute, value)`` pair chosen by
    :func:`~repro.pubsub.matching.pick_index_key`.  Two flat dict probes per
    notification attribute beat a combined-tuple key: attribute strings cache
    their hashes, and no tuple is allocated per probe.  Entries without a
    usable equality constraint but with a ``Range`` constraint go into a
    per-attribute range index — the lazily rebuilt
    :class:`~repro.pubsub.matching.RangeSegmentIndex` for the ``"indexed"``
    matcher, the incrementally maintained
    :class:`~repro.pubsub.matching.IntervalBucketIndex` for ``"interval"``
    — and are pre-selected by the notification's numeric value;
    ``unindexed`` holds only the remainder, which must always be evaluated.
    """

    __slots__ = ("by_attr", "by_range", "unindexed", "_make_range_index")

    def __init__(self, make_range_index_fn) -> None:
        self.by_attr: Dict[str, Dict[object, Dict[str, RouteEntry]]] = {}
        self.by_range: Dict[str, object] = {}
        self.unindexed: Dict[str, RouteEntry] = {}
        self._make_range_index = make_range_index_fn

    def add(self, entry: RouteEntry) -> None:
        key = pick_index_key(entry.filter)
        if key is None:
            range_constraint = pick_range_constraint(entry.filter)
            if range_constraint is not None:
                attribute = range_constraint.attribute
                index = self.by_range.get(attribute)
                if index is None:
                    index = self.by_range[attribute] = self._make_range_index()
                index.add(entry.sub_id, range_constraint, entry)
                return
            self.unindexed[entry.sub_id] = entry
            return
        attribute, value = key
        buckets = self.by_attr.get(attribute)
        if buckets is None:
            buckets = self.by_attr[attribute] = {}
        bucket = buckets.get(value)
        if bucket is None:
            bucket = buckets[value] = {}
        bucket[entry.sub_id] = entry

    def discard(self, entry: RouteEntry) -> None:
        key = pick_index_key(entry.filter)
        if key is None:
            range_constraint = pick_range_constraint(entry.filter)
            if range_constraint is not None:
                index = self.by_range.get(range_constraint.attribute)
                if index is not None:
                    index.discard(entry.sub_id)
                    if not len(index):
                        del self.by_range[range_constraint.attribute]
                return
            self.unindexed.pop(entry.sub_id, None)
            return
        attribute, value = key
        buckets = self.by_attr.get(attribute)
        if buckets is None:
            return
        bucket = buckets.get(value)
        if bucket is not None:
            bucket.pop(entry.sub_id, None)
            if not bucket:
                del buckets[value]
                if not buckets:
                    del self.by_attr[attribute]

    def empty(self) -> bool:
        return not self.by_attr and not self.by_range and not self.unindexed

    def candidates(self, items) -> Iterator[RouteEntry]:
        """Yield the entries that could match a notification with ``items``.

        ``items`` is the notification's attribute/value pairs, precomputed
        once by the caller and shared across every link probed.  Unindexable
        entries come first, then the equality buckets and range segments
        selected by the notification's own pairs.  No entry is yielded twice:
        each lives in exactly one bucket, one range segment index or in
        ``unindexed``, and a notification carries each attribute once.  This
        is the single definition of candidate pre-selection; every query path
        goes through it.
        """
        yield from self.unindexed.values()
        by_attr = self.by_attr
        if by_attr:
            for attribute, value in items:
                buckets = by_attr.get(attribute)
                if buckets is None:
                    continue
                try:
                    bucket = buckets.get(value)
                except TypeError:  # unhashable notification value
                    continue
                if bucket:
                    yield from bucket.values()
        by_range = self.by_range
        if by_range:
            for attribute, value in items:
                index = by_range.get(attribute)
                if index is not None:
                    yield from index.candidates(value)


class RoutingTable:
    """The per-broker routing state.

    Entries are grouped by link for efficient forwarding decisions ("which
    links need this notification?") and indexed by subscription id for
    efficient removal.  With a non-brute ``matcher`` each link additionally
    maintains an attribute index so forwarding decisions only evaluate
    candidate entries, and ``destinations()`` results are memoized in an
    epoch-guarded cache invalidated by every mutation.  ``metrics`` is an
    optional :class:`~repro.obs.metrics.MetricsRegistry` receiving the
    ``match.cache_hit`` and ``index.repair`` counters.
    """

    #: bound on the memoized notification signatures (FIFO eviction)
    CACHE_CAPACITY = 4096

    def __init__(self, matcher: str = "indexed", metrics=None) -> None:
        if matcher not in MATCHER_NAMES:
            raise ValueError(f"unknown matcher {matcher!r}; available: {MATCHER_NAMES}")
        self._matcher = matcher
        self._indexed = matcher != "brute"
        self._by_link: Dict[str, Dict[str, RouteEntry]] = defaultdict(dict)
        self._by_sub: Dict[str, List[RouteEntry]] = defaultdict(list)
        self._index: Dict[str, _LinkIndex] = {}
        self.cache_hits = 0
        self._epoch = 0
        self._cache_epoch = 0
        self._destination_cache: Dict[Tuple, List[str]] = {}
        self._cache_hit_counter = metrics.counter("match.cache_hit") if metrics else None
        self._repair_counter = metrics.counter("index.repair") if metrics else None

    # ----------------------------------------------------------------- matcher
    @property
    def matcher(self) -> str:
        return self._matcher

    def set_matcher(self, matcher: str) -> None:
        """Switch matching strategy, rebuilding the index from current entries.

        The destination cache is invalidated along with the index: the flip
        bumps the mutation epoch exactly like an entry change, so a matcher
        arriving through the live control plane can never serve a result
        computed by its predecessor.
        """
        if matcher not in MATCHER_NAMES:
            raise ValueError(f"unknown matcher {matcher!r}; available: {MATCHER_NAMES}")
        if matcher == self._matcher:
            return
        self._matcher = matcher
        self._indexed = matcher != "brute"
        self._epoch += 1
        self._index = {}
        if self._indexed:
            for link, entries in self._by_link.items():
                for entry in entries.values():
                    self._index_add(entry)

    def _new_link_index(self) -> _LinkIndex:
        if self._matcher == "interval":
            repair_counter = self._repair_counter
            return _LinkIndex(lambda: make_range_index("interval", repair_counter))
        return _LinkIndex(lambda: make_range_index("segment"))

    def _index_add(self, entry: RouteEntry) -> None:
        index = self._index.get(entry.link)
        if index is None:
            index = self._index[entry.link] = self._new_link_index()
        index.add(entry)

    def _index_discard(self, entry: RouteEntry) -> None:
        index = self._index.get(entry.link)
        if index is None:
            return
        index.discard(entry)
        if index.empty():
            del self._index[entry.link]

    # ------------------------------------------------------------------ admin
    def add(self, filter: Filter, link: str, sub_id: str) -> RouteEntry:
        """Insert an entry; replaces an existing entry for the same (sub_id, link)."""
        entry = RouteEntry(filter=filter, link=link, sub_id=sub_id)
        self._epoch += 1
        previous = self._by_link[link].get(sub_id)
        if previous is not None:
            self._by_sub[sub_id] = [e for e in self._by_sub[sub_id] if e.link != link]
            if self._indexed:
                self._index_discard(previous)
        self._by_link[link][sub_id] = entry
        self._by_sub[sub_id].append(entry)
        if self._indexed:
            self._index_add(entry)
        return entry

    def add_subscription(self, subscription: Subscription, link: str) -> RouteEntry:
        return self.add(subscription.filter, link, subscription.sub_id)

    def remove(self, sub_id: str, link: Optional[str] = None) -> List[RouteEntry]:
        """Remove entries for ``sub_id`` (on all links, or only on ``link``)."""
        removed: List[RouteEntry] = []
        entries = self._by_sub.get(sub_id, [])
        keep: List[RouteEntry] = []
        for entry in entries:
            if link is None or entry.link == link:
                self._epoch += 1
                self._by_link[entry.link].pop(sub_id, None)
                if not self._by_link[entry.link]:
                    del self._by_link[entry.link]
                if self._indexed:
                    self._index_discard(entry)
                removed.append(entry)
            else:
                keep.append(entry)
        if keep:
            self._by_sub[sub_id] = keep
        else:
            self._by_sub.pop(sub_id, None)
        return removed

    def remove_link(self, link: str) -> List[RouteEntry]:
        """Remove every entry pointing at ``link`` (e.g. a disconnected client)."""
        entries = list(self._by_link.pop(link, {}).values())
        self._epoch += 1
        self._index.pop(link, None)
        for entry in entries:
            remaining = [e for e in self._by_sub.get(entry.sub_id, []) if e.link != link]
            if remaining:
                self._by_sub[entry.sub_id] = remaining
            else:
                self._by_sub.pop(entry.sub_id, None)
        return entries

    def clear(self) -> None:
        self._epoch += 1
        self._by_link.clear()
        self._by_sub.clear()
        self._index.clear()

    # ---------------------------------------------------------------- queries
    def _link_candidates(self, notification: Mapping, excluded):
        """Yield ``(link, candidate entries)`` per non-excluded link (indexed mode).

        Small links (<= :data:`SMALL_LINK_SCAN` entries) yield their entries
        directly — probing the index would cost more than evaluating them;
        larger links go through :meth:`_LinkIndex.candidates`.
        """
        items = None
        index_by_link = self._index
        for link, entries in self._by_link.items():
            if link in excluded:
                continue
            if len(entries) <= SMALL_LINK_SCAN:
                yield link, entries.values()
            else:
                if items is None:
                    items = list(notification.items())
                yield link, index_by_link[link].candidates(items)

    def destinations(self, notification: Mapping, exclude: Iterable[str] = ()) -> List[str]:
        """Links (deduplicated, sorted) on which ``notification`` must be forwarded."""
        excluded = set(exclude)
        if self._indexed:
            cache = self._destination_cache
            if self._cache_epoch != self._epoch:
                cache.clear()
                self._cache_epoch = self._epoch
            key: Optional[Tuple[Any, ...]] = None
            try:
                key = (tuple(sorted(notification.items())), tuple(sorted(excluded)))
                cached = cache.get(key)
            except TypeError:  # unhashable attribute value — skip the cache
                key = None
                cached = None
            if cached is not None:
                self.cache_hits += 1
                if self._cache_hit_counter is not None:
                    self._cache_hit_counter.inc()
                return list(cached)
            result = []
            for link, candidates in self._link_candidates(notification, excluded):
                for entry in candidates:
                    if entry.filter.matches(notification):
                        result.append(link)
                        break
            result.sort()
            if key is not None:
                if len(cache) >= self.CACHE_CAPACITY:
                    del cache[next(iter(cache))]
                cache[key] = result
            return list(result)
        matched: Set[str] = set()
        for link, entries in self._by_link.items():
            if link in excluded:
                continue
            if any(entry.matches(notification) for entry in entries.values()):
                matched.add(link)
        return sorted(matched)

    def matching_entries(
        self, notification: Mapping, exclude: Iterable[str] = ()
    ) -> List[RouteEntry]:
        excluded = set(exclude)
        matched: List[RouteEntry] = []
        if self._indexed:
            for link, candidates in self._link_candidates(notification, excluded):
                matched.extend(e for e in candidates if e.filter.matches(notification))
            return matched
        for link, entries in self._by_link.items():
            if link in excluded:
                continue
            matched.extend(entry for entry in entries.values() if entry.matches(notification))
        return matched

    def entries_for_link(self, link: str) -> List[RouteEntry]:
        return list(self._by_link.get(link, {}).values())

    def entries_for_sub(self, sub_id: str) -> List[RouteEntry]:
        return list(self._by_sub.get(sub_id, []))

    def filters_for_link(self, link: str) -> List[Filter]:
        return [entry.filter for entry in self._by_link.get(link, {}).values()]

    def links(self) -> List[str]:
        return sorted(self._by_link.keys())

    def subscription_ids(self) -> Set[str]:
        return set(self._by_sub.keys())

    def has_subscription(self, sub_id: str, link: Optional[str] = None) -> bool:
        entries = self._by_sub.get(sub_id, [])
        if link is None:
            return bool(entries)
        return any(entry.link == link for entry in entries)

    def covered_by_other_link(self, filter: Filter, excluding_link: str) -> bool:
        """True if some entry on a link other than ``excluding_link`` covers ``filter``.

        Used by covering-based routing to decide whether forwarding a new
        subscription towards a neighbour is necessary.
        """
        for link, entries in self._by_link.items():
            if link == excluding_link:
                continue
            if any(entry.filter.covers(filter) for entry in entries.values()):
                return True
        return False

    def __len__(self) -> int:
        """Total number of entries (the routing-table size metric of E12)."""
        return sum(len(entries) for entries in self._by_link.values())

    def size_by_link(self) -> Dict[str, int]:
        return {link: len(entries) for link, entries in self._by_link.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for link in sorted(self._by_link):
            parts.append(f"{link}:{len(self._by_link[link])}")
        return f"RoutingTable({', '.join(parts)})"


# ----------------------------------------------------------------- probe synthesis


def _constraint_witness(constraint) -> Any:
    """A value the constraint accepts (best effort; ``None`` means unknown)."""
    if isinstance(constraint, Equals):
        return constraint.value
    if isinstance(constraint, InSet):
        if not constraint.values:
            return None
        return min(constraint.values, key=repr)
    if isinstance(constraint, Range):
        low, high = constraint.low, constraint.high
        if math.isfinite(low) and constraint.include_low:
            return low
        if math.isfinite(high) and constraint.include_high:
            return high
        if math.isfinite(low) and math.isfinite(high):
            return (low + high) / 2
        if math.isfinite(low):
            return low + 1
        if math.isfinite(high):
            return high - 1
        return 0
    if isinstance(constraint, Prefix):
        return constraint.prefix + "a"
    if isinstance(constraint, NotEquals):
        return 0 if constraint.value != 0 else 1
    # Exists or an unknown constraint type: any carried value might do
    return 1


def probe_notifications(table: RoutingTable, limit: int = 256) -> List[Dict[str, Any]]:
    """Synthesize notifications that exercise the table's filters.

    For every distinct filter in the routing table a witness notification is
    derived from the filter's own constraints (equality values, range
    endpoints, set members), so each filter contributes at least one probe
    that matches it — plus two generic probes that match nothing but the
    empty filter.  Used by the live-reconfiguration path to assert that
    ``destinations()`` is invariant across a matcher flip: running the probe
    set through both the old and the new matcher must yield identical
    forwarding decisions.
    """
    probes: List[Dict[str, Any]] = [{}, {"__probe__": 0}]
    seen: Set = set()
    for link in table.links():
        for entry in table.entries_for_link(link):
            key = entry.filter.key()
            if key in seen:
                continue
            seen.add(key)
            probe: Dict[str, Any] = {}
            for constraint in entry.filter.constraints:
                witness = _constraint_witness(constraint)
                if witness is not None and constraint.attribute not in probe:
                    probe[constraint.attribute] = witness
            if entry.filter.matches(probe):
                probes.append(probe)
            if len(probes) >= limit:
                return probes
    return probes
