"""Routing tables.

"Each broker maintains a routing table that determines in which directions a
notification is forwarded.  Each table entry is a pair (F, L) containing a
filter and the link from which it was received, denoting that a matching
notification is to be forwarded along L." (Sect. 2)

The table additionally records which subscription id produced each entry, so
that unsubscriptions, relocations and shadow garbage collection can remove
exactly the right entries.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from .filters import Filter
from .subscription import Subscription


@dataclass(frozen=True)
class RouteEntry:
    """One (filter, link) pair, annotated with the subscription that created it."""

    filter: Filter
    link: str
    sub_id: str

    def matches(self, notification: Mapping) -> bool:
        return self.filter.matches(notification)


class RoutingTable:
    """The per-broker routing state.

    Entries are grouped by link for efficient forwarding decisions ("which
    links need this notification?") and indexed by subscription id for
    efficient removal.
    """

    def __init__(self) -> None:
        self._by_link: Dict[str, Dict[str, RouteEntry]] = defaultdict(dict)
        self._by_sub: Dict[str, List[RouteEntry]] = defaultdict(list)

    # ------------------------------------------------------------------ admin
    def add(self, filter: Filter, link: str, sub_id: str) -> RouteEntry:
        """Insert an entry; replaces an existing entry for the same (sub_id, link)."""
        entry = RouteEntry(filter=filter, link=link, sub_id=sub_id)
        previous = self._by_link[link].get(sub_id)
        if previous is not None:
            self._by_sub[sub_id] = [e for e in self._by_sub[sub_id] if e.link != link]
        self._by_link[link][sub_id] = entry
        self._by_sub[sub_id].append(entry)
        return entry

    def add_subscription(self, subscription: Subscription, link: str) -> RouteEntry:
        return self.add(subscription.filter, link, subscription.sub_id)

    def remove(self, sub_id: str, link: Optional[str] = None) -> List[RouteEntry]:
        """Remove entries for ``sub_id`` (on all links, or only on ``link``)."""
        removed: List[RouteEntry] = []
        entries = self._by_sub.get(sub_id, [])
        keep: List[RouteEntry] = []
        for entry in entries:
            if link is None or entry.link == link:
                self._by_link[entry.link].pop(sub_id, None)
                if not self._by_link[entry.link]:
                    del self._by_link[entry.link]
                removed.append(entry)
            else:
                keep.append(entry)
        if keep:
            self._by_sub[sub_id] = keep
        else:
            self._by_sub.pop(sub_id, None)
        return removed

    def remove_link(self, link: str) -> List[RouteEntry]:
        """Remove every entry pointing at ``link`` (e.g. a disconnected client)."""
        entries = list(self._by_link.pop(link, {}).values())
        for entry in entries:
            remaining = [e for e in self._by_sub.get(entry.sub_id, []) if e.link != link]
            if remaining:
                self._by_sub[entry.sub_id] = remaining
            else:
                self._by_sub.pop(entry.sub_id, None)
        return entries

    def clear(self) -> None:
        self._by_link.clear()
        self._by_sub.clear()

    # ---------------------------------------------------------------- queries
    def destinations(self, notification: Mapping, exclude: Iterable[str] = ()) -> List[str]:
        """Links (deduplicated, sorted) on which ``notification`` must be forwarded."""
        excluded = set(exclude)
        result: Set[str] = set()
        for link, entries in self._by_link.items():
            if link in excluded:
                continue
            if any(entry.matches(notification) for entry in entries.values()):
                result.add(link)
        return sorted(result)

    def matching_entries(self, notification: Mapping, exclude: Iterable[str] = ()) -> List[RouteEntry]:
        excluded = set(exclude)
        matched: List[RouteEntry] = []
        for link, entries in self._by_link.items():
            if link in excluded:
                continue
            matched.extend(entry for entry in entries.values() if entry.matches(notification))
        return matched

    def entries_for_link(self, link: str) -> List[RouteEntry]:
        return list(self._by_link.get(link, {}).values())

    def entries_for_sub(self, sub_id: str) -> List[RouteEntry]:
        return list(self._by_sub.get(sub_id, []))

    def filters_for_link(self, link: str) -> List[Filter]:
        return [entry.filter for entry in self._by_link.get(link, {}).values()]

    def links(self) -> List[str]:
        return sorted(self._by_link.keys())

    def subscription_ids(self) -> Set[str]:
        return set(self._by_sub.keys())

    def has_subscription(self, sub_id: str, link: Optional[str] = None) -> bool:
        entries = self._by_sub.get(sub_id, [])
        if link is None:
            return bool(entries)
        return any(entry.link == link for entry in entries)

    def covered_by_other_link(self, filter: Filter, excluding_link: str) -> bool:
        """True if some entry on a link other than ``excluding_link`` covers ``filter``.

        Used by covering-based routing to decide whether forwarding a new
        subscription towards a neighbour is necessary.
        """
        for link, entries in self._by_link.items():
            if link == excluding_link:
                continue
            if any(entry.filter.covers(filter) for entry in entries.values()):
                return True
        return False

    def __len__(self) -> int:
        """Total number of entries (the routing-table size metric of E12)."""
        return sum(len(entries) for entries in self._by_link.values())

    def size_by_link(self) -> Dict[str, int]:
        return {link: len(entries) for link, entries in self._by_link.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for link in sorted(self._by_link):
            parts.append(f"{link}:{len(self._by_link[link])}")
        return f"RoutingTable({', '.join(parts)})"
