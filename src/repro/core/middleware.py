"""The mobility-enabled middleware facade.

:class:`MobilePubSub` assembles the whole system of Fig. 4: an acyclic broker
network, one replicator per border broker (linked to its broker and to the
other replicators), a shared movement predictor implementing the ``nlb``
function, and mobile clients connected through wireless channels.  It is the
top-level public API the examples and experiments use; everything it does can
also be done by wiring the lower-level pieces manually.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..net.simulator import Simulator
from ..pubsub.broker_network import BrokerNetwork
from ..pubsub.client import Client
from .location import LocationSpace
from .mobile_client import MobileClient
from .movement_graph import MovementGraph, from_broker_network, from_location_space
from .replicator import (
    REPLICATION_CONTROL_KINDS,
    Replicator,
    ReplicatorConfig,
)
from .uncertainty import (
    FloodingPredictor,
    MarkovPredictor,
    MovementPredictor,
    NeighbourhoodPredictor,
    NoPredictionPredictor,
)


@dataclass
class MobilitySystemConfig:
    """Tunable parameters of a :class:`MobilePubSub` deployment."""

    #: routing strategy used by all brokers ("simple" is the paper's assumption)
    routing: str = "simple"
    #: routing-table matching strategy: "indexed" (per-link attribute index,
    #: the fast path) or "brute" (evaluate every entry); results are identical.
    #: ``None`` (default) keeps whatever the brokers were built with, so an
    #: explicitly chosen matcher on the network is never silently overridden.
    matcher: Optional[str] = None
    #: subscription-control implementation: "incremental" (maintained
    #: forwarded-filter index, the fast path) or "scan" (rebuild per query);
    #: forwarding decisions are identical.  ``None`` (default) keeps whatever
    #: the brokers were built with.
    advertising: Optional[str] = None
    #: transport backend the deployment expects: "sim" (deterministic
    #: simulator), "asyncio" (real localhost sockets) or "cluster" (one OS
    #: process per broker).  ``None`` (default) accepts whatever the broker
    #: network was built with.  The mobility layer runs on any backend with
    #: dynamic (wireless) link support — the simulator and asyncio both
    #: qualify; "cluster" freezes its broker topology at boot and is
    #: rejected loudly (run plain pub/sub workloads there via
    #: :class:`~repro.pubsub.broker_network.BrokerNetwork` directly).
    transport: Optional[str] = None
    #: feature switches of the replicator layer
    replicator: ReplicatorConfig = field(default_factory=ReplicatorConfig)
    #: shadow-placement policy: "nlb", "nlb-<k>", "flooding", "none", "markov", or a predictor object
    predictor: str | MovementPredictor = "nlb"
    #: latency of broker-to-broker and client-to-broker links
    broker_link_latency: float = 0.001
    #: latency of replicator-to-broker and replicator-to-replicator links
    replicator_link_latency: float = 0.0005
    #: one-way latency of the wireless hop
    wireless_latency: float = 0.002
    #: time for a device to associate with an access point
    connect_latency: float = 0.05
    #: the fabric-level :class:`~repro.config.SystemConfig` this deployment
    #: rides on.  When given, it fills in any ``matcher``/``advertising``/
    #: ``transport`` field left ``None`` above; a field set on *both* objects
    #: must agree, so one deployment can never carry two contradicting
    #: sources of truth.
    system: Optional[object] = None

    def __post_init__(self) -> None:
        if self.system is None:
            return
        from ..config import SystemConfig  # lazy: config imports the pubsub layer

        if not isinstance(self.system, SystemConfig):
            raise TypeError(f"system must be a SystemConfig, got {type(self.system).__name__}")
        for knob in ("matcher", "advertising", "transport"):
            mine = getattr(self, knob)
            fabric = getattr(self.system, knob)
            if mine is None:
                setattr(self, knob, fabric)
            elif mine != fabric:
                raise ValueError(
                    f"MobilitySystemConfig.{knob}={mine!r} contradicts "
                    f"system.{knob}={fabric!r}; set the knob in one place"
                )


class MobilePubSub:
    """A complete mobile publish/subscribe deployment.

    Runs on any transport backend with dynamic link support: the
    deterministic simulator (the default, and the substrate the experiments
    use) or real asyncio sockets (``transport="asyncio"`` networks), where
    every wireless attach opens actual TCP connections and the whole
    replicated-handover protocol crosses the wire as encoded frames.

    Parameters
    ----------
    sim:
        The clock everything runs on — the discrete-event simulator on the
        default backend, the transport's clock otherwise.  Pass ``None`` to
        use the network's own clock (``network.sim``).
    network:
        The (already built, validated) acyclic broker network.
    space:
        The location space mapping logical locations to border brokers.
    movement_graph:
        The movement restriction; when omitted it is derived from the
        location space's adjacency (falling back to the broker network's own
        edges when the space has no adjacency information).
    config:
        System parameters; see :class:`MobilitySystemConfig`.
    """

    def __init__(
        self,
        sim: Optional[Simulator],
        network: BrokerNetwork,
        space: LocationSpace,
        movement_graph: Optional[MovementGraph] = None,
        config: Optional[MobilitySystemConfig] = None,
    ):
        self.sim = sim if sim is not None else network.sim
        self.network = network
        self.space = space
        self.config = config or MobilitySystemConfig()
        self._check_transport()
        self.movement_graph = movement_graph or self._default_movement_graph()
        self.predictor = self._build_predictor(self.config.predictor)
        self.replicators: Dict[str, Replicator] = {}
        self.mobile_clients: Dict[str, MobileClient] = {}
        # the network is built by the caller; only override its brokers'
        # matching strategy when the config explicitly asks for one
        if self.config.matcher is not None:
            for broker in self.network.brokers.values():
                broker.set_matcher(self.config.matcher)
        if self.config.advertising is not None:
            for broker in self.network.brokers.values():
                broker.set_advertising(self.config.advertising)
        self._build_replicators()

    # ------------------------------------------------------------------ build
    def _check_transport(self) -> None:
        """Validate the transport knob against the network's actual backend.

        The knob exists so deployments state their expectation explicitly
        and fail loudly on a mismatch.  Beyond the name check, the backend
        must support *dynamic links* (``Transport.supports_mobility``):
        wireless channels open and tear down links while the substrate runs,
        which the simulator and asyncio backends provide but the
        frozen-topology cluster backend does not.
        """
        backend = getattr(self.network, "transport", None)
        actual = backend.name if backend is not None else "sim"
        expected = self.config.transport
        if expected is not None and expected != actual:
            raise ValueError(
                f"config.transport={expected!r} but the broker network runs on {actual!r}"
            )
        if backend is not None and not getattr(backend, "supports_mobility", False):
            raise NotImplementedError(
                "the mobility layer (replicators, wireless channels) needs dynamic "
                f"link support, which the {actual!r} backend does not provide; run "
                f"plain pub/sub workloads on {actual!r} through BrokerNetwork directly"
            )

    def _default_movement_graph(self) -> MovementGraph:
        graph = from_location_space(self.space)
        if len(graph.edges()) == 0:
            graph = from_broker_network(self.network)
        # make sure every broker of the network is present, even uncovered ones
        for broker in self.network.broker_names():
            graph.add_broker(broker)
        return graph

    def _build_predictor(self, spec: str | MovementPredictor) -> MovementPredictor:
        if isinstance(spec, MovementPredictor):
            return spec
        if spec == "nlb":
            return NeighbourhoodPredictor(self.movement_graph, hops=1)
        if spec.startswith("nlb-"):
            hops = int(spec.split("-", 1)[1])
            return NeighbourhoodPredictor(self.movement_graph, hops=hops)
        if spec == "flooding":
            return FloodingPredictor(self.network.broker_names())
        if spec == "none":
            return NoPredictionPredictor()
        if spec == "markov":
            return MarkovPredictor(self.movement_graph)
        raise ValueError(f"unknown predictor spec {spec!r}")

    def _build_replicators(self) -> None:
        registry: Dict[str, str] = {}
        for broker_name in self.network.broker_names():
            replicator = Replicator(
                self.sim,
                name=f"R@{broker_name}",
                broker_name=broker_name,
                space=self.space,
                predictor=self.predictor,
                config=self.config.replicator,
            )
            self.replicators[broker_name] = replicator
            self.network.add_process(replicator)
            self.network.connect_processes(
                replicator.name, broker_name, latency=self.config.replicator_link_latency
            )
            registry[broker_name] = replicator.name
        replicator_names = sorted(registry.values())
        for i, name_a in enumerate(replicator_names):
            for name_b in replicator_names[i + 1 :]:
                self.network.connect_processes(
                    name_a, name_b, latency=self.config.replicator_link_latency
                )
        for replicator in self.replicators.values():
            replicator.set_replicator_registry(registry)

    # ---------------------------------------------------------------- clients
    def add_mobile_client(self, name: str, reissue_on_attach: bool = True) -> MobileClient:
        """Create a mobile (wireless, roaming) client."""
        client = MobileClient(
            self.sim,
            name,
            reissue_on_attach=reissue_on_attach,
            wireless_latency=self.config.wireless_latency,
            connect_latency=self.config.connect_latency,
            transport=getattr(self.network, "transport", None),
        )
        self.mobile_clients[name] = client
        self.network.add_process(client)
        return client

    def add_static_client(self, name: str, broker_name: str) -> Client:
        """Create an ordinary wired client attached directly to a border broker."""
        return self.network.add_client(name, broker_name, latency=self.config.broker_link_latency)

    def add_publisher(self, name: str, location: str) -> Client:
        """Create a wired publisher attached to the broker covering ``location``."""
        return self.add_static_client(name, self.space.broker_of(location))

    # ------------------------------------------------------------- attachment
    def replicator_for_broker(self, broker_name: str) -> Replicator:
        return self.replicators[broker_name]

    def replicator_for_location(self, location: str) -> Replicator:
        return self.replicators[self.space.broker_of(location)]

    def attach(
        self,
        client: MobileClient,
        location: Optional[str] = None,
        broker: Optional[str] = None,
        immediate: bool = False,
    ) -> str:
        """Attach a mobile client at a location (or directly at a broker).  Returns the broker name."""
        if location is not None:
            client.set_location(location)
            broker = self.space.broker_of(location)
        if broker is None:
            raise ValueError("attach needs either a location or a broker")
        replicator = self.replicators[broker]
        client.attach(replicator, broker, immediate=immediate)
        return broker

    def detach(self, client: MobileClient) -> Optional[str]:
        """Detach a mobile client from its current access point (connection-aware)."""
        broker = client.current_broker
        client.detach(announce=False)
        if broker is not None and broker in self.replicators:
            self.replicators[broker].device_disconnected(client.name)
        return broker

    def move(
        self,
        client: MobileClient,
        new_location: str,
        gap: float = 0.0,
        immediate: bool = False,
    ) -> str:
        """Move a client to ``new_location``.

        Movement within the current broker's coverage is pure logical
        mobility (a ``location_update``); crossing a broker boundary performs
        the full handover: detach, optional out-of-coverage ``gap``, attach
        at the new broker, which triggers the replicator's handover handling.
        Returns the broker covering the new location.
        """
        new_broker = self.space.broker_of(new_location)
        if client.connected and client.current_broker == new_broker:
            client.set_location(new_location)
            return new_broker
        self.detach(client)
        client.set_location(new_location)
        replicator = self.replicators[new_broker]
        if gap > 0:
            self.sim.schedule(gap, client.attach, replicator, new_broker, immediate)
        else:
            client.attach(replicator, new_broker, immediate=immediate)
        return new_broker

    def power_off(self, client: MobileClient) -> None:
        """Power-saving disconnect: the client disappears without telling anyone where to."""
        self.detach(client)

    def power_on(self, client: MobileClient, location: str, immediate: bool = False) -> str:
        """Reconnect after a power-off, possibly far away from the last known broker."""
        return self.attach(client, location=location, immediate=immediate)

    def remove_client(self, client: MobileClient) -> None:
        """Application shutdown: garbage collect the client's virtual clients everywhere."""
        client.shutdown_application()

    # ------------------------------------------------------------------ stats
    def control_message_count(self, kinds: Sequence[str] = REPLICATION_CONTROL_KINDS) -> int:
        """Messages of the extended-logical-mobility control protocol sent so far."""
        return sum(self.network.total_messages(kind) for kind in kinds)

    def subscription_message_count(self) -> int:
        return self.network.total_messages("subscribe") + self.network.total_messages("unsubscribe")

    def total_shadow_count(self) -> int:
        """Number of buffering (shadow) virtual clients currently alive in the system."""
        return sum(len(r.shadow_brokers_hosting()) for r in self.replicators.values())

    def total_virtual_clients(self) -> int:
        return sum(len(r.virtual_clients) for r in self.replicators.values())

    def total_buffer_memory(self) -> int:
        return sum(r.total_buffer_memory() for r in self.replicators.values())

    def total_shadow_deliveries(self) -> int:
        """Notifications that ended up in shadow buffers (the bandwidth cost of pre-subscriptions)."""
        return sum(r.stats.notifications_buffered for r in self.replicators.values())

    def shadow_map(self) -> Dict[str, List[str]]:
        """Mapping broker -> client ids with a virtual client hosted there."""
        return {
            broker: replicator.hosted_client_ids()
            for broker, replicator in self.replicators.items()
            if replicator.virtual_clients
        }

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def run_until_idle(self) -> float:
        return self.sim.run_until_idle()

    def close(self) -> None:
        """Release the substrate's resources (sockets on real backends).  Idempotent."""
        self.network.close()
