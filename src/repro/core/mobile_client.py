"""Mobile clients: the device-side half of mobile REBECA.

A mobile device "runs some sort of application that should participate in the
event system, i.e., produce and consume notifications" (Sect. 2).  The device
talks to its *virtual counterpart* at the current border broker over a
wireless link; the :class:`MobileClient` below is that device-side stub: it
keeps the application's subscription set (location-dependent templates and
ordinary filters), announces it to the replicator whenever a connection is
established (``client_hello``), and records every delivered notification with
enough metadata (reception time, replayed-or-live, current location) for the
experiments to compute loss, duplication and latency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..net.process import Message, Process
from ..net.simulator import Simulator
from ..net.wireless import WirelessChannel
from ..pubsub.filters import Filter
from ..pubsub.notification import Notification
from .location_filter import LocationDependentFilter
from .replicator import (
    CLIENT_BYE,
    CLIENT_HELLO,
    CLIENT_LEAVING,
    CLIENT_SUBSCRIBE,
    CLIENT_UNSUBSCRIBE,
    LOCATION_UPDATE,
    WELCOME,
    ClientHello,
)

_template_counter = itertools.count(1)
_plain_counter = itertools.count(1)


@dataclass
class MobileDelivery:
    """A notification as received by the mobile device."""

    notification: Notification
    received_at: float
    replayed: bool
    location: Optional[str]
    broker: Optional[str]

    @property
    def latency(self) -> Optional[float]:
        if self.notification.published_at is None:
            return None
        return self.received_at - self.notification.published_at


@dataclass
class AttachmentRecord:
    """One attachment episode, used for setup-latency metrics."""

    broker: str
    requested_at: float
    welcomed_at: Optional[float] = None
    had_shadow: Optional[bool] = None

    @property
    def setup_latency(self) -> Optional[float]:
        if self.welcomed_at is None:
            return None
        return self.welcomed_at - self.requested_at


class MobileClient(Process):
    """A roaming application running on a mobile device.

    Parameters
    ----------
    sim:
        The simulator.
    name:
        Client identity (also used as the virtual clients' ``client_id``).
    reissue_on_attach:
        If ``False``, the client never announces its subscriptions when it
        reconnects — the "no mobility support" baseline of experiment E2.
    wireless_latency / connect_latency:
        Parameters of the wireless access link (see
        :class:`~repro.net.wireless.WirelessChannel`).
    transport:
        The substrate carrying the wireless hop.  ``None`` (legacy default)
        builds simulator links directly from ``sim``; a mobility-capable
        :class:`~repro.net.transport.Transport` carries each attachment on
        that backend (real TCP connections on asyncio).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        reissue_on_attach: bool = True,
        wireless_latency: float = 0.002,
        connect_latency: float = 0.05,
        transport=None,
    ):
        super().__init__(sim, name)
        self.reissue_on_attach = reissue_on_attach
        self.channel = WirelessChannel(
            sim, self, latency=wireless_latency, connect_latency=connect_latency,
            transport=transport,
        )
        self.channel.on_connect(self._on_channel_connect)
        self.templates: Dict[str, LocationDependentFilter] = {}
        self.plain_filters: Dict[str, Filter] = {}
        self.location: Optional[str] = None
        self.current_broker: Optional[str] = None
        self.previous_broker: Optional[str] = None
        self.deliveries: List[MobileDelivery] = []
        self.published: List[Notification] = []
        self.publish_failures = 0
        self.attachments: List[AttachmentRecord] = []
        self.location_trace: List[tuple] = []  # (time, location)
        self.broker_trace: List[tuple] = []  # (time, broker)

    # --------------------------------------------------------------- API: subs
    def subscribe_location(
        self, template: LocationDependentFilter, template_id: Optional[str] = None
    ) -> str:
        """Issue a location-dependent subscription (a ``myloc`` template)."""
        template_id = template_id or f"loc-{next(_template_counter)}"
        self.templates[template_id] = template
        if self.connected:
            self._send_up(
                Message(
                    kind=CLIENT_SUBSCRIBE,
                    payload={"client_id": self.name, "template_id": template_id, "template": template},
                )
            )
        return template_id

    def unsubscribe_location(self, template_id: str) -> None:
        self.templates.pop(template_id, None)
        if self.connected:
            self._send_up(
                Message(
                    kind=CLIENT_UNSUBSCRIBE,
                    payload={"client_id": self.name, "template_id": template_id},
                )
            )

    def subscribe(self, filter: Filter, sub_id: Optional[str] = None) -> str:
        """Issue an ordinary (location-independent) subscription."""
        sub_id = sub_id or f"plain-{next(_plain_counter)}"
        self.plain_filters[sub_id] = filter
        if self.connected:
            self._send_up(
                Message(
                    kind=CLIENT_SUBSCRIBE,
                    payload={"client_id": self.name, "sub_id": sub_id, "filter": filter, "template": None},
                )
            )
        return sub_id

    def unsubscribe(self, sub_id: str) -> None:
        self.plain_filters.pop(sub_id, None)
        if self.connected:
            self._send_up(
                Message(
                    kind=CLIENT_UNSUBSCRIBE,
                    payload={"client_id": self.name, "sub_id": sub_id, "template_id": None},
                )
            )

    # ------------------------------------------------------------ API: publish
    def publish(self, notification: Notification | Mapping[str, Any]) -> Optional[Notification]:
        """Publish a notification through the current access point, if any."""
        if not isinstance(notification, Notification):
            notification = Notification(notification)
        stamped = notification.stamped(published_at=self.sim.now, publisher=self.name)
        if not self.connected:
            self.publish_failures += 1
            return None
        self.published.append(stamped)
        self._send_up(Message(kind="publish", payload=stamped))
        return stamped

    # ----------------------------------------------------------- API: location
    def set_location(self, location: str) -> None:
        """Report a new (logical) location, e.g. after moving to another room."""
        self.location = location
        self.location_trace.append((self.sim.now, location))
        if self.connected:
            self._send_up(
                Message(kind=LOCATION_UPDATE, payload={"client_id": self.name, "location": location})
            )

    # --------------------------------------------------------- API: attachment
    def attach(self, replicator: Process, broker_name: str, immediate: bool = False) -> None:
        """Associate with the replicator serving ``broker_name`` (wireless attach)."""
        self.attachments.append(AttachmentRecord(broker=broker_name, requested_at=self.sim.now))
        self.current_broker = broker_name
        self.broker_trace.append((self.sim.now, broker_name))
        self.channel.attach(replicator, immediate=immediate)

    def detach(self, announce: bool = True) -> None:
        """Leave the current access point (range loss, roaming, power saving)."""
        if self.current_broker is not None:
            self.previous_broker = self.current_broker
        if announce and self.connected:
            self._send_up(Message(kind=CLIENT_LEAVING, payload={"client_id": self.name}))
        self.channel.detach()
        self.current_broker = None

    def shutdown_application(self) -> None:
        """Turn the application off: the system garbage collects all virtual clients (Sect. 3.2.4)."""
        if self.connected:
            self._send_up(Message(kind=CLIENT_BYE, payload={"client_id": self.name}))
        self.channel.detach()
        self.current_broker = None

    @property
    def connected(self) -> bool:
        return self.channel.connected

    # ------------------------------------------------------------ wire plumbing
    def _on_channel_connect(self, access_point_name: str) -> None:
        """The wireless association completed: announce ourselves to the replicator.

        A client with ``reissue_on_attach=False`` (the "no mobility support"
        baseline) still announces its subscriptions on its *first* attachment
        — it simply never re-announces them after moving, which is exactly
        what a mobility-unaware application does.
        """
        announce = self.reissue_on_attach or self.previous_broker is None
        hello = ClientHello(
            client_id=self.name,
            location=self.location,
            templates=dict(self.templates) if announce else {},
            plain_filters=dict(self.plain_filters) if announce else {},
            previous_broker=self.previous_broker,
            reissue=announce,
        )
        self._send_up(Message(kind=CLIENT_HELLO, payload=hello))

    def _send_up(self, message: Message) -> bool:
        return self.channel.send_up(message)

    def on_message(self, message: Message) -> None:
        if message.kind == "notify":
            self.deliveries.append(
                MobileDelivery(
                    notification=message.payload,
                    received_at=self.sim.now,
                    replayed=bool(message.meta.get("replayed", False)),
                    location=self.location,
                    broker=self.current_broker,
                )
            )
            self.on_notify(message.payload, replayed=bool(message.meta.get("replayed", False)))
        elif message.kind == WELCOME:
            if self.attachments and self.attachments[-1].welcomed_at is None:
                self.attachments[-1].welcomed_at = self.sim.now
                self.attachments[-1].had_shadow = bool(message.payload.get("had_shadow", False))

    def on_notify(self, notification: Notification, replayed: bool) -> None:
        """Application hook invoked for every delivery.  Override freely."""

    # ------------------------------------------------------------------- stats
    def received_ids(self) -> List[int]:
        return [delivery.notification.notification_id for delivery in self.deliveries]

    def live_deliveries(self) -> List[MobileDelivery]:
        return [d for d in self.deliveries if not d.replayed]

    def replayed_deliveries(self) -> List[MobileDelivery]:
        return [d for d in self.deliveries if d.replayed]

    def duplicate_deliveries(self) -> int:
        seen: Dict[int, int] = {}
        duplicates = 0
        for delivery in self.deliveries:
            nid = delivery.notification.notification_id
            seen[nid] = seen.get(nid, 0) + 1
            if seen[nid] > 1:
                duplicates += 1
        return duplicates

    def setup_latencies(self) -> List[float]:
        return [a.setup_latency for a in self.attachments if a.setup_latency is not None]
