"""Physical mobility: the relocation protocol for roaming clients.

Physical mobility is "concerned with location transparency (i.e., roaming
clients)" (abstract): a client that disconnects at one border broker and
reconnects at another must keep receiving the notifications matching its
subscriptions without the application noticing the move.  The paper relies on
the relocation algorithm of Zeidler & Fiege [8]: "a complex reconfiguration
algorithm combined with a certain amount of buffering ensures that a
relocated client receives a transparent, uninterrupted flow of notifications
matching his subscriptions" (Sect. 1).

This module implements the replicator-side half of that algorithm as a
:class:`RelocationManager`:

* while the device is disconnected, its virtual client at the *old* border
  broker keeps the location-independent subscriptions installed and buffers
  matching notifications;
* when the device reconnects elsewhere, the new replicator sends a
  *handover request* to the old one; the old side answers with the buffered
  notifications (split into location-independent traffic, which physical
  mobility must not lose, and location-dependent traffic, which only the
  exception mode of Sect. 4 may salvage) and withdraws the now-misplaced
  location-independent subscriptions.

The same request/reply exchange doubles as the paper's *exception mode*: if
the client pops up at a broker where no shadow exists, the new replicator can
still "retrieve buffered notifications from some other virtual client of the
application" (Sect. 4) through exactly this protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..pubsub.filters import Filter
from ..pubsub.notification import Notification
from .virtual_client import VirtualClient

#: Message kinds used by the relocation / handover protocol between replicators.
HANDOVER_REQUEST = "handover_request"
HANDOVER_REPLY = "handover_reply"


@dataclass
class HandoverRequest:
    """Sent by the new replicator to the replicator of the client's previous broker."""

    client_id: str
    new_broker: str
    new_replicator: str


@dataclass
class HandoverReply:
    """The old replicator's answer: subscriptions to relocate and buffered traffic."""

    client_id: str
    old_broker: str
    #: location-independent filters that were installed at the old broker
    plain_filters: Dict[str, Filter] = field(default_factory=dict)
    #: buffered notifications matching the location-independent filters
    buffered_plain: List[Notification] = field(default_factory=list)
    #: buffered location-dependent notifications (old location's traffic)
    buffered_location: List[Notification] = field(default_factory=list)
    #: True if the old side actually had a virtual client for this client
    found: bool = True


@dataclass
class RelocationStats:
    """Counters kept per replicator for the physical-mobility experiments (E2)."""

    requests_sent: int = 0
    requests_served: int = 0
    notifications_relocated: int = 0
    notifications_dropped_stale: int = 0
    exception_recoveries: int = 0


class RelocationManager:
    """Implements both sides of the handover/relocation exchange on virtual clients.

    The manager is deliberately transport-agnostic: it builds and interprets
    the payload dataclasses above, while the hosting replicator is responsible
    for actually sending them over replicator-to-replicator links.
    """

    def __init__(self, broker_name: str, replicator_name: str):
        self.broker_name = broker_name
        self.replicator_name = replicator_name
        self.stats = RelocationStats()

    # ------------------------------------------------------------- new side
    def build_request(self, client_id: str) -> HandoverRequest:
        """Build the handover request the new replicator sends to the old one."""
        self.stats.requests_sent += 1
        return HandoverRequest(
            client_id=client_id,
            new_broker=self.broker_name,
            new_replicator=self.replicator_name,
        )

    def apply_reply(
        self,
        virtual_client: VirtualClient,
        reply: HandoverReply,
        deliver_location_history: bool,
    ) -> List[Notification]:
        """Apply a handover reply at the new (now active) virtual client.

        Installs the relocated location-independent subscriptions and returns
        the notifications that must be replayed to the device: always the
        buffered location-independent traffic, plus — when the exception mode
        is enabled — the location-dependent history the old virtual client
        buffered while the device was out of reach.  That history matched the
        client's own (old-location) subscriptions, so it is delivered as-is:
        the "degraded service" of Sect. 4 is stale-but-subscribed information,
        not information filtered by the new location.
        """
        if not reply.found:
            return []
        replay: List[Notification] = []
        for sub_id, filter in reply.plain_filters.items():
            if sub_id not in virtual_client.plain_filters:
                virtual_client.add_plain_filter(sub_id, filter)
        replay.extend(reply.buffered_plain)
        self.stats.notifications_relocated += len(reply.buffered_plain)
        if deliver_location_history:
            replay.extend(reply.buffered_location)
            self.stats.exception_recoveries += len(reply.buffered_location)
        else:
            self.stats.notifications_dropped_stale += len(reply.buffered_location)
        return replay

    # ------------------------------------------------------------- old side
    def serve_request(
        self,
        virtual_client: Optional[VirtualClient],
        request: HandoverRequest,
        now: float,
    ) -> HandoverReply:
        """Serve a handover request at the old broker's replicator.

        Splits the virtual client's buffer into location-independent traffic
        (relocated without loss) and location-dependent traffic (only useful
        to the exception mode), withdraws the location-independent
        subscriptions from the old broker and returns the reply payload.
        The virtual client itself is *not* destroyed here — whether it stays
        as a shadow is decided by the shadow-set reconfiguration of the
        extended-logical-mobility algorithm (Sect. 3.2.3).
        """
        self.stats.requests_served += 1
        if virtual_client is None:
            return HandoverReply(
                client_id=request.client_id, old_broker=self.broker_name, found=False
            )
        plain_filters = dict(virtual_client.plain_filters)
        buffered = virtual_client.buffer.drain(now)
        buffered_plain: List[Notification] = []
        buffered_location: List[Notification] = []
        for notification in buffered:
            if any(filter.matches(notification) for filter in plain_filters.values()):
                buffered_plain.append(notification)
            else:
                buffered_location.append(notification)
        virtual_client.withdraw_plain_filters()
        virtual_client.plain_filters.clear()
        return HandoverReply(
            client_id=request.client_id,
            old_broker=self.broker_name,
            plain_filters=plain_filters,
            buffered_plain=buffered_plain,
            buffered_location=buffered_location,
            found=True,
        )
