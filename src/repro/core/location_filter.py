"""Location-dependent filters: the ``myloc`` marker.

"Location-dependent subscriptions postulate a specific marker *myloc* to be
used in a subscription.  The marker stands for a specific set of locations
that depends on the current location of the client." (Sect. 1)

A :class:`LocationDependentFilter` is a *template*: a content-based filter in
which the constraint on the location attribute is the unbound ``MYLOC``
marker.  Binding the template against a concrete location set (obtained from
a :class:`~repro.core.location.LocationSpace`) yields an ordinary
:class:`~repro.pubsub.filters.Filter` that can be installed in routing
tables.  The logical-mobility machinery re-binds templates whenever the
client's location changes; the replicator binds them against a *broker's*
location set when casting shadows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..pubsub.filters import Constraint, Equals, Filter, InSet
from .location import LOCATION_ATTRIBUTE


class _MyLocMarker:
    """Singleton marker object standing for "the client's current location set"."""

    _instance: Optional["_MyLocMarker"] = None

    def __new__(cls) -> "_MyLocMarker":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MYLOC"


#: The marker used in location-dependent filter templates.
MYLOC = _MyLocMarker()


class UnboundLocationError(ValueError):
    """Raised when a template containing ``MYLOC`` is evaluated without binding."""


@dataclass(frozen=True)
class LocationDependentFilter:
    """A filter template containing the ``myloc`` marker.

    Attributes
    ----------
    static_filter:
        The location-independent part of the subscription, e.g.
        ``service == "temperature"``.
    location_attribute:
        The attribute the location constraint applies to (default
        ``"location"``).
    scope:
        Optional override of the location space's default ``myloc`` scope
        (``"location"``, ``"region"``, ``"neighbourhood"``, ``"broker"``).
    """

    static_filter: Filter
    location_attribute: str = LOCATION_ATTRIBUTE
    scope: Optional[str] = None

    # ---------------------------------------------------------------- binding
    def bind(self, locations: Iterable[str]) -> Filter:
        """Substitute ``myloc`` with a concrete location set, yielding a routable filter."""
        location_set = frozenset(locations)
        if not location_set:
            raise UnboundLocationError("cannot bind myloc to an empty location set")
        constraint = InSet(self.location_attribute, location_set)
        return Filter(tuple(self.static_filter.constraints) + (constraint,))

    def bind_for_location(self, space: "LocationSpaceLike", location: str) -> Filter:
        """Bind against the myloc set of a concrete client location."""
        return self.bind(space.myloc(location, scope=self.scope))

    def bind_for_broker(self, space: "LocationSpaceLike", broker_name: str) -> Filter:
        """Bind against the location set covered by a broker (shadow binding)."""
        return self.bind(space.myloc_for_broker(broker_name))

    # ------------------------------------------------------------------ misc
    def matches_ignoring_location(self, notification: Mapping[str, Any]) -> bool:
        """Evaluate only the static part (used to classify notifications in metrics)."""
        return self.static_filter.matches(notification)

    def key(self) -> Tuple:
        return ("myloc-template", self.static_filter.key(), self.location_attribute, self.scope)

    def __repr__(self) -> str:
        return (
            f"LocationDependentFilter({self.static_filter!r} AND "
            f"{self.location_attribute} in MYLOC, scope={self.scope or 'default'})"
        )


class LocationSpaceLike:
    """Structural interface for what templates need from a location space."""

    def myloc(self, location: str, scope: Optional[str] = None) -> FrozenSet[str]:  # pragma: no cover
        raise NotImplementedError

    def myloc_for_broker(self, broker_name: str) -> FrozenSet[str]:  # pragma: no cover
        raise NotImplementedError


def location_dependent(
    static_spec: Mapping[str, Any] | Filter,
    location_attribute: str = LOCATION_ATTRIBUTE,
    scope: Optional[str] = None,
) -> LocationDependentFilter:
    """Build a location-dependent filter template.

    ``static_spec`` is either an already-built :class:`Filter` or a simple
    ``{attribute: value}`` mapping; a value equal to :data:`MYLOC` is also
    accepted and simply ignored for the static part, so the paper's example
    can be written naturally::

        location_dependent({"service": "temperature", "location": MYLOC})
    """
    if isinstance(static_spec, Filter):
        return LocationDependentFilter(static_spec, location_attribute, scope)
    constraints: List[Constraint] = []
    for attribute, value in static_spec.items():
        if value is MYLOC or attribute == location_attribute and isinstance(value, _MyLocMarker):
            continue
        if isinstance(value, (set, frozenset, list)):
            constraints.append(InSet(attribute, value))
        else:
            constraints.append(Equals(attribute, value))
    return LocationDependentFilter(Filter(constraints), location_attribute, scope)


def is_location_relevant(
    notification: Mapping[str, Any],
    template: LocationDependentFilter,
    locations: Iterable[str],
) -> bool:
    """Would this notification match the template bound to ``locations``?

    Used by the metrics module to decide, after the fact, which published
    notifications were *relevant* to a client at a given location — the
    ground truth against which missed notifications are counted.
    """
    return template.bind(locations).matches(notification)
