"""Movement graphs and the ``nlb`` ("next local broker") function.

"We have to assume that the mobile client obeys some movement restriction.
We formalize this restriction as a movement graph with brokers as vertices.
In this graph, an edge exists between broker b1 and b2 if and only if the
client may connect to b2 after disconnecting from b1. ...  Within the
algorithm, the movement graph is formalized as a function nlb : B -> 2^B."
(Sect. 3.2)

The movement graph is the paper's formalisation of *uncertainty in client
movement*: the wider the neighbourhoods, the more places the client might pop
up, and the more shadow virtual clients the replicator has to maintain.  The
builders below construct movement graphs from the structures the paper
mentions (broker-network adjacency, GSM cell neighbourhoods, office floors)
and the analysis helpers quantify the flooding degeneration discussed in
Sect. 4.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple


class MovementGraph:
    """An undirected graph over border brokers restricting client movement.

    The central operation is :meth:`nlb`, the paper's neighbourhood function:
    ``nlb(b)`` is the set of brokers reachable from ``b`` over exactly one
    edge, *excluding* ``b`` itself.
    """

    def __init__(self, brokers: Iterable[str], edges: Iterable[Tuple[str, str]] = ()):
        self._adjacency: Dict[str, Set[str]] = {broker: set() for broker in brokers}
        for a, b in edges:
            self.add_edge(a, b)

    # ------------------------------------------------------------------ build
    def add_broker(self, broker: str) -> None:
        self._adjacency.setdefault(broker, set())

    def add_edge(self, a: str, b: str) -> None:
        """Declare that a client may move between brokers ``a`` and ``b``."""
        if a == b:
            return
        self._adjacency.setdefault(a, set()).add(b)
        self._adjacency.setdefault(b, set()).add(a)

    def remove_edge(self, a: str, b: str) -> None:
        self._adjacency.get(a, set()).discard(b)
        self._adjacency.get(b, set()).discard(a)

    # -------------------------------------------------------------------- nlb
    def nlb(self, broker: str) -> FrozenSet[str]:
        """The "next local broker" set: brokers one movement edge away from ``broker``."""
        if broker not in self._adjacency:
            raise KeyError(f"unknown broker {broker!r} in movement graph")
        return frozenset(self._adjacency[broker])

    def nlb_k(self, broker: str, k: int) -> FrozenSet[str]:
        """Brokers reachable within at most ``k`` movement edges, excluding ``broker``.

        ``k = 1`` is the paper's ``nlb``; larger ``k`` widens the shadow set
        (more robustness against fast movement or long disconnections, more
        overhead); ``k >= diameter`` degenerates to flooding.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        if broker not in self._adjacency:
            raise KeyError(f"unknown broker {broker!r} in movement graph")
        reached: Set[str] = {broker}
        frontier: Set[str] = {broker}
        for _ in range(k):
            frontier = {
                neighbour
                for node in frontier
                for neighbour in self._adjacency[node]
                if neighbour not in reached
            }
            if not frontier:
                break
            reached |= frontier
        reached.discard(broker)
        return frozenset(reached)

    def __call__(self, broker: str) -> FrozenSet[str]:
        return self.nlb(broker)

    # ------------------------------------------------------------------ views
    @property
    def brokers(self) -> List[str]:
        return sorted(self._adjacency.keys())

    def edges(self) -> List[Tuple[str, str]]:
        seen: Set[Tuple[str, str]] = set()
        for a, neighbours in self._adjacency.items():
            for b in neighbours:
                edge = tuple(sorted((a, b)))
                seen.add(edge)  # type: ignore[arg-type]
        return sorted(seen)

    def degree(self, broker: str) -> int:
        return len(self._adjacency[broker])

    def __contains__(self, broker: str) -> bool:
        return broker in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def has_edge(self, a: str, b: str) -> bool:
        return b in self._adjacency.get(a, set())

    # --------------------------------------------------------------- analysis
    def average_degree(self) -> float:
        if not self._adjacency:
            return 0.0
        return sum(len(n) for n in self._adjacency.values()) / len(self._adjacency)

    def max_degree(self) -> int:
        if not self._adjacency:
            return 0
        return max(len(n) for n in self._adjacency.values())

    def is_flooding(self) -> bool:
        """True if every broker's neighbourhood is every other broker.

        This is the degenerate case of Sect. 4: "a virtual client is running
        (almost) everywhere in the system ... the scheme would degenerate to
        flooding, a very unpleasant situation."
        """
        n = len(self._adjacency)
        if n <= 1:
            return False
        return all(len(neigh) == n - 1 for neigh in self._adjacency.values())

    def flooding_ratio(self) -> float:
        """Average fraction of all other brokers contained in a neighbourhood (0..1)."""
        n = len(self._adjacency)
        if n <= 1:
            return 0.0
        return self.average_degree() / (n - 1)

    def shortest_path_length(self, a: str, b: str) -> Optional[int]:
        """Hop distance in the movement graph, or ``None`` if unreachable."""
        if a == b:
            return 0
        visited = {a}
        queue: deque[Tuple[str, int]] = deque([(a, 0)])
        while queue:
            node, dist = queue.popleft()
            for neighbour in self._adjacency[node]:
                if neighbour == b:
                    return dist + 1
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append((neighbour, dist + 1))
        return None

    def respects(self, trace: Sequence[str]) -> bool:
        """Does a broker-level movement trace only use edges of this graph?"""
        for previous, current in zip(trace, trace[1:]):
            if previous == current:
                continue
            if not self.has_edge(previous, current):
                return False
        return True

    def coverage_of_trace(self, trace: Sequence[str]) -> float:
        """Fraction of trace transitions whose target is in ``nlb`` of the source.

        This is the probability that the replicator's shadow set covers the
        client's next attachment — the quantity experiment E6 sweeps.
        """
        transitions = [
            (previous, current)
            for previous, current in zip(trace, trace[1:])
            if previous != current
        ]
        if not transitions:
            return 1.0
        covered = sum(1 for previous, current in transitions if current in self.nlb(previous))
        return covered / len(transitions)


# ------------------------------------------------------------------- builders


def from_broker_network(network: "BrokerNetworkLike") -> MovementGraph:
    """Movement graph = the broker network's own adjacency.

    "In general, the movement graph in logical mobility is a refinement of
    the graph of possible border brokers" (Sect. 1); when nothing better is
    known, the broker tree itself is the natural movement restriction.
    """
    graph = MovementGraph(network.broker_names())
    for a, b in network.broker_edges():
        graph.add_edge(a, b)
    return graph


def from_edges(edges: Iterable[Tuple[str, str]], brokers: Iterable[str] = ()) -> MovementGraph:
    """Movement graph from an explicit edge list."""
    graph = MovementGraph(brokers)
    for a, b in edges:
        graph.add_edge(a, b)
    return graph


def from_location_space(space: "LocationSpaceWithAdjacency") -> MovementGraph:
    """Movement graph induced by a location space.

    Two brokers are movement-adjacent iff some location of one is adjacent to
    some location of the other (or they share a location boundary).  This is
    how GSM-style cell neighbourhood relations define the movement graph
    (Sect. 3.2: "the neighborhood relationship between [base stations]
    defines the movement graph for the system").
    """
    brokers = set()
    for location in space.locations:
        brokers.add(space.broker_of(location))
    graph = MovementGraph(brokers)
    for location in space.locations:
        broker = space.broker_of(location)
        for neighbour in space.neighbours_of(location):
            other = space.broker_of(neighbour)
            if other != broker:
                graph.add_edge(broker, other)
    return graph


def complete_graph(brokers: Iterable[str]) -> MovementGraph:
    """The flooding movement graph: every broker is every broker's neighbour."""
    brokers = list(brokers)
    graph = MovementGraph(brokers)
    for i, a in enumerate(brokers):
        for b in brokers[i + 1 :]:
            graph.add_edge(a, b)
    return graph


def grid_graph(rows: int, cols: int, name_of: Optional[Mapping[Tuple[int, int], str]] = None,
               diagonal: bool = False) -> MovementGraph:
    """A rows x cols grid of brokers (one base station per cell), 4- or 8-neighbourhood."""
    def default_name(r: int, c: int) -> str:
        return f"B_{r}_{c}"

    def name(r: int, c: int) -> str:
        if name_of is not None:
            return name_of[(r, c)]
        return default_name(r, c)

    graph = MovementGraph(name(r, c) for r in range(rows) for c in range(cols))
    deltas = [(1, 0), (0, 1)]
    if diagonal:
        deltas += [(1, 1), (1, -1)]
    for r in range(rows):
        for c in range(cols):
            for dr, dc in deltas:
                nr, nc = r + dr, c + dc
                if 0 <= nr < rows and 0 <= nc < cols:
                    graph.add_edge(name(r, c), name(nr, nc))
    return graph


def line_graph(brokers: Sequence[str]) -> MovementGraph:
    """A chain movement graph (the highway / route scenario)."""
    graph = MovementGraph(brokers)
    for a, b in zip(brokers, brokers[1:]):
        graph.add_edge(a, b)
    return graph


class BrokerNetworkLike:
    """Structural interface required by :func:`from_broker_network`."""

    def broker_names(self) -> List[str]:  # pragma: no cover - interface
        raise NotImplementedError

    def broker_edges(self) -> List[Tuple[str, str]]:  # pragma: no cover - interface
        raise NotImplementedError


class LocationSpaceWithAdjacency:
    """Structural interface required by :func:`from_location_space`."""

    locations: List[str]

    def broker_of(self, location: str) -> str:  # pragma: no cover - interface
        raise NotImplementedError

    def neighbours_of(self, location: str) -> Set[str]:  # pragma: no cover - interface
        raise NotImplementedError
