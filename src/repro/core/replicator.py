"""The replicator layer: extended logical mobility through pre-subscriptions.

This is the paper's core contribution (Sect. 3).  A replicator process is
associated with every border broker; it "offers the same interface as the
actual broker" to virtual clients, passes ``publish``/``subscribe``/
``unsubscribe`` downwards and ``notify`` upwards, and "can interact
autonomously with the replicator processes at neighboring event brokers
through direct TCP connections" (Sect. 3.2, Fig. 4).

Responsibilities implemented here, following the paper's structure:

* **Client setup** (Sect. 3.2.1) — when a device connects, its virtual client
  is created/activated and shadow virtual clients with the same
  location-dependent subscriptions are created at every broker in
  ``nlb(b)``.
* **Client operation** (Sect. 3.2.2) — publish/notify pass through; every
  (un)subscribe of a location-dependent filter is mirrored to the shadows.
* **Client handover** (Sect. 3.2.3) — on reconnection at ``b2`` coming from
  ``b1``, the buffered notifications of the local shadow are replayed, the
  location-independent subscriptions are relocated from ``b1`` (physical
  mobility), and the shadow set is reconfigured from ``oldset = nlb(b1)`` to
  ``newset = nlb(b2)``.
* **Client removal** (Sect. 3.2.4) — the virtual client and all its shadows
  are garbage collected.
* **Exception mode** (Sect. 4) — if the client pops up at a broker with no
  shadow, a virtual client is created on the fly and buffered notifications
  are retrieved from the previous replicator, accepting degraded service.

All of these behaviours are individually switchable through
:class:`ReplicatorConfig`, which is how the experiments obtain their
baselines (reactive re-subscription = ``pre_subscription=False``, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Set

from ..net.process import Message, Process
from ..net.simulator import Simulator
from ..pubsub.filters import Filter
from ..pubsub.notification import Notification
from ..pubsub.subscription import Subscription
from .buffering import BufferPolicy, SharedNotificationStore
from .location import LocationSpace
from .location_filter import LocationDependentFilter
from .physical_mobility import (
    HANDOVER_REPLY,
    HANDOVER_REQUEST,
    HandoverReply,
    HandoverRequest,
    RelocationManager,
)
from .uncertainty import MovementPredictor, NoPredictionPredictor
from .virtual_client import VirtualClient

# Message kinds of the replicator-to-replicator protocol.
SHADOW_CREATE = "shadow_create"
SHADOW_DELETE = "shadow_delete"
SHADOW_SUB = "shadow_sub"
SHADOW_UNSUB = "shadow_unsub"

# Message kinds of the device-to-replicator protocol.
CLIENT_HELLO = "client_hello"
CLIENT_BYE = "client_bye"
CLIENT_LEAVING = "client_leaving"
CLIENT_SUBSCRIBE = "client_subscribe"
CLIENT_UNSUBSCRIBE = "client_unsubscribe"
LOCATION_UPDATE = "location_update"
WELCOME = "welcome"

#: All control-message kinds attributable to the extended-logical-mobility layer,
#: used by the overhead metrics of experiments E5/E6.
REPLICATION_CONTROL_KINDS = (
    SHADOW_CREATE,
    SHADOW_DELETE,
    SHADOW_SUB,
    SHADOW_UNSUB,
    HANDOVER_REQUEST,
    HANDOVER_REPLY,
)


@dataclass
class ClientHello:
    """The profile a device announces when it (re)connects to a replicator."""

    client_id: str
    location: Optional[str] = None
    templates: Dict[str, LocationDependentFilter] = field(default_factory=dict)
    plain_filters: Dict[str, Filter] = field(default_factory=dict)
    previous_broker: Optional[str] = None
    reissue: bool = True


@dataclass
class ReplicatorConfig:
    """Feature switches of the mobility support offered by a replicator.

    The defaults correspond to the full system proposed by the paper; the
    experiment baselines switch individual features off.
    """

    #: cast shadow virtual clients at predicted next brokers (extended logical mobility)
    pre_subscription: bool = True
    #: relocate location-independent subscriptions and their buffered traffic (physical mobility)
    physical_relocation: bool = True
    #: salvage old location-dependent history when no shadow existed (Sect. 4 exception mode)
    exception_mode: bool = True
    #: factory for the buffer policy of each virtual client (None = unbounded)
    buffer_policy_factory: Optional[Callable[[], BufferPolicy]] = None
    #: share one notification store among co-located virtual clients (digest buffers)
    use_shared_store: bool = False
    #: replay only buffered notifications that match the newly bound filters
    filter_replay: bool = True


@dataclass
class ReplicatorStats:
    """Per-replicator counters used by the experiments."""

    shadows_created: int = 0
    shadows_deleted: int = 0
    handovers: int = 0
    setups: int = 0
    removals: int = 0
    notifications_dispatched: int = 0
    notifications_buffered: int = 0
    replayed_to_device: int = 0
    replay_discarded: int = 0
    live_deliveries: int = 0
    control_messages_sent: int = 0
    exception_activations: int = 0


class Replicator(Process):
    """The replicator process associated with one border broker (Fig. 4)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        broker_name: str,
        space: LocationSpace,
        predictor: Optional[MovementPredictor] = None,
        config: Optional[ReplicatorConfig] = None,
    ):
        super().__init__(sim, name)
        self.broker_name = broker_name
        self.space = space
        self.predictor = predictor or NoPredictionPredictor()
        self.config = config or ReplicatorConfig()
        self.relocation = RelocationManager(broker_name, name)
        self.virtual_clients: Dict[str, VirtualClient] = {}
        self.active_clients: Dict[str, str] = {}  # client_id -> device process name
        self.shared_store: Optional[SharedNotificationStore] = (
            SharedNotificationStore() if self.config.use_shared_store else None
        )
        self._replicator_registry: Dict[str, str] = {}  # broker name -> replicator name
        self.stats = ReplicatorStats()

    # ------------------------------------------------------------------ wiring
    def set_replicator_registry(self, registry: Mapping[str, str]) -> None:
        """Tell this replicator which replicator process serves which broker."""
        self._replicator_registry = dict(registry)

    def replicator_of(self, broker_name: str) -> Optional[str]:
        return self._replicator_registry.get(broker_name)

    # --------------------------------------------------- VirtualClientHost API
    @property
    def now(self) -> float:
        return self.sim.now

    def issue_subscribe(self, subscription: Subscription) -> None:
        """Pass a subscription downwards to the border broker."""
        if self.has_link(self.broker_name):
            self.send(self.broker_name, Message(kind="subscribe", payload=subscription))

    def issue_unsubscribe(self, subscription: Subscription) -> None:
        """Pass an unsubscription downwards to the border broker."""
        if self.has_link(self.broker_name):
            self.send(
                self.broker_name,
                Message(kind="unsubscribe", payload={"sub_id": subscription.sub_id, "filter": subscription.filter}),
            )

    def deliver_to_device(self, client_id: str, notification: Notification, replayed: bool) -> None:
        """Pass a notification upwards to the connected mobile device."""
        device = self.active_clients.get(client_id)
        if device is None or not self.has_link(device):
            return
        if replayed:
            self.stats.replayed_to_device += 1
        else:
            self.stats.live_deliveries += 1
        self.send(device, Message(kind="notify", payload=notification, meta={"replayed": replayed}))

    # ------------------------------------------------------------- dispatching
    def on_message(self, message: Message) -> None:
        kind = message.kind
        if kind == "notify":
            self._handle_notify(message)
        elif kind == "publish":
            self._handle_publish(message)
        elif kind == CLIENT_HELLO:
            self._handle_client_hello(message)
        elif kind == CLIENT_SUBSCRIBE:
            self._handle_client_subscribe(message)
        elif kind == CLIENT_UNSUBSCRIBE:
            self._handle_client_unsubscribe(message)
        elif kind == LOCATION_UPDATE:
            self._handle_location_update(message)
        elif kind == CLIENT_LEAVING:
            self.device_disconnected(message.payload["client_id"])
        elif kind == CLIENT_BYE:
            self._handle_client_bye(message)
        elif kind == SHADOW_CREATE:
            self._handle_shadow_create(message)
        elif kind == SHADOW_DELETE:
            self._handle_shadow_delete(message)
        elif kind == SHADOW_SUB:
            self._handle_shadow_sub(message)
        elif kind == SHADOW_UNSUB:
            self._handle_shadow_unsub(message)
        elif kind == HANDOVER_REQUEST:
            self._handle_handover_request(message)
        elif kind == HANDOVER_REPLY:
            self._handle_handover_reply(message)
        # unknown kinds are silently ignored

    # ------------------------------------------------------------ pass-through
    def _handle_notify(self, message: Message) -> None:
        """A notification arrived from the broker: dispatch it to the hosted virtual clients."""
        notification: Notification = message.payload
        self.stats.notifications_dispatched += 1
        for virtual_client in self.virtual_clients.values():
            buffered_before = len(virtual_client.buffer)
            delivered_live = virtual_client.handle_notification(notification)
            if not delivered_live and len(virtual_client.buffer) > buffered_before:
                self.stats.notifications_buffered += 1

    def _handle_publish(self, message: Message) -> None:
        """A device published a notification: pass it through to the broker."""
        if self.has_link(self.broker_name):
            self.send(self.broker_name, Message(kind="publish", payload=message.payload))

    # ------------------------------------------------------------ client setup
    def _handle_client_hello(self, message: Message) -> None:
        hello: ClientHello = message.payload
        device_name = message.sender or hello.client_id
        client_id = hello.client_id
        self.active_clients[client_id] = device_name

        virtual_client = self.virtual_clients.get(client_id)
        had_shadow = virtual_client is not None
        if virtual_client is None:
            virtual_client = self._create_virtual_client(client_id)
        first_setup = hello.previous_broker is None

        if hello.reissue:
            for template_id, template in hello.templates.items():
                if template_id not in virtual_client.templates:
                    virtual_client.add_template(template_id, template)
            for sub_id, plain_filter in hello.plain_filters.items():
                if sub_id not in virtual_client.plain_filters:
                    virtual_client.add_plain_filter(sub_id, plain_filter)

        replay = virtual_client.activate(hello.location)
        self._replay_to_device(virtual_client, client_id, replay)

        if first_setup:
            self.stats.setups += 1
        else:
            self.stats.handovers += 1
        if not had_shadow and not first_setup and self.config.pre_subscription:
            # the movement graph did not cover this reconnection
            self.stats.exception_activations += 1

        moved = hello.previous_broker is not None and hello.previous_broker != self.broker_name
        if moved and hello.reissue and self.config.physical_relocation:
            request = self.relocation.build_request(client_id)
            self._send_control(hello.previous_broker, Message(kind=HANDOVER_REQUEST, payload=request))

        self._reconfigure_shadow_set(client_id, hello, moved, first_setup)

        device_link = self.active_clients.get(client_id)
        if device_link and self.has_link(device_link):
            self.send(
                device_link,
                Message(kind=WELCOME, payload={"broker": self.broker_name, "had_shadow": had_shadow}),
            )

    def _reconfigure_shadow_set(
        self, client_id: str, hello: ClientHello, moved: bool, first_setup: bool
    ) -> None:
        """Create and delete shadow virtual clients per Sect. 3.2.1 / 3.2.3."""
        if not hello.reissue:
            return
        virtual_client = self.virtual_clients[client_id]
        templates = dict(virtual_client.templates)
        if not self.config.pre_subscription:
            # No pre-subscription: only make sure the stale virtual client at the
            # previous broker is garbage collected once relocation has been served
            # (FIFO on the replicator link guarantees the ordering).
            if moved:
                self._send_control(
                    hello.previous_broker, Message(kind=SHADOW_DELETE, payload={"client_id": client_id})
                )
            return

        previous = hello.previous_broker
        new_neighbourhood = self._predict(self.broker_name)
        old_neighbourhood = self._predict(previous) if previous else frozenset()
        target_set = {self.broker_name} | set(new_neighbourhood)
        previous_set: Set[str] = set()
        if previous is not None:
            previous_set = {previous} | set(old_neighbourhood)
        to_create = sorted(target_set - previous_set - {self.broker_name})
        to_delete = sorted(previous_set - target_set)
        if first_setup:
            to_create = sorted(set(new_neighbourhood))
            to_delete = []
        for broker in to_create:
            self._send_control(
                broker,
                Message(kind=SHADOW_CREATE, payload={"client_id": client_id, "templates": templates}),
            )
        for broker in to_delete:
            self._send_control(broker, Message(kind=SHADOW_DELETE, payload={"client_id": client_id}))
        if previous is not None and moved:
            self.predictor.observe_handover(previous, self.broker_name)

    def _predict(self, broker_name: Optional[str]) -> FrozenSet[str]:
        if broker_name is None:
            return frozenset()
        try:
            return self.predictor.predict(broker_name)
        except KeyError:
            return frozenset()

    # -------------------------------------------------------- client operation
    def _handle_client_subscribe(self, message: Message) -> None:
        payload = message.payload
        client_id = payload["client_id"]
        virtual_client = self.virtual_clients.get(client_id)
        if virtual_client is None:
            virtual_client = self._create_virtual_client(client_id)
            self.virtual_clients[client_id] = virtual_client
        if payload.get("template") is not None:
            template_id = payload["template_id"]
            template: LocationDependentFilter = payload["template"]
            virtual_client.add_template(template_id, template)
            if self.config.pre_subscription:
                for broker in self._predict(self.broker_name):
                    self._send_control(
                        broker,
                        Message(
                            kind=SHADOW_SUB,
                            payload={
                                "client_id": client_id,
                                "template_id": template_id,
                                "template": template,
                            },
                        ),
                    )
        else:
            virtual_client.add_plain_filter(payload["sub_id"], payload["filter"])

    def _handle_client_unsubscribe(self, message: Message) -> None:
        payload = message.payload
        client_id = payload["client_id"]
        virtual_client = self.virtual_clients.get(client_id)
        if virtual_client is None:
            return
        if payload.get("template_id") is not None:
            template_id = payload["template_id"]
            virtual_client.remove_template(template_id)
            if self.config.pre_subscription:
                for broker in self._predict(self.broker_name):
                    self._send_control(
                        broker,
                        Message(
                            kind=SHADOW_UNSUB,
                            payload={"client_id": client_id, "template_id": template_id},
                        ),
                    )
        else:
            virtual_client.remove_plain_filter(payload["sub_id"])

    def _handle_location_update(self, message: Message) -> None:
        payload = message.payload
        client_id = payload["client_id"]
        virtual_client = self.virtual_clients.get(client_id)
        if virtual_client is not None:
            virtual_client.update_location(payload["location"])

    # ---------------------------------------------------------- client removal
    def _handle_client_bye(self, message: Message) -> None:
        client_id = message.payload["client_id"]
        self.stats.removals += 1
        self.active_clients.pop(client_id, None)
        virtual_client = self.virtual_clients.pop(client_id, None)
        if virtual_client is not None:
            virtual_client.teardown()
        if self.config.pre_subscription:
            for broker in self._predict(self.broker_name):
                self._send_control(broker, Message(kind=SHADOW_DELETE, payload={"client_id": client_id}))

    def device_disconnected(self, client_id: str) -> None:
        """Connection awareness: the device left this broker's range.

        The virtual client "notices this and starts to buffer notifications
        instead of delivering them to the client" (Sect. 3.2.3).
        """
        self.active_clients.pop(client_id, None)
        virtual_client = self.virtual_clients.get(client_id)
        if virtual_client is not None:
            virtual_client.deactivate()

    # ------------------------------------------------------------ shadow peers
    def _handle_shadow_create(self, message: Message) -> None:
        payload = message.payload
        client_id = payload["client_id"]
        virtual_client = self.virtual_clients.get(client_id)
        if virtual_client is None:
            virtual_client = self._create_virtual_client(client_id)
            self.stats.shadows_created += 1
        for template_id, template in payload.get("templates", {}).items():
            if template_id not in virtual_client.templates:
                virtual_client.add_template(template_id, template)

    def _handle_shadow_delete(self, message: Message) -> None:
        client_id = message.payload["client_id"]
        if client_id in self.active_clients:
            return  # never garbage collect the active virtual client
        virtual_client = self.virtual_clients.pop(client_id, None)
        if virtual_client is not None:
            virtual_client.teardown()
            self.stats.shadows_deleted += 1

    def _handle_shadow_sub(self, message: Message) -> None:
        payload = message.payload
        client_id = payload["client_id"]
        virtual_client = self.virtual_clients.get(client_id)
        if virtual_client is None:
            virtual_client = self._create_virtual_client(client_id)
            self.stats.shadows_created += 1
        virtual_client.add_template(payload["template_id"], payload["template"])

    def _handle_shadow_unsub(self, message: Message) -> None:
        payload = message.payload
        virtual_client = self.virtual_clients.get(payload["client_id"])
        if virtual_client is not None:
            virtual_client.remove_template(payload["template_id"])

    # ---------------------------------------------------------------- handover
    def _handle_handover_request(self, message: Message) -> None:
        request: HandoverRequest = message.payload
        virtual_client = self.virtual_clients.get(request.client_id)
        reply = self.relocation.serve_request(virtual_client, request, self.sim.now)
        if message.sender and self.has_link(message.sender):
            self.send(message.sender, Message(kind=HANDOVER_REPLY, payload=reply))

    def _handle_handover_reply(self, message: Message) -> None:
        reply: HandoverReply = message.payload
        client_id = reply.client_id
        virtual_client = self.virtual_clients.get(client_id)
        if virtual_client is None or client_id not in self.active_clients:
            return  # the client has already moved on; nothing to deliver here
        replay = self.relocation.apply_reply(
            virtual_client, reply, deliver_location_history=self.config.exception_mode
        )
        for notification in replay:
            self.deliver_to_device(client_id, notification, replayed=True)

    # ----------------------------------------------------------------- helpers
    def _create_virtual_client(self, client_id: str) -> VirtualClient:
        policy = self.config.buffer_policy_factory() if self.config.buffer_policy_factory else None
        virtual_client = VirtualClient(
            client_id=client_id,
            host=self,
            broker_name=self.broker_name,
            space=self.space,
            buffer_policy=policy,
            shared_store=self.shared_store,
        )
        self.virtual_clients[client_id] = virtual_client
        return virtual_client

    def _replay_to_device(
        self, virtual_client: VirtualClient, client_id: str, replay: List[Notification]
    ) -> None:
        for notification in replay:
            if self.config.filter_replay and not virtual_client.matches(notification):
                self.stats.replay_discarded += 1
                continue
            self.deliver_to_device(client_id, notification, replayed=True)

    def _send_control(self, broker_name: Optional[str], message: Message) -> None:
        """Send a control message to the replicator serving ``broker_name``."""
        if broker_name is None or broker_name == self.broker_name:
            return
        replicator_name = self._replicator_registry.get(broker_name)
        if replicator_name is None or not self.has_link(replicator_name):
            return
        self.stats.control_messages_sent += 1
        self.send(replicator_name, message)

    # ------------------------------------------------------------------- views
    def shadow_brokers_hosting(self) -> List[str]:
        """Client ids of the (buffering) shadows currently hosted here."""
        return sorted(
            client_id
            for client_id, vc in self.virtual_clients.items()
            if not vc.is_active
        )

    def hosted_client_ids(self) -> List[str]:
        return sorted(self.virtual_clients.keys())

    def total_buffered(self) -> int:
        return sum(len(vc.buffer) for vc in self.virtual_clients.values())

    def total_buffer_memory(self) -> int:
        memory = sum(vc.memory_bytes() for vc in self.virtual_clients.values())
        if self.shared_store is not None:
            memory += self.shared_store.memory_bytes()
        return memory
