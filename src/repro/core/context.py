"""Context-awareness: from ``myloc`` to state-dependent subscriptions.

The paper's research agenda asks how to "generalize the concept of
location-dependent subscriptions to 'state-dependent' subscriptions, opening
the whole area of context-awareness to the domain of pub/sub middleware
systems ...  dynamic filters, which depend on a function of the local state
of the client (not only its current location)" (Sect. 4).

This module provides that generalisation: a :class:`ContextDependentFilter`
is a filter template whose constraints reference named *context markers*;
binding it against the client's current context dictionary produces an
ordinary content-based filter.  :class:`ContextAwareClient` re-binds its
templates whenever its context changes — ``myloc`` becomes the special case
of a single ``location`` marker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..net.simulator import Simulator
from ..pubsub.client import Client
from ..pubsub.filters import Constraint, Equals, Filter, InSet, Range
from ..pubsub.subscription import Subscription

_context_counter = itertools.count(1)


@dataclass(frozen=True)
class ContextMarker:
    """A named placeholder resolved from the client's context at binding time.

    ``transform`` optionally post-processes the raw context value into the
    constraint operand (for example turning a battery percentage into a
    minimum-priority threshold).
    """

    name: str
    transform: Optional[Callable[[Any], Any]] = None

    def resolve(self, context: Mapping[str, Any]) -> Any:
        if self.name not in context:
            raise KeyError(f"context has no value for marker {self.name!r}")
        value = context[self.name]
        if self.transform is not None:
            value = self.transform(value)
        return value


@dataclass(frozen=True)
class ContextDependentFilter:
    """A filter template with context markers.

    ``static_spec`` holds ordinary attribute constraints; ``dynamic_spec``
    maps notification attributes to :class:`ContextMarker` objects whose
    resolved values become the constraint operands.
    """

    static_filter: Filter
    dynamic_spec: Tuple[Tuple[str, ContextMarker], ...]

    def bind(self, context: Mapping[str, Any]) -> Filter:
        """Substitute every marker with its current context value."""
        constraints: List[Constraint] = list(self.static_filter.constraints)
        for attribute, marker in self.dynamic_spec:
            value = marker.resolve(context)
            constraints.append(_constraint_for(attribute, value))
        return Filter(constraints)

    def markers(self) -> List[str]:
        return [marker.name for _attribute, marker in self.dynamic_spec]

    def __repr__(self) -> str:
        dynamic = ", ".join(f"{attr}<-{marker.name}" for attr, marker in self.dynamic_spec)
        return f"ContextDependentFilter({self.static_filter!r}, dynamic=[{dynamic}])"


def _constraint_for(attribute: str, value: Any) -> Constraint:
    if isinstance(value, (set, frozenset, list, tuple)):
        return InSet(attribute, value)
    if isinstance(value, range):
        return Range(attribute, low=value.start, high=value.stop)
    return Equals(attribute, value)


def context_dependent(
    static_spec: Mapping[str, Any] | Filter,
    dynamic_spec: Mapping[str, str | ContextMarker],
) -> ContextDependentFilter:
    """Build a context-dependent filter template.

    ``dynamic_spec`` maps notification attributes to context marker names
    (or :class:`ContextMarker` objects), e.g.::

        context_dependent({"service": "reminder"}, {"priority": "min_priority"})
    """
    if isinstance(static_spec, Filter):
        static_filter = static_spec
    else:
        constraints = [_constraint_for(attr, value) for attr, value in static_spec.items()]
        static_filter = Filter(constraints)
    dynamic: List[Tuple[str, ContextMarker]] = []
    for attribute, marker in dynamic_spec.items():
        if isinstance(marker, str):
            marker = ContextMarker(marker)
        dynamic.append((attribute, marker))
    return ContextDependentFilter(static_filter, tuple(dynamic))


class ContextAwareClient(Client):
    """A client whose subscriptions follow its local state, not just its location."""

    def __init__(self, sim: Simulator, name: str, initial_context: Optional[Mapping[str, Any]] = None):
        super().__init__(sim, name)
        self.context: Dict[str, Any] = dict(initial_context or {})
        self.templates: Dict[str, ContextDependentFilter] = {}
        self._bound_subs: Dict[str, Subscription] = {}
        self.rebinds = 0
        self.context_trace: List[Tuple[float, Dict[str, Any]]] = [(sim.now, dict(self.context))]

    # ---------------------------------------------------------------- templates
    def subscribe_context(
        self, template: ContextDependentFilter, template_id: Optional[str] = None
    ) -> str:
        template_id = template_id or f"ctx-{next(_context_counter)}"
        self.templates[template_id] = template
        self._bind(template_id)
        return template_id

    def unsubscribe_context(self, template_id: str) -> None:
        self.templates.pop(template_id, None)
        bound = self._bound_subs.pop(template_id, None)
        if bound is not None:
            self.unsubscribe(bound)

    # ------------------------------------------------------------------- context
    def update_context(self, **values: Any) -> None:
        """Change the client's local state and re-bind every affected template."""
        self.context.update(values)
        self.context_trace.append((self.sim.now, dict(self.context)))
        changed_markers = set(values.keys())
        for template_id, template in self.templates.items():
            if changed_markers & set(template.markers()):
                self._bind(template_id)

    def _bind(self, template_id: str) -> None:
        template = self.templates[template_id]
        try:
            desired = template.bind(self.context)
        except KeyError:
            return  # context not complete yet; bind when the missing value arrives
        current = self._bound_subs.get(template_id)
        if current is not None and current.filter == desired:
            return
        if current is not None:
            self.unsubscribe(current)
        subscription = self.subscribe(
            desired, sub_id=f"{self.name}:{template_id}:{next(_context_counter)}"
        )
        self._bound_subs[template_id] = subscription
        self.rebinds += 1

    # --------------------------------------------------------------------- stats
    def bound_filters(self) -> List[Filter]:
        return [sub.filter for sub in self._bound_subs.values()]

    def context_at(self, time: float) -> Dict[str, Any]:
        context: Dict[str, Any] = {}
        for timestamp, snapshot in self.context_trace:
            if timestamp <= time:
                context = snapshot
            else:
                break
        return context
