"""Quality-of-service metrics for mobile publish/subscribe.

The paper argues qualitatively — "the client may miss important notifications
by a fraction of a second", "a non-negligible overhead", "a very unpleasant
situation" — so the reproduction quantifies exactly those quantities:

* **missed notifications**: location-relevant notifications published while
  the client had no working delivery path for them;
* **first-delivery latency after handover**: how long after arriving at a new
  broker the client receives the first notification relevant to its new
  location (the "listen for a while" semantics);
* **control overhead**: subscription and shadow-management messages crossing
  the network;
* **buffer memory**: bytes held by shadow buffers.

All metrics are computed after the fact from recorded traces (published
notifications, client delivery logs, location traces), so they never perturb
the simulated system.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..pubsub.notification import Notification
from .location import LocationSpace
from .location_filter import LocationDependentFilter
from .mobile_client import MobileClient

LocationAt = Callable[[float], Optional[str]]


def location_at_factory(trace: Sequence[Tuple[float, str]]) -> LocationAt:
    """Build a "where was the client at time t" function from a location trace."""
    times = [timestamp for timestamp, _loc in trace]
    locations = [loc for _timestamp, loc in trace]

    def location_at(time: float) -> Optional[str]:
        index = bisect.bisect_right(times, time) - 1
        if index < 0:
            return None
        return locations[index]

    return location_at


def relevant_notification_ids(
    published: Iterable[Notification],
    location_at: LocationAt,
    template: LocationDependentFilter,
    space: LocationSpace,
) -> Set[int]:
    """Ground truth: which published notifications were relevant to the client when published?

    A notification is *relevant* iff, at its publication time, the client was
    at some location L and the notification matches the template bound to
    ``myloc(L)`` — i.e. a perfectly informed, zero-latency system would have
    delivered it.
    """
    relevant: Set[int] = set()
    for notification in published:
        if notification.published_at is None:
            continue
        location = location_at(notification.published_at)
        if location is None or location not in space:
            continue
        bound = template.bind_for_location(space, location)
        if bound.matches(notification):
            relevant.add(notification.notification_id)
    return relevant


@dataclass
class DeliveryOutcome:
    """Loss/precision summary for one client and one subscription template."""

    relevant: int
    delivered_relevant: int
    missed: int
    duplicates: int
    extraneous: int
    replayed: int
    live: int

    @property
    def miss_rate(self) -> float:
        if self.relevant == 0:
            return 0.0
        return self.missed / self.relevant

    @property
    def delivery_rate(self) -> float:
        if self.relevant == 0:
            return 1.0
        return self.delivered_relevant / self.relevant

    def as_row(self) -> Dict[str, float]:
        return {
            "relevant": self.relevant,
            "delivered": self.delivered_relevant,
            "missed": self.missed,
            "miss_rate": round(self.miss_rate, 4),
            "delivery_rate": round(self.delivery_rate, 4),
            "duplicates": self.duplicates,
            "extraneous": self.extraneous,
            "replayed": self.replayed,
            "live": self.live,
        }


def evaluate_mobile_delivery(
    client: MobileClient,
    published: Iterable[Notification],
    template: LocationDependentFilter,
    space: LocationSpace,
) -> DeliveryOutcome:
    """Compare a mobile client's deliveries against the ground-truth relevant set."""
    location_at = location_at_factory(client.location_trace)
    relevant = relevant_notification_ids(published, location_at, template, space)
    delivered_ids = [d.notification.notification_id for d in client.deliveries]
    delivered_set = set(delivered_ids)
    delivered_relevant = len(relevant & delivered_set)
    missed = len(relevant - delivered_set)
    duplicates = len(delivered_ids) - len(delivered_set)
    extraneous = len(delivered_set - relevant)
    replayed = sum(1 for d in client.deliveries if d.replayed)
    live = sum(1 for d in client.deliveries if not d.replayed)
    return DeliveryOutcome(
        relevant=len(relevant),
        delivered_relevant=delivered_relevant,
        missed=missed,
        duplicates=duplicates,
        extraneous=extraneous,
        replayed=replayed,
        live=live,
    )


def evaluate_plain_delivery(
    deliveries_ids: Sequence[int],
    published: Iterable[Notification],
    filter,
) -> DeliveryOutcome:
    """Loss summary for an ordinary (location-independent) subscription."""
    relevant = {n.notification_id for n in published if filter.matches(n)}
    delivered_set = set(deliveries_ids)
    delivered_relevant = len(relevant & delivered_set)
    return DeliveryOutcome(
        relevant=len(relevant),
        delivered_relevant=delivered_relevant,
        missed=len(relevant - delivered_set),
        duplicates=len(deliveries_ids) - len(delivered_set),
        extraneous=len(delivered_set - relevant),
        replayed=0,
        live=len(deliveries_ids),
    )


@dataclass
class HandoverLatency:
    """First useful delivery after one handover."""

    broker: str
    attached_at: float
    welcomed_at: Optional[float]
    first_delivery_at: Optional[float]

    @property
    def setup_latency(self) -> Optional[float]:
        if self.welcomed_at is None:
            return None
        return self.welcomed_at - self.attached_at

    @property
    def first_delivery_latency(self) -> Optional[float]:
        if self.first_delivery_at is None:
            return None
        return self.first_delivery_at - self.attached_at


def handover_latencies(client: MobileClient) -> List[HandoverLatency]:
    """For every attachment, when did the client receive its first notification afterwards?"""
    results: List[HandoverLatency] = []
    delivery_times = sorted(d.received_at for d in client.deliveries)
    for index, attachment in enumerate(client.attachments):
        window_end = (
            client.attachments[index + 1].requested_at
            if index + 1 < len(client.attachments)
            else float("inf")
        )
        first_delivery = None
        for received_at in delivery_times:
            if attachment.requested_at <= received_at < window_end:
                first_delivery = received_at
                break
        results.append(
            HandoverLatency(
                broker=attachment.broker,
                attached_at=attachment.requested_at,
                welcomed_at=attachment.welcomed_at,
                first_delivery_at=first_delivery,
            )
        )
    return results


def mean(values: Sequence[float]) -> float:
    """Mean of a possibly empty sequence (0.0 when empty)."""
    values = [v for v in values if v is not None]
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) using linear interpolation; 0.0 for empty input."""
    values = sorted(v for v in values if v is not None)
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    rank = (q / 100.0) * (len(values) - 1)
    low = int(rank)
    high = min(low + 1, len(values) - 1)
    fraction = rank - low
    return values[low] * (1 - fraction) + values[high] * fraction


@dataclass
class OverheadReport:
    """Control-traffic and state overhead of a run."""

    subscription_messages: int
    replication_messages: int
    total_messages: int
    total_bytes: int
    shadow_count: int
    buffer_memory: int

    def as_row(self) -> Dict[str, int]:
        return {
            "sub_msgs": self.subscription_messages,
            "repl_msgs": self.replication_messages,
            "total_msgs": self.total_messages,
            "total_bytes": self.total_bytes,
            "shadows": self.shadow_count,
            "buffer_bytes": self.buffer_memory,
        }


def overhead_report(system) -> OverheadReport:
    """Collect the overhead counters from a :class:`~repro.core.middleware.MobilePubSub` system."""
    return OverheadReport(
        subscription_messages=system.subscription_message_count(),
        replication_messages=system.control_message_count(),
        total_messages=system.network.total_messages(),
        total_bytes=system.network.total_bytes(),
        shadow_count=system.total_shadow_count(),
        buffer_memory=system.total_buffer_memory(),
    )
