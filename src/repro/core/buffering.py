"""Buffering policies and notification buffers.

Unconnected (shadow) virtual clients "buffer all delivered notifications
according to some application-specific buffering policy" (Sect. 3.1), and the
paper's research agenda (Sect. 4, "Embedding event histories") enumerates the
policy space reproduced here:

* **time-based** — "all notifications published more than t seconds ago are
  deleted from the buffer" (:class:`TimeBasedPolicy`);
* **history-based** — "the buffer always keeps the last n notifications"
  (:class:`CountBasedPolicy`);
* **combined** — "both schemes can be combined" (:class:`CombinedPolicy`);
* **semantic-based** — "new events can nullify old events"
  (:class:`SemanticPolicy`);
* **shared buffer with digests** — "a shared buffer at the border broker can
  be used and virtual clients can keep only the digest (e.g., IDs or hash) of
  the events" (:class:`SharedNotificationStore` + :class:`DigestBuffer`).

Buffers never drop notifications silently: every eviction is counted so the
experiments can report the memory/recall trade-off (E7, E8).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from ..pubsub.notification import Notification

SemanticKeyFunction = Callable[[Notification], Optional[Hashable]]


@dataclass
class BufferedNotification:
    """A notification held in a buffer, with the time it was buffered."""

    notification: Notification
    buffered_at: float

    def age(self, now: float) -> float:
        return now - self.buffered_at


class BufferPolicy:
    """Decides which buffered notifications must be evicted.

    Policies are stateless with respect to the buffer contents: they receive
    the current entries and return the entries to evict, which keeps them
    composable (see :class:`CombinedPolicy`).
    """

    name = "abstract"

    def select_evictions(
        self, entries: List[BufferedNotification], now: float
    ) -> List[BufferedNotification]:
        """Return the entries that should be removed from the buffer."""
        raise NotImplementedError  # pragma: no cover - interface

    def describe(self) -> str:
        return self.name


class UnboundedPolicy(BufferPolicy):
    """Never evict anything (useful as a ground-truth reference in experiments)."""

    name = "unbounded"

    def select_evictions(self, entries, now):
        return []


class TimeBasedPolicy(BufferPolicy):
    """Evict notifications buffered more than ``ttl`` seconds ago."""

    def __init__(self, ttl: float):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = ttl
        self.name = f"time({ttl}s)"

    def select_evictions(self, entries, now):
        return [entry for entry in entries if entry.age(now) > self.ttl]


class CountBasedPolicy(BufferPolicy):
    """Keep only the last ``max_entries`` notifications (FIFO eviction)."""

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.name = f"count({max_entries})"

    def select_evictions(self, entries, now):
        overflow = len(entries) - self.max_entries
        if overflow <= 0:
            return []
        # entries are kept in insertion order by NotificationBuffer
        return entries[:overflow]


class CombinedPolicy(BufferPolicy):
    """Evict anything that *any* member policy would evict."""

    def __init__(self, policies: Iterable[BufferPolicy]):
        self.policies = list(policies)
        if not self.policies:
            raise ValueError("CombinedPolicy needs at least one member policy")
        self.name = "combined(" + "+".join(p.name for p in self.policies) + ")"

    def select_evictions(self, entries, now):
        to_evict: "OrderedDict[int, BufferedNotification]" = OrderedDict()
        for policy in self.policies:
            for entry in policy.select_evictions(entries, now):
                to_evict[id(entry)] = entry
        return list(to_evict.values())


class SemanticPolicy(BufferPolicy):
    """Newer events nullify older events with the same semantic key.

    ``key_function`` maps a notification to a hashable key (for example
    ``lambda n: (n.get("service"), n.get("location"))`` so that a new
    temperature reading for a room replaces the previous one).  Returning
    ``None`` exempts a notification from nullification.
    """

    def __init__(self, key_function: SemanticKeyFunction):
        self.key_function = key_function
        self.name = "semantic"

    def select_evictions(self, entries, now):
        latest: Dict[Hashable, BufferedNotification] = {}
        for entry in entries:
            key = self.key_function(entry.notification)
            if key is None:
                continue
            latest[key] = entry  # entries are in insertion order; the last one wins
        to_evict = []
        for entry in entries:
            key = self.key_function(entry.notification)
            if key is None:
                continue
            if latest[key] is not entry:
                to_evict.append(entry)
        return to_evict


class NotificationBuffer:
    """A per-virtual-client buffer applying a :class:`BufferPolicy`.

    Notifications are kept in insertion (delivery) order; :meth:`drain`
    returns them in that order, which is what makes the replay after handover
    look like "a subscription in the past" (Sect. 1).
    """

    def __init__(self, policy: Optional[BufferPolicy] = None):
        self.policy = policy or UnboundedPolicy()
        self._entries: List[BufferedNotification] = []
        self.added = 0
        self.evicted = 0
        self.replayed = 0

    # ------------------------------------------------------------------- core
    def add(self, notification: Notification, now: float) -> None:
        """Buffer a notification and apply the eviction policy."""
        self._entries.append(BufferedNotification(notification, buffered_at=now))
        self.added += 1
        self._apply_policy(now)

    def expire(self, now: float) -> int:
        """Apply the policy without adding anything; returns how many entries were evicted."""
        before = len(self._entries)
        self._apply_policy(now)
        return before - len(self._entries)

    def drain(self, now: Optional[float] = None) -> List[Notification]:
        """Return all live notifications in order and empty the buffer (the replay)."""
        if now is not None:
            self._apply_policy(now)
        notifications = [entry.notification for entry in self._entries]
        self.replayed += len(notifications)
        self._entries = []
        return notifications

    def contents(self, now: Optional[float] = None) -> List[Notification]:
        """Return live notifications without draining."""
        if now is not None:
            self._apply_policy(now)
        return [entry.notification for entry in self._entries]

    def clear(self) -> int:
        dropped = len(self._entries)
        self._entries = []
        return dropped

    def _apply_policy(self, now: float) -> None:
        evictions = self.policy.select_evictions(self._entries, now)
        if not evictions:
            return
        evicted_ids = {id(entry) for entry in evictions}
        self._entries = [entry for entry in self._entries if id(entry) not in evicted_ids]
        self.evicted += len(evictions)

    # ------------------------------------------------------------------ stats
    def __len__(self) -> int:
        return len(self._entries)

    def memory_bytes(self) -> int:
        """Abstract memory footprint: sum of buffered notification sizes."""
        return sum(entry.notification.estimated_size() for entry in self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NotificationBuffer({len(self._entries)} entries, policy={self.policy.name})"


# ----------------------------------------------------------- shared buffering


class SharedNotificationStore:
    """A reference-counted notification store shared by co-located virtual clients.

    Each notification is stored once (keyed by its digest); digest buffers
    hold only the digests.  When the last referencing digest is released the
    notification is garbage collected — "the events can be garbage collected
    according to a chosen policy when none of the virtual clients need them"
    (Sect. 4).
    """

    #: abstract size of a digest entry held by a virtual client
    DIGEST_SIZE = 16

    def __init__(self) -> None:
        self._store: Dict[int, Notification] = {}
        self._refcounts: Dict[int, int] = {}
        self.stored = 0
        self.collected = 0

    def put(self, notification: Notification) -> int:
        """Store (or re-reference) a notification; returns its digest."""
        digest = notification.digest()
        if digest not in self._store:
            self._store[digest] = notification
            self._refcounts[digest] = 0
            self.stored += 1
        self._refcounts[digest] += 1
        return digest

    def get(self, digest: int) -> Optional[Notification]:
        return self._store.get(digest)

    def release(self, digest: int) -> None:
        """Drop one reference; the notification is collected when none remain."""
        if digest not in self._refcounts:
            return
        self._refcounts[digest] -= 1
        if self._refcounts[digest] <= 0:
            del self._refcounts[digest]
            del self._store[digest]
            self.collected += 1

    def __len__(self) -> int:
        return len(self._store)

    def memory_bytes(self) -> int:
        """Memory held by the shared store (each notification stored exactly once)."""
        return sum(n.estimated_size() for n in self._store.values())


class DigestBuffer:
    """A virtual-client buffer that keeps only digests into a shared store."""

    def __init__(self, store: SharedNotificationStore, policy: Optional[BufferPolicy] = None):
        self.store = store
        self.policy = policy or UnboundedPolicy()
        self._entries: List[Tuple[int, BufferedNotification]] = []
        self.added = 0
        self.evicted = 0
        self.replayed = 0

    def add(self, notification: Notification, now: float) -> None:
        digest = self.store.put(notification)
        self._entries.append((digest, BufferedNotification(notification, buffered_at=now)))
        self.added += 1
        self._apply_policy(now)

    def drain(self, now: Optional[float] = None) -> List[Notification]:
        """Fetch all live notifications from the shared store, releasing the digests."""
        if now is not None:
            self._apply_policy(now)
        notifications: List[Notification] = []
        for digest, _entry in self._entries:
            stored = self.store.get(digest)
            if stored is not None:
                notifications.append(stored)
            self.store.release(digest)
        self.replayed += len(notifications)
        self._entries = []
        return notifications

    def clear(self) -> None:
        for digest, _entry in self._entries:
            self.store.release(digest)
        self._entries = []

    def _apply_policy(self, now: float) -> None:
        shadow_entries = [entry for _digest, entry in self._entries]
        evictions = self.policy.select_evictions(shadow_entries, now)
        if not evictions:
            return
        evicted_ids = {id(entry) for entry in evictions}
        kept: List[Tuple[int, BufferedNotification]] = []
        for digest, entry in self._entries:
            if id(entry) in evicted_ids:
                self.store.release(digest)
                self.evicted += 1
            else:
                kept.append((digest, entry))
        self._entries = kept

    def __len__(self) -> int:
        return len(self._entries)

    def memory_bytes(self) -> int:
        """Memory held *by this virtual client*: digests only."""
        return SharedNotificationStore.DIGEST_SIZE * len(self._entries)


def make_policy(spec: str, **kwargs) -> BufferPolicy:
    """Create a policy from a short textual spec: ``"time"``, ``"count"``, ``"combined"``, ...

    Convenience used by the experiment harness and the examples; programmatic
    users should instantiate the policy classes directly.
    """
    if spec == "unbounded":
        return UnboundedPolicy()
    if spec == "time":
        return TimeBasedPolicy(ttl=kwargs.get("ttl", 60.0))
    if spec == "count":
        return CountBasedPolicy(max_entries=kwargs.get("max_entries", 100))
    if spec == "combined":
        return CombinedPolicy(
            [
                TimeBasedPolicy(ttl=kwargs.get("ttl", 60.0)),
                CountBasedPolicy(max_entries=kwargs.get("max_entries", 100)),
            ]
        )
    if spec == "semantic":
        key_function = kwargs.get("key_function")
        if key_function is None:
            key_function = lambda n: (n.get("service"), n.get("location"))  # noqa: E731
        return SemanticPolicy(key_function)
    raise ValueError(f"unknown buffer policy spec {spec!r}")
