"""Locations and location spaces.

The paper makes *location* a first-class concept of the pub/sub system:
location-dependent subscriptions use a ``myloc`` marker that "stands for a
specific set of locations that depends on the current location of the client"
and whose mapping is *application dependent* (Sect. 1).

Two notions of location coexist (and the paper's key observation is that they
are related):

* the *physical* location granularity is the broker network — which border
  broker covers the client;
* the *logical* location granularity is application defined — a room on an
  office floor, a road segment, a weather region.

A :class:`LocationSpace` captures the application-dependent part: which
logical locations exist, which broker covers each of them, and what set of
locations ``myloc`` binds to for a client sitting at a given location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

#: The attribute name used for locations in notifications and filters.
LOCATION_ATTRIBUTE = "location"


@dataclass(frozen=True)
class Location:
    """A logical location (a room, a cell, a road segment, a region member)."""

    name: str
    region: Optional[str] = None

    def __str__(self) -> str:
        return self.name


class LocationSpace:
    """The application-dependent mapping between locations, brokers and ``myloc``.

    Parameters
    ----------
    broker_of:
        Mapping from location name to the border broker that covers it
        (the physical-mobility granularity).
    regions:
        Optional mapping from location name to a region name.  When a region
        is defined, :meth:`myloc` can be configured to bind to the whole
        region (``scope="region"``) instead of the single location.
    adjacency:
        Optional mapping from location name to neighbouring location names,
        used for ``scope="neighbourhood"`` bindings and by mobility models.
    """

    def __init__(
        self,
        broker_of: Mapping[str, str],
        regions: Optional[Mapping[str, str]] = None,
        adjacency: Optional[Mapping[str, Iterable[str]]] = None,
        myloc_scope: str = "location",
    ):
        self._broker_of: Dict[str, str] = dict(broker_of)
        self._regions: Dict[str, str] = dict(regions or {})
        self._adjacency: Dict[str, Set[str]] = {
            loc: set(neigh) for loc, neigh in (adjacency or {}).items()
        }
        if myloc_scope not in {"location", "region", "neighbourhood", "broker"}:
            raise ValueError(f"unknown myloc scope {myloc_scope!r}")
        self.myloc_scope = myloc_scope

    # ----------------------------------------------------------------- lookup
    @property
    def locations(self) -> List[str]:
        return sorted(self._broker_of.keys())

    def broker_of(self, location: str) -> str:
        """The border broker covering a logical location."""
        return self._broker_of[location]

    def locations_of_broker(self, broker_name: str) -> List[str]:
        """All logical locations covered by a border broker."""
        return sorted(loc for loc, broker in self._broker_of.items() if broker == broker_name)

    def region_of(self, location: str) -> Optional[str]:
        return self._regions.get(location)

    def locations_of_region(self, region: str) -> List[str]:
        return sorted(loc for loc, reg in self._regions.items() if reg == region)

    def neighbours_of(self, location: str) -> Set[str]:
        return set(self._adjacency.get(location, set()))

    def brokers(self) -> List[str]:
        return sorted(set(self._broker_of.values()))

    def __contains__(self, location: str) -> bool:
        return location in self._broker_of

    def __len__(self) -> int:
        return len(self._broker_of)

    # ------------------------------------------------------------------ myloc
    def myloc(self, location: str, scope: Optional[str] = None) -> FrozenSet[str]:
        """The set of locations the ``myloc`` marker binds to for a client at ``location``.

        The binding is application dependent (Sect. 1); the supported scopes
        are the ones the paper's examples suggest:

        * ``"location"`` — just the client's own location (the particular
          office in the temperature example);
        * ``"region"`` — every location in the same region (the weather of
          "the region someone is currently located in");
        * ``"neighbourhood"`` — the location plus its adjacent locations
          (restaurant menus "along the route of a car");
        * ``"broker"`` — every location covered by the same border broker
          (the coarsest application-level view).
        """
        effective_scope = scope or self.myloc_scope
        if location not in self._broker_of:
            raise KeyError(f"unknown location {location!r}")
        if effective_scope == "location":
            return frozenset({location})
        if effective_scope == "region":
            region = self._regions.get(location)
            if region is None:
                return frozenset({location})
            return frozenset(self.locations_of_region(region))
        if effective_scope == "neighbourhood":
            return frozenset({location} | self.neighbours_of(location))
        if effective_scope == "broker":
            return frozenset(self.locations_of_broker(self._broker_of[location]))
        raise ValueError(f"unknown myloc scope {effective_scope!r}")

    def myloc_for_broker(self, broker_name: str) -> FrozenSet[str]:
        """The location set a *shadow* virtual client at ``broker_name`` binds ``myloc`` to.

        Shadows do not know the exact location the client will arrive at, so
        they subscribe to everything relevant anywhere in the broker's
        coverage area ("those subscriptions a client arriving at that
        location would have", Sect. 3.1).
        """
        return frozenset(self.locations_of_broker(broker_name))


# ------------------------------------------------------------------- builders


def office_floor_space(
    n_rooms: int,
    rooms_per_broker: int = 4,
    broker_prefix: str = "B",
    room_prefix: str = "room",
    myloc_scope: str = "location",
) -> LocationSpace:
    """An office floor: a corridor of rooms, consecutive rooms share a border broker.

    Adjacency is the corridor order (room-i is adjacent to room-(i±1)), the
    setting of the paper's office-floor example (Fig. 1, right).
    """
    if n_rooms < 1 or rooms_per_broker < 1:
        raise ValueError("n_rooms and rooms_per_broker must be positive")
    broker_of: Dict[str, str] = {}
    adjacency: Dict[str, Set[str]] = {}
    width = max(2, len(str(n_rooms - 1)))
    rooms = [f"{room_prefix}-{i:0{width}d}" for i in range(n_rooms)]
    for i, room in enumerate(rooms):
        broker_of[room] = f"{broker_prefix}{i // rooms_per_broker + 1}"
        neighbours = set()
        if i > 0:
            neighbours.add(rooms[i - 1])
        if i < n_rooms - 1:
            neighbours.add(rooms[i + 1])
        adjacency[room] = neighbours
    return LocationSpace(broker_of, adjacency=adjacency, myloc_scope=myloc_scope)


def cell_grid_space(
    rows: int,
    cols: int,
    broker_for_cell: Optional[Mapping[Tuple[int, int], str]] = None,
    region_rows: int = 0,
    myloc_scope: str = "location",
) -> LocationSpace:
    """A rows x cols grid of cells (GSM-style coverage), 4-neighbourhood adjacency.

    ``broker_for_cell`` maps grid coordinates to broker names; when omitted,
    every cell gets its own broker named ``B_<r>_<c>`` (one base station per
    cell, the GSM example of Sect. 3.2).  If ``region_rows`` is positive,
    cells are grouped into horizontal bands of that many rows, forming the
    regions used by region-scoped ``myloc`` bindings (weather regions).
    """
    broker_of: Dict[str, str] = {}
    regions: Dict[str, str] = {}
    adjacency: Dict[str, Set[str]] = {}
    for r in range(rows):
        for c in range(cols):
            cell = cell_name(r, c)
            if broker_for_cell is not None:
                broker_of[cell] = broker_for_cell[(r, c)]
            else:
                broker_of[cell] = f"B_{r}_{c}"
            if region_rows > 0:
                regions[cell] = f"region-{r // region_rows}"
            neighbours = set()
            for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nr, nc = r + dr, c + dc
                if 0 <= nr < rows and 0 <= nc < cols:
                    neighbours.add(cell_name(nr, nc))
            adjacency[cell] = neighbours
    return LocationSpace(
        broker_of, regions=regions or None, adjacency=adjacency, myloc_scope=myloc_scope
    )


def route_space(
    n_segments: int,
    segments_per_broker: int = 3,
    broker_prefix: str = "B",
    segment_prefix: str = "km",
    myloc_scope: str = "neighbourhood",
) -> LocationSpace:
    """A linear route (a road) divided into segments; the car example of Sect. 1.

    ``myloc`` defaults to the neighbourhood scope so a car sees "the
    restaurants along the route", i.e. its segment and the adjacent ones.
    """
    broker_of: Dict[str, str] = {}
    adjacency: Dict[str, Set[str]] = {}
    width = max(2, len(str(n_segments - 1)))
    segments = [f"{segment_prefix}-{i:0{width}d}" for i in range(n_segments)]
    for i, segment in enumerate(segments):
        broker_of[segment] = f"{broker_prefix}{i // segments_per_broker + 1}"
        neighbours = set()
        if i > 0:
            neighbours.add(segments[i - 1])
        if i < n_segments - 1:
            neighbours.add(segments[i + 1])
        adjacency[segment] = neighbours
    return LocationSpace(broker_of, adjacency=adjacency, myloc_scope=myloc_scope)


def cell_name(row: int, col: int) -> str:
    """Canonical cell naming used by grid spaces and grid mobility models."""
    return f"cell-{row}-{col}"
