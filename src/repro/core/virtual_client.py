"""Virtual clients: the client's representatives inside the middleware.

In mobile REBECA a device that cannot host a local broker connects "to a
virtual counterpart running at the border broker to which it is connected"
(Sect. 2, Fig. 3).  The extended-logical-mobility algorithm replicates this
virtual client at neighbouring brokers:

    "At any time, only at most one of the virtual clients is in fact
    associated with (and connected to) the 'real' client ...  All other
    clients should mimic the behavior of the real client, i.e., they should
    subscribe and unsubscribe to the same location-dependent filters as the
    client.  However, only the virtual client which is in fact connected to
    the mobile device publishes notifications and delivers notifications to
    the mobile device.  Unconnected virtual clients ... buffer all delivered
    notifications according to some application-specific buffering policy."
    (Sect. 3.1)

A :class:`VirtualClient` is hosted by the replicator process of one border
broker.  It is either **active** (connected to the real device, delivering
notifications and holding the device's location-independent subscriptions
too) or **buffering** (a shadow / "information shadow": location-dependent
subscriptions bound to the broker's own coverage area, deliveries buffered).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Mapping, Optional, Protocol

from ..pubsub.filters import Filter
from ..pubsub.notification import Notification
from ..pubsub.subscription import Subscription
from .buffering import BufferPolicy, DigestBuffer, NotificationBuffer, SharedNotificationStore
from .location import LocationSpace
from .location_filter import LocationDependentFilter


class VirtualClientMode(enum.Enum):
    """Whether the virtual client is connected to the real device or shadowing it."""

    ACTIVE = "active"
    BUFFERING = "buffering"


class VirtualClientHost(Protocol):
    """What a virtual client needs from the replicator hosting it."""

    @property
    def now(self) -> float: ...

    def issue_subscribe(self, subscription: Subscription) -> None: ...

    def issue_unsubscribe(self, subscription: Subscription) -> None: ...

    def deliver_to_device(self, client_id: str, notification: Notification, replayed: bool) -> None: ...


class VirtualClient:
    """One client's representative at one border broker.

    Parameters
    ----------
    client_id:
        Name of the mobile client this virtual client represents.
    host:
        The replicator hosting this virtual client (see :class:`VirtualClientHost`).
    broker_name:
        The border broker this virtual client lives at.
    space:
        The location space used to bind ``myloc``.
    buffer_policy:
        Eviction policy for the shadow buffer.
    shared_store:
        When given, the buffer keeps only digests into this shared store
        (the memory optimisation of Sect. 4, experiment E8).
    """

    def __init__(
        self,
        client_id: str,
        host: VirtualClientHost,
        broker_name: str,
        space: LocationSpace,
        buffer_policy: Optional[BufferPolicy] = None,
        shared_store: Optional[SharedNotificationStore] = None,
    ):
        self.client_id = client_id
        self.host = host
        self.broker_name = broker_name
        self.space = space
        self.mode = VirtualClientMode.BUFFERING
        self.location: Optional[str] = None
        # Subscriptions, by the client-chosen template / subscription id.
        self.templates: Dict[str, LocationDependentFilter] = {}
        self.plain_filters: Dict[str, Filter] = {}
        # What is currently issued at the broker (via the host replicator).
        self._bound: Dict[str, Subscription] = {}
        self._plain_issued: Dict[str, Subscription] = {}
        if shared_store is not None:
            self.buffer: NotificationBuffer | DigestBuffer = DigestBuffer(shared_store, buffer_policy)
        else:
            self.buffer = NotificationBuffer(buffer_policy)
        # Counters used by the experiments.
        self.delivered_live = 0
        self.buffered_total = 0
        self.replayed_total = 0
        self.rebinds = 0

    # --------------------------------------------------------------- identity
    def _sub_id(self, key: str) -> str:
        return f"{self.client_id}:{key}@{self.broker_name}"

    @property
    def is_active(self) -> bool:
        return self.mode is VirtualClientMode.ACTIVE

    # ---------------------------------------------------------- subscriptions
    def set_templates(self, templates: Mapping[str, LocationDependentFilter]) -> None:
        """Replace the whole set of location-dependent templates (client setup)."""
        for template_id in list(self.templates):
            if template_id not in templates:
                self.remove_template(template_id)
        for template_id, template in templates.items():
            self.add_template(template_id, template)

    def add_template(self, template_id: str, template: LocationDependentFilter) -> None:
        """Mimic the client's subscribe call for a location-dependent filter."""
        self.templates[template_id] = template
        self._rebind_template(template_id)

    def remove_template(self, template_id: str) -> None:
        """Mimic the client's unsubscribe call for a location-dependent filter."""
        self.templates.pop(template_id, None)
        issued = self._bound.pop(template_id, None)
        if issued is not None:
            self.host.issue_unsubscribe(issued)

    def set_plain_filters(self, filters: Mapping[str, Filter]) -> None:
        """Replace the set of location-independent subscriptions."""
        for sub_id in list(self.plain_filters):
            if sub_id not in filters:
                self.remove_plain_filter(sub_id)
        for sub_id, filter in filters.items():
            self.add_plain_filter(sub_id, filter)

    def add_plain_filter(self, sub_id: str, filter: Filter) -> None:
        """Add a location-independent subscription.

        Shadows do not install plain filters: "the replication strategy need
        not be applied to any subscription which is not location-dependent"
        (Sect. 3.1) — those are handled by physical mobility at the active
        broker only.
        """
        self.plain_filters[sub_id] = filter
        if self.is_active:
            self._issue_plain(sub_id)

    def remove_plain_filter(self, sub_id: str) -> None:
        self.plain_filters.pop(sub_id, None)
        issued = self._plain_issued.pop(sub_id, None)
        if issued is not None:
            self.host.issue_unsubscribe(issued)

    # ------------------------------------------------------------- activation
    def activate(self, location: Optional[str]) -> List[Notification]:
        """Connect the real device to this virtual client.

        Rebinds the location-dependent subscriptions to the client's precise
        ``myloc`` set, installs the location-independent subscriptions, and
        returns the buffered notifications to replay ("once a client actually
        arrives, all buffered messages are delivered as if the client has
        been there some time", Sect. 1).
        """
        self.mode = VirtualClientMode.ACTIVE
        self.location = location
        for template_id in self.templates:
            self._rebind_template(template_id)
        for sub_id in self.plain_filters:
            self._issue_plain(sub_id)
        replay = self.buffer.drain(self.host.now)
        self.replayed_total += len(replay)
        return replay

    def deactivate(self) -> None:
        """Disconnect the device: fall back to shadow behaviour.

        Location-dependent subscriptions are re-bound to the broker's whole
        coverage area; location-independent subscriptions stay installed so
        that physical mobility can buffer for the disconnected client at this
        (old) broker until relocation completes.
        """
        self.mode = VirtualClientMode.BUFFERING
        self.location = None
        for template_id in self.templates:
            self._rebind_template(template_id)

    def update_location(self, location: str) -> None:
        """Within-broker logical mobility: the client moved to another covered location."""
        self.location = location
        if self.is_active:
            for template_id in self.templates:
                self._rebind_template(template_id)

    def withdraw_plain_filters(self) -> None:
        """Remove the location-independent subscriptions from this broker (after relocation)."""
        for sub_id in list(self._plain_issued):
            issued = self._plain_issued.pop(sub_id)
            self.host.issue_unsubscribe(issued)

    # --------------------------------------------------------------- delivery
    def handle_notification(self, notification: Notification) -> bool:
        """Process a notification the replicator matched to this virtual client.

        Returns ``True`` if it was delivered live, ``False`` if it was buffered.
        """
        if not self.matches(notification):
            return False
        if self.is_active:
            self.delivered_live += 1
            self.host.deliver_to_device(self.client_id, notification, replayed=False)
            return True
        self.buffer.add(notification, self.host.now)
        self.buffered_total += 1
        return False

    def matches(self, notification: Notification) -> bool:
        """Does any currently issued filter of this virtual client match?"""
        for subscription in self._bound.values():
            if subscription.filter.matches(notification):
                return True
        for subscription in self._plain_issued.values():
            if subscription.filter.matches(notification):
                return True
        return False

    # ---------------------------------------------------------------- removal
    def teardown(self) -> int:
        """Withdraw every subscription and drop the buffer (garbage collection)."""
        for template_id in list(self._bound):
            issued = self._bound.pop(template_id)
            self.host.issue_unsubscribe(issued)
        self.withdraw_plain_filters()
        dropped = len(self.buffer)
        self.buffer.clear()
        return dropped

    # ---------------------------------------------------------------- binding
    def _desired_binding(self, template: LocationDependentFilter) -> Filter:
        if self.is_active and self.location is not None and self.location in self.space:
            return template.bind_for_location(self.space, self.location)
        return template.bind_for_broker(self.space, self.broker_name)

    def _rebind_template(self, template_id: str) -> None:
        template = self.templates[template_id]
        desired = self._desired_binding(template)
        current = self._bound.get(template_id)
        if current is not None and current.filter == desired:
            return
        if current is not None:
            self.host.issue_unsubscribe(current)
        subscription = Subscription(
            sub_id=self._sub_id(template_id),
            filter=desired,
            subscriber=self.client_id,
            location_dependent=True,
            template=template,
        )
        self._bound[template_id] = subscription
        self.host.issue_subscribe(subscription)
        self.rebinds += 1

    def _issue_plain(self, sub_id: str) -> None:
        if sub_id in self._plain_issued:
            return
        subscription = Subscription(
            sub_id=self._sub_id("plain-" + sub_id),
            filter=self.plain_filters[sub_id],
            subscriber=self.client_id,
            location_dependent=False,
        )
        self._plain_issued[sub_id] = subscription
        self.host.issue_subscribe(subscription)

    # ------------------------------------------------------------------ stats
    def buffer_size(self) -> int:
        return len(self.buffer)

    def memory_bytes(self) -> int:
        return self.buffer.memory_bytes()

    def bound_filters(self) -> List[Filter]:
        return [s.filter for s in self._bound.values()] + [s.filter for s in self._plain_issued.values()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualClient({self.client_id}@{self.broker_name}, {self.mode.value}, "
            f"{len(self.templates)} templates, buffer={len(self.buffer)})"
        )
