"""Movement prediction: where should shadow virtual clients be cast?

The replicator's job is to place shadow virtual clients at "every broker to
which the client may connect in the 'near' future" (Sect. 3.1).  The paper's
baseline answer is the 1-hop ``nlb`` neighbourhood, but Sect. 4 explicitly
frames this as a trade-off ("as large as necessary ... as small as
possible") and calls the extreme case degenerate flooding.

A :class:`MovementPredictor` encapsulates one policy for choosing the shadow
set, so experiment E6 can sweep the whole spectrum:

* :class:`NeighbourhoodPredictor` — the paper's ``nlb`` (optionally k-hop);
* :class:`FloodingPredictor` — shadows everywhere (maximal coverage, maximal
  cost);
* :class:`NoPredictionPredictor` — no shadows at all (the reactive baseline);
* :class:`MarkovPredictor` — learns transition frequencies from the client's
  observed handover history and keeps only neighbours whose estimated
  transition probability exceeds a threshold;
* :class:`RecencyPredictor` — shadows on the most recently visited brokers
  (useful for commuting patterns: home/office).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .movement_graph import MovementGraph


class MovementPredictor:
    """Policy interface: given the current broker and history, predict the shadow set."""

    name = "abstract"

    def predict(self, current_broker: str, history: Sequence[str] = ()) -> FrozenSet[str]:
        """Return the brokers (excluding the current one) that should host shadows."""
        raise NotImplementedError  # pragma: no cover - interface

    def observe_handover(self, from_broker: str, to_broker: str) -> None:
        """Feed an observed handover to adaptive predictors (no-op by default)."""

    def describe(self) -> str:
        return self.name


class NeighbourhoodPredictor(MovementPredictor):
    """The paper's ``nlb``: the (k-hop) movement-graph neighbourhood."""

    def __init__(self, graph: MovementGraph, hops: int = 1):
        if hops < 1:
            raise ValueError("hops must be >= 1")
        self.graph = graph
        self.hops = hops
        self.name = f"nlb-{hops}hop"

    def predict(self, current_broker: str, history: Sequence[str] = ()) -> FrozenSet[str]:
        if self.hops == 1:
            return self.graph.nlb(current_broker)
        return self.graph.nlb_k(current_broker, self.hops)


class FloodingPredictor(MovementPredictor):
    """Shadows at every broker — the degenerate case the paper warns against."""

    name = "flooding"

    def __init__(self, brokers: Iterable[str]):
        self.brokers = frozenset(brokers)

    def predict(self, current_broker: str, history: Sequence[str] = ()) -> FrozenSet[str]:
        return frozenset(b for b in self.brokers if b != current_broker)


class NoPredictionPredictor(MovementPredictor):
    """No shadows: the reactive re-subscription baseline."""

    name = "none"

    def predict(self, current_broker: str, history: Sequence[str] = ()) -> FrozenSet[str]:
        return frozenset()


class MarkovPredictor(MovementPredictor):
    """First-order Markov prediction learned from observed handovers.

    The predictor counts transitions ``from -> to``; the predicted shadow set
    for broker ``b`` is every broker whose estimated transition probability
    from ``b`` is at least ``threshold``.  Until enough observations exist
    (fewer than ``min_observations`` transitions out of ``b``), it falls back
    to the movement-graph neighbourhood, so coverage never starts worse than
    the paper's baseline.
    """

    def __init__(
        self,
        graph: MovementGraph,
        threshold: float = 0.15,
        min_observations: int = 5,
        max_candidates: Optional[int] = None,
    ):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self.graph = graph
        self.threshold = threshold
        self.min_observations = min_observations
        self.max_candidates = max_candidates
        self._counts: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._totals: Dict[str, int] = defaultdict(int)
        self.name = f"markov(p>={threshold})"

    def observe_handover(self, from_broker: str, to_broker: str) -> None:
        if from_broker == to_broker:
            return
        self._counts[from_broker][to_broker] += 1
        self._totals[from_broker] += 1

    def transition_probability(self, from_broker: str, to_broker: str) -> float:
        total = self._totals.get(from_broker, 0)
        if total == 0:
            return 0.0
        return self._counts[from_broker].get(to_broker, 0) / total

    def predict(self, current_broker: str, history: Sequence[str] = ()) -> FrozenSet[str]:
        total = self._totals.get(current_broker, 0)
        if total < self.min_observations:
            if current_broker in self.graph:
                return self.graph.nlb(current_broker)
            return frozenset()
        candidates: List[Tuple[float, str]] = []
        for target, count in self._counts[current_broker].items():
            probability = count / total
            if probability >= self.threshold:
                candidates.append((probability, target))
        candidates.sort(reverse=True)
        if self.max_candidates is not None:
            candidates = candidates[: self.max_candidates]
        predicted = frozenset(target for _, target in candidates)
        if not predicted and current_broker in self.graph:
            # Never predict an empty set while movement knowledge exists:
            # degrade gracefully to the movement-graph neighbourhood.
            return self.graph.nlb(current_broker)
        return predicted


class RecencyPredictor(MovementPredictor):
    """Shadows at the ``window`` most recently visited distinct brokers.

    Captures commuting patterns ("the border broker at home ... the border
    broker at the office", Sect. 1) without requiring a movement graph.
    """

    def __init__(self, window: int = 3):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._recent: Deque[str] = deque()
        self.name = f"recency-{window}"

    def observe_handover(self, from_broker: str, to_broker: str) -> None:
        for broker in (from_broker, to_broker):
            if broker in self._recent:
                self._recent.remove(broker)
            self._recent.append(broker)
        while len(self._recent) > self.window + 1:
            self._recent.popleft()

    def predict(self, current_broker: str, history: Sequence[str] = ()) -> FrozenSet[str]:
        recent = [broker for broker in self._recent if broker != current_broker]
        return frozenset(recent[-self.window:])


# ----------------------------------------------------------------- evaluation


def coverage_and_cost(
    predictor: MovementPredictor,
    trace: Sequence[str],
    learn: bool = True,
) -> Tuple[float, float]:
    """Replay a broker-level trace through a predictor.

    Returns ``(coverage, mean_shadow_count)`` where *coverage* is the
    fraction of handovers whose target broker was in the predicted shadow
    set at the time of the move, and *mean_shadow_count* is the average
    number of shadows that would have been maintained — the two axes of the
    paper's "as large as necessary, as small as possible" trade-off.
    """
    transitions = [
        (previous, current)
        for previous, current in zip(trace, trace[1:])
        if previous != current
    ]
    if not transitions:
        return 1.0, 0.0
    covered = 0
    shadow_counts: List[int] = []
    for from_broker, to_broker in transitions:
        predicted = predictor.predict(from_broker)
        shadow_counts.append(len(predicted))
        if to_broker in predicted:
            covered += 1
        if learn:
            predictor.observe_handover(from_broker, to_broker)
    return covered / len(transitions), sum(shadow_counts) / len(shadow_counts)
