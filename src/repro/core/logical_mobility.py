"""Basic logical mobility: location-dependent subscriptions without replication.

This module reproduces the *existing* REBECA mechanism the paper builds upon
([5]): a client with location-dependent subscriptions whose ``myloc`` binding
is adapted whenever the client's location changes.  "In the current
implementation, location-awareness is only efficiently supported if client
movements remain within the boundaries of a single border broker.  Whenever a
client leaves this range, the location-dependent subscriptions have to be
re-issued at the next broker the client connects to causing a non-negligible
overhead." (Sect. 1)

:class:`LocationAwareClient` is exactly that baseline: it manages its own
``myloc`` templates, re-binds them on every location change, and re-issues
them from scratch when it is re-attached to a different border broker.  It is
used by experiment E3 (precision of location-dependent delivery) and as the
reactive comparison point for the replicator of experiment E4.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..net.simulator import Simulator
from ..pubsub.client import Client
from ..pubsub.filters import Filter
from ..pubsub.subscription import Subscription
from .location import LocationSpace
from .location_filter import LocationDependentFilter

_binding_counter = itertools.count(1)


class LocationAwareClient(Client):
    """A wired/portable client whose location-dependent subscriptions follow it around.

    The client must be attached to a border broker with the ordinary
    :class:`~repro.pubsub.broker_network.BrokerNetwork` machinery; this class
    only adds the ``myloc`` bookkeeping on top of the plain pub/sub API.
    """

    def __init__(self, sim: Simulator, name: str, space: LocationSpace):
        super().__init__(sim, name)
        self.space = space
        self.location: Optional[str] = None
        self.templates: Dict[str, LocationDependentFilter] = {}
        self._bound_subs: Dict[str, Subscription] = {}
        self.rebinds = 0
        self.reissues = 0
        self.location_trace: List[Tuple[float, str]] = []

    # ---------------------------------------------------------------- templates
    def subscribe_location(
        self, template: LocationDependentFilter, template_id: Optional[str] = None
    ) -> str:
        """Register a location-dependent subscription; bound immediately if a location is known."""
        template_id = template_id or f"tmpl-{next(_binding_counter)}"
        self.templates[template_id] = template
        if self.location is not None:
            self._bind(template_id)
        return template_id

    def unsubscribe_location(self, template_id: str) -> None:
        self.templates.pop(template_id, None)
        bound = self._bound_subs.pop(template_id, None)
        if bound is not None:
            self.unsubscribe(bound)

    # ------------------------------------------------------------------ location
    def set_location(self, location: str) -> None:
        """Logical mobility: adapt every ``myloc`` binding to the new location."""
        if location not in self.space:
            raise KeyError(f"unknown location {location!r}")
        self.location = location
        self.location_trace.append((self.sim.now, location))
        for template_id in self.templates:
            self._bind(template_id)

    def reissue_at(self, border_broker_name: str) -> None:
        """Reactive cross-broker mobility: re-issue every subscription at a new broker.

        The caller is responsible for having wired a link to the new broker
        (see :meth:`repro.pubsub.broker_network.BrokerNetwork.attach_client`);
        this method performs the subscription re-issuing the paper describes
        as the costly part of leaving a border broker's range.
        """
        self.local_broker.connect(border_broker_name, reissue=False)
        self.reissues += 1
        for template_id in list(self.templates):
            self._bind(template_id, force=True)

    # ------------------------------------------------------------------ binding
    def _bind(self, template_id: str, force: bool = False) -> None:
        template = self.templates[template_id]
        assert self.location is not None
        desired: Filter = template.bind_for_location(self.space, self.location)
        current = self._bound_subs.get(template_id)
        if current is not None and current.filter == desired and not force:
            return
        if current is not None:
            self.unsubscribe(current)
        subscription = self.subscribe(
            desired,
            sub_id=f"{self.name}:{template_id}:{next(_binding_counter)}",
            location_dependent=True,
            template=template,
        )
        self._bound_subs[template_id] = subscription
        self.rebinds += 1

    # -------------------------------------------------------------------- stats
    def bound_filters(self) -> List[Filter]:
        return [sub.filter for sub in self._bound_subs.values()]

    def relevant_deliveries(self) -> int:
        """Deliveries that matched the binding for the location the client had at reception time."""
        relevant = 0
        for delivery in self.deliveries:
            location = self._location_at(delivery.received_at)
            if location is None:
                continue
            for template in self.templates.values():
                if template.bind_for_location(self.space, location).matches(delivery.notification):
                    relevant += 1
                    break
        return relevant

    def _location_at(self, time: float) -> Optional[str]:
        location = None
        for timestamp, loc in self.location_trace:
            if timestamp <= time:
                location = loc
            else:
                break
        return location
