"""repro: reproduction of "Dealing with Uncertainty in Mobile Publish/Subscribe Middleware".

The package is organised in four layers:

* :mod:`repro.net` — deterministic discrete-event simulation substrate
  (processes, FIFO links, wireless channels);
* :mod:`repro.pubsub` — the REBECA-style content-based publish/subscribe
  substrate (notifications, filters, routing, brokers, clients);
* :mod:`repro.core` — the paper's contribution: physical mobility
  (relocation), logical mobility (``myloc`` subscriptions), and extended
  logical mobility (the replicator layer with pre-subscriptions, shadow
  virtual clients and buffering policies);
* :mod:`repro.mobility` and :mod:`repro.experiments` — mobility models,
  workload generators, scenario composition and the experiment harness used
  by the benchmark suite.

The most convenient entry point is :class:`repro.core.MobilePubSub`; see
``examples/quickstart.py``.
"""

from . import core, net, pubsub

__version__ = "1.0.0"

__all__ = ["core", "net", "pubsub", "__version__"]
