"""Movement traces: recording, replaying and synthesising broker-level traces.

The uncertainty analysis of Sect. 4 is about *sequences of attachments*: does
the next broker lie inside ``nlb`` of the previous one?  This module provides
the trace plumbing the experiments need — extracting broker traces from
location waypoints, recording the attachments a client actually performed,
replaying a recorded trace deterministically, and generating the synthetic
commuter traces used to evaluate the Markov predictor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.location import LocationSpace
from .models import MobilityModel, Waypoint


@dataclass(frozen=True)
class TraceEntry:
    """One attachment event in a broker-level trace."""

    time: float
    broker: str
    location: Optional[str] = None


class MovementTrace:
    """An ordered sequence of attachment events for one client."""

    def __init__(self, entries: Iterable[TraceEntry] = ()):
        self.entries: List[TraceEntry] = sorted(entries, key=lambda e: e.time)

    # ------------------------------------------------------------------ build
    @classmethod
    def from_waypoints(cls, waypoints: Sequence[Waypoint], space: LocationSpace) -> "MovementTrace":
        entries = [
            TraceEntry(time=w.time, broker=space.broker_of(w.location), location=w.location)
            for w in waypoints
        ]
        return cls(entries)

    @classmethod
    def from_client(cls, client) -> "MovementTrace":
        """Extract the trace a :class:`~repro.core.mobile_client.MobileClient` actually recorded."""
        entries = [TraceEntry(time=t, broker=b) for t, b in client.broker_trace]
        return cls(entries)

    def append(self, entry: TraceEntry) -> None:
        self.entries.append(entry)
        self.entries.sort(key=lambda e: e.time)

    # ------------------------------------------------------------------ views
    def brokers(self) -> List[str]:
        """The broker sequence (consecutive duplicates kept)."""
        return [entry.broker for entry in self.entries]

    def handovers(self) -> List[Tuple[str, str]]:
        """The (from, to) pairs of actual broker changes."""
        result = []
        brokers = self.brokers()
        for previous, current in zip(brokers, brokers[1:]):
            if previous != current:
                result.append((previous, current))
        return result

    def handover_count(self) -> int:
        return len(self.handovers())

    def broker_at(self, time: float) -> Optional[str]:
        broker = None
        for entry in self.entries:
            if entry.time <= time:
                broker = entry.broker
            else:
                break
        return broker

    def duration(self) -> float:
        if not self.entries:
            return 0.0
        return self.entries[-1].time - self.entries[0].time

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


# -------------------------------------------------------------- synthesising


def synthetic_commuter_trace(
    home_broker: str,
    office_broker: str,
    via: Sequence[str] = (),
    days: int = 5,
    day_length: float = 100.0,
    rng: Optional[random.Random] = None,
    detour_brokers: Sequence[str] = (),
    detour_probability: float = 0.1,
) -> MovementTrace:
    """A home -> (via...) -> office -> (via...) -> home pattern, repeated daily.

    With probability ``detour_probability`` a commute inserts a detour broker,
    which gives the Markov predictor something non-trivial to learn while a
    static ``nlb`` keeps paying for neighbours that are almost never used.
    """
    rng = rng or random.Random(11)
    entries: List[TraceEntry] = []
    time = 0.0
    for _day in range(days):
        morning_path = [home_broker, *via, office_broker]
        evening_path = [office_broker, *reversed(list(via)), home_broker]
        for path in (morning_path, evening_path):
            path = list(path)
            if detour_brokers and rng.random() < detour_probability:
                position = rng.randrange(1, len(path))
                path.insert(position, rng.choice(list(detour_brokers)))
            for broker in path:
                entries.append(TraceEntry(time=time, broker=broker))
                time += day_length / (2 * len(path))
    return MovementTrace(entries)


def trace_from_model(
    model: MobilityModel, space: LocationSpace, duration: float, seed: int = 0
) -> MovementTrace:
    """Generate the broker-level trace a mobility model would produce."""
    rng = random.Random(seed)
    return MovementTrace.from_waypoints(model.waypoints(duration, rng), space)


def coverage_against_graph(trace: MovementTrace, graph) -> float:
    """Fraction of the trace's handovers covered by a movement graph's ``nlb``."""
    handovers = trace.handovers()
    if not handovers:
        return 1.0
    covered = sum(1 for previous, current in handovers if current in graph.nlb(previous))
    return covered / len(handovers)
