"""Mobility models: how clients move through the location space.

The paper reasons about "the inherent uncertainty of movement in mobile
systems" (Sect. 3.1) but never fixes a workload; the models below generate
the movement patterns its motivating examples imply:

* :class:`RandomWalkMobility` — a pedestrian wandering between adjacent
  locations (office floor, Fig. 1 right);
* :class:`RoutePathMobility` — a vehicle following a fixed path (the
  "restaurant menus along the route of a car" example);
* :class:`MarkovMobility` — movement with statistical structure (commuting
  between home and office, Fig. 1 left), which the Markov predictor of
  :mod:`repro.core.uncertainty` can learn;
* :class:`TeleportMobility` — power-off periods after which the client "may
  always pop up at any place in the broker network" (Sect. 4), the workload
  for the exception-mode experiment.

A model produces a deterministic list of :class:`Waypoint` objects given a
seeded random generator; :class:`MobilityDriver` schedules the corresponding
``move``/``power_off``/``power_on`` calls on a
:class:`~repro.core.middleware.MobilePubSub` system.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.location import LocationSpace
from ..core.middleware import MobilePubSub
from ..core.mobile_client import MobileClient


@dataclass(frozen=True)
class Waypoint:
    """One step of a movement schedule."""

    time: float
    location: str
    #: True when the client is switched off between the previous waypoint and this one
    after_power_off: bool = False
    #: how long before ``time`` the device powered off (0 = it stayed on while moving)
    offline_before: float = 0.0


class MobilityModel:
    """Generates a deterministic movement schedule for one client."""

    name = "abstract"

    def waypoints(self, duration: float, rng: random.Random) -> List[Waypoint]:
        """Return the waypoints (sorted by time) covering ``[0, duration]``."""
        raise NotImplementedError  # pragma: no cover - interface

    def broker_trace(self, space: LocationSpace, duration: float, rng: random.Random) -> List[str]:
        """Convenience: the broker sequence induced by the movement schedule."""
        return [space.broker_of(w.location) for w in self.waypoints(duration, rng)]


class StaticMobility(MobilityModel):
    """A client that never moves (control case)."""

    name = "static"

    def __init__(self, location: str, start_time: float = 0.0):
        self.location = location
        self.start_time = start_time

    def waypoints(self, duration: float, rng: random.Random) -> List[Waypoint]:
        return [Waypoint(time=self.start_time, location=self.location)]


class RandomWalkMobility(MobilityModel):
    """A random walk over the location space's adjacency graph.

    ``dwell_time`` is the mean time spent at each location; each dwell is
    drawn uniformly from ``[0.5, 1.5] * dwell_time`` to avoid artificial
    synchronisation between clients.  With probability ``stay_probability``
    the client stays where it is for another dwell period.
    """

    name = "random-walk"

    def __init__(
        self,
        space: LocationSpace,
        start: str,
        dwell_time: float = 10.0,
        stay_probability: float = 0.0,
        start_time: float = 0.0,
    ):
        if dwell_time <= 0:
            raise ValueError("dwell_time must be positive")
        self.space = space
        self.start = start
        self.dwell_time = dwell_time
        self.stay_probability = stay_probability
        self.start_time = start_time

    def waypoints(self, duration: float, rng: random.Random) -> List[Waypoint]:
        waypoints = [Waypoint(time=self.start_time, location=self.start)]
        time = self.start_time
        current = self.start
        while True:
            time += self.dwell_time * rng.uniform(0.5, 1.5)
            if time > duration:
                break
            if rng.random() >= self.stay_probability:
                neighbours = sorted(self.space.neighbours_of(current))
                if neighbours:
                    current = rng.choice(neighbours)
            waypoints.append(Waypoint(time=time, location=current))
        return waypoints


class RoutePathMobility(MobilityModel):
    """Follow an explicit path of locations with a fixed dwell time per step.

    ``loop`` makes the path wrap around (a bus line); otherwise the client
    stays at the final location.
    """

    name = "route"

    def __init__(
        self,
        path: Sequence[str],
        dwell_time: float = 10.0,
        start_time: float = 0.0,
        loop: bool = False,
    ):
        if not path:
            raise ValueError("path must contain at least one location")
        if dwell_time <= 0:
            raise ValueError("dwell_time must be positive")
        self.path = list(path)
        self.dwell_time = dwell_time
        self.start_time = start_time
        self.loop = loop

    def waypoints(self, duration: float, rng: random.Random) -> List[Waypoint]:
        waypoints: List[Waypoint] = []
        time = self.start_time
        index = 0
        while time <= duration:
            waypoints.append(Waypoint(time=time, location=self.path[index]))
            time += self.dwell_time
            if index + 1 < len(self.path):
                index += 1
            elif self.loop:
                index = 0
            else:
                break
        return waypoints


class MarkovMobility(MobilityModel):
    """Movement following a first-order Markov chain over locations.

    ``transitions`` maps each location to a distribution over next locations
    (``{location: {next_location: probability}}``); missing mass is assigned
    to staying put.  This is the model that gives movement the statistical
    regularity a learned predictor can exploit (commuting, lunch runs).
    """

    name = "markov"

    def __init__(
        self,
        transitions: Mapping[str, Mapping[str, float]],
        start: str,
        dwell_time: float = 10.0,
        start_time: float = 0.0,
    ):
        self.transitions = {loc: dict(dist) for loc, dist in transitions.items()}
        self.start = start
        self.dwell_time = dwell_time
        self.start_time = start_time

    def waypoints(self, duration: float, rng: random.Random) -> List[Waypoint]:
        waypoints = [Waypoint(time=self.start_time, location=self.start)]
        time = self.start_time
        current = self.start
        while True:
            time += self.dwell_time * rng.uniform(0.8, 1.2)
            if time > duration:
                break
            current = self._next(current, rng)
            waypoints.append(Waypoint(time=time, location=current))
        return waypoints

    def _next(self, current: str, rng: random.Random) -> str:
        distribution = self.transitions.get(current, {})
        roll = rng.random()
        cumulative = 0.0
        for target in sorted(distribution):
            cumulative += distribution[target]
            if roll < cumulative:
                return target
        return current


class TeleportMobility(MobilityModel):
    """Power-off, move arbitrarily far, pop up somewhere else (Sect. 4).

    Each cycle the client stays connected for ``on_time``, powers off for
    ``off_time`` and reappears at a uniformly random location — including
    locations whose broker is *not* a movement-graph neighbour, which is
    exactly the case the exception mode has to handle.
    """

    name = "teleport"

    def __init__(
        self,
        space: LocationSpace,
        start: str,
        on_time: float = 30.0,
        off_time: float = 20.0,
        start_time: float = 0.0,
    ):
        self.space = space
        self.start = start
        self.on_time = on_time
        self.off_time = off_time
        self.start_time = start_time

    def waypoints(self, duration: float, rng: random.Random) -> List[Waypoint]:
        waypoints = [Waypoint(time=self.start_time, location=self.start)]
        time = self.start_time
        locations = self.space.locations
        while True:
            time += self.on_time + self.off_time
            if time > duration:
                break
            target = rng.choice(locations)
            waypoints.append(
                Waypoint(
                    time=time,
                    location=target,
                    after_power_off=True,
                    offline_before=self.off_time,
                )
            )
        return waypoints


class MobilityDriver:
    """Schedules the movement of one mobile client on the simulator.

    The driver translates waypoints into middleware calls: the first waypoint
    becomes the initial :meth:`~repro.core.middleware.MobilePubSub.attach`;
    later waypoints become :meth:`move` calls (or ``power_off``/``power_on``
    pairs when the waypoint is flagged ``after_power_off``).
    """

    def __init__(
        self,
        system: MobilePubSub,
        client: MobileClient,
        model: MobilityModel,
        duration: float,
        rng: Optional[random.Random] = None,
        handover_gap: float = 0.0,
    ):
        self.system = system
        self.client = client
        self.model = model
        self.duration = duration
        self.handover_gap = handover_gap
        self.rng = rng or random.Random(0)
        self.waypoints = self.model.waypoints(duration, self.rng)
        self.moves_executed = 0

    def start(self) -> None:
        """Schedule every waypoint on the system's simulator."""
        if not self.waypoints:
            return
        first, *rest = self.waypoints
        self.system.sim.schedule_at(first.time, self._attach_first, first)
        previous_time = first.time
        for waypoint in rest:
            if waypoint.after_power_off and waypoint.offline_before > 0:
                off_at = max(previous_time + 1e-6, waypoint.time - waypoint.offline_before)
                self.system.sim.schedule_at(off_at, self._power_off)
            self.system.sim.schedule_at(waypoint.time, self._execute, waypoint)
            previous_time = waypoint.time

    def _attach_first(self, waypoint: Waypoint) -> None:
        self.system.attach(self.client, location=waypoint.location)
        self.moves_executed += 1

    def _power_off(self) -> None:
        self.system.power_off(self.client)

    def _execute(self, waypoint: Waypoint) -> None:
        if waypoint.after_power_off:
            if self.client.connected or self.client.current_broker is not None:
                self.system.power_off(self.client)
            self.system.power_on(self.client, waypoint.location)
        else:
            self.system.move(self.client, waypoint.location, gap=self.handover_gap)
        self.moves_executed += 1

    def broker_trace(self) -> List[str]:
        """The broker-level trace implied by the scheduled waypoints."""
        return [self.system.space.broker_of(w.location) for w in self.waypoints]
