"""Scenario composition: topology + location space + middleware + workload + movement.

Experiments and examples repeatedly need the same glue: build a broker
topology matching a location space, stand up the mobility middleware with a
given configuration, deploy publishers, create roaming subscribers driven by
a mobility model, run for a while and evaluate.  :class:`Scenario` bundles
those pieces; the ``build_*_scenario`` functions construct the three settings
the paper's examples describe (office floor, car route, cellular grid).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.location import LocationSpace, cell_grid_space, cell_name, office_floor_space, route_space
from ..core.location_filter import LocationDependentFilter
from ..core.metrics import DeliveryOutcome, evaluate_mobile_delivery
from ..core.middleware import MobilePubSub, MobilitySystemConfig
from ..core.mobile_client import MobileClient
from ..net.simulator import Simulator
from ..pubsub.broker_network import BrokerNetwork, grid_border_topology, line_topology
from .models import MobilityDriver, MobilityModel
from .workload import WorkloadRecorder


@dataclass
class RoamingSubscriber:
    """A mobile client together with its movement driver and subscription template."""

    client: MobileClient
    driver: MobilityDriver
    template: LocationDependentFilter
    template_id: str


@dataclass
class Scenario:
    """A fully wired simulation ready to run."""

    sim: Simulator
    network: BrokerNetwork
    space: LocationSpace
    system: MobilePubSub
    recorder: WorkloadRecorder = field(default_factory=WorkloadRecorder)
    subscribers: List[RoamingSubscriber] = field(default_factory=list)

    # ------------------------------------------------------------------ build
    def add_roaming_subscriber(
        self,
        name: str,
        template: LocationDependentFilter,
        model: MobilityModel,
        duration: float,
        seed: int = 0,
        reissue_on_attach: bool = True,
        handover_gap: float = 0.0,
    ) -> RoamingSubscriber:
        """Create a mobile client subscribing to ``template`` and moving per ``model``."""
        client = self.system.add_mobile_client(name, reissue_on_attach=reissue_on_attach)
        template_id = client.subscribe_location(template)
        driver = MobilityDriver(
            self.system,
            client,
            model,
            duration=duration,
            rng=random.Random(seed),
            handover_gap=handover_gap,
        )
        driver.start()
        subscriber = RoamingSubscriber(
            client=client, driver=driver, template=template, template_id=template_id
        )
        self.subscribers.append(subscriber)
        return subscriber

    # -------------------------------------------------------------------- run
    def run(self, duration: float) -> None:
        """Advance the simulation to ``duration`` and then drain remaining events."""
        self.sim.run(until=duration)
        self.sim.run_until_idle()

    # --------------------------------------------------------------- evaluate
    def evaluate(self, subscriber: RoamingSubscriber) -> DeliveryOutcome:
        """Loss/precision outcome of one roaming subscriber against the recorded workload."""
        return evaluate_mobile_delivery(
            subscriber.client, self.recorder.published, subscriber.template, self.space
        )

    def evaluate_all(self) -> Dict[str, DeliveryOutcome]:
        return {s.client.name: self.evaluate(s) for s in self.subscribers}


# ------------------------------------------------------------------ builders


def build_office_scenario(
    n_rooms: int = 12,
    rooms_per_broker: int = 4,
    config: Optional[MobilitySystemConfig] = None,
    myloc_scope: str = "location",
) -> Scenario:
    """The office floor of Fig. 1: a corridor of rooms over a line of border brokers."""
    sim = Simulator()
    space = office_floor_space(n_rooms, rooms_per_broker, myloc_scope=myloc_scope)
    n_brokers = len(space.brokers())
    network = line_topology(sim, n_brokers)
    system = MobilePubSub(sim, network, space, config=config)
    return Scenario(sim=sim, network=network, space=space, system=system)


def build_route_scenario(
    n_segments: int = 18,
    segments_per_broker: int = 3,
    config: Optional[MobilitySystemConfig] = None,
    myloc_scope: str = "neighbourhood",
) -> Scenario:
    """The car-on-a-route scenario: road segments over a chain of roadside brokers."""
    sim = Simulator()
    space = route_space(n_segments, segments_per_broker, myloc_scope=myloc_scope)
    n_brokers = len(space.brokers())
    network = line_topology(sim, n_brokers)
    system = MobilePubSub(sim, network, space, config=config)
    return Scenario(sim=sim, network=network, space=space, system=system)


def build_grid_scenario(
    rows: int = 4,
    cols: int = 4,
    config: Optional[MobilitySystemConfig] = None,
    region_rows: int = 2,
    myloc_scope: str = "location",
) -> Scenario:
    """A GSM-style cellular grid: one border broker per cell, grid movement graph."""
    sim = Simulator()
    network, cells = grid_border_topology(sim, rows, cols)
    broker_for_cell = {(r, c): cells[(r, c)] for r in range(rows) for c in range(cols)}
    space = cell_grid_space(
        rows, cols, broker_for_cell=broker_for_cell, region_rows=region_rows, myloc_scope=myloc_scope
    )
    system = MobilePubSub(sim, network, space, config=config)
    return Scenario(sim=sim, network=network, space=space, system=system)


def grid_route(rows: int, cols: int, seed: int = 3, length: Optional[int] = None) -> List[str]:
    """A random lawn-mower style path over a cell grid, for route mobility on grids."""
    rng = random.Random(seed)
    path: List[str] = []
    r, c = rng.randrange(rows), rng.randrange(cols)
    length = length or rows * cols
    for _ in range(length):
        path.append(cell_name(r, c))
        moves = []
        if r + 1 < rows:
            moves.append((r + 1, c))
        if r > 0:
            moves.append((r - 1, c))
        if c + 1 < cols:
            moves.append((r, c + 1))
        if c > 0:
            moves.append((r, c - 1))
        r, c = rng.choice(moves)
    return path
