"""Publication workloads: the information sources of the motivating examples.

The paper motivates mobility support with concrete information services:
per-room temperature readings, restaurant menus along a route, the weather of
a region, stock quotes that follow the user from the PC to the PDA.  The
generators below publish exactly those notification streams through ordinary
wired clients attached to the broker covering each location, and record every
published notification so the metrics module has the ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.location import LOCATION_ATTRIBUTE, LocationSpace
from ..core.middleware import MobilePubSub
from ..net.simulator import PeriodicTask, Simulator
from ..pubsub.client import Client
from ..pubsub.notification import Notification


class WorkloadRecorder:
    """Collects every notification published by the workload generators."""

    def __init__(self) -> None:
        self.published: List[Notification] = []

    def record(self, notification: Optional[Notification]) -> None:
        if notification is not None:
            self.published.append(notification)

    def of_service(self, service: str) -> List[Notification]:
        return [n for n in self.published if n.get("service") == service]

    def at_location(self, location: str) -> List[Notification]:
        return [n for n in self.published if n.get(LOCATION_ATTRIBUTE) == location]

    def __len__(self) -> int:
        return len(self.published)


@dataclass
class PublisherHandle:
    """One deployed publisher: the wired client plus its periodic task."""

    client: Client
    task: PeriodicTask
    location: Optional[str]
    service: str

    def stop(self) -> None:
        self.task.stop()


class LocationServicePublishers:
    """A fleet of periodic publishers, one per location, for one service.

    Examples: ``service="temperature"`` publishes a reading per room;
    ``service="restaurant-menu"`` publishes menus per road segment;
    ``service="weather"`` (with ``per_region=True``) publishes one forecast
    per region, tagged with every location of the region in turn.
    """

    def __init__(
        self,
        system: MobilePubSub,
        service: str,
        period: float,
        recorder: WorkloadRecorder,
        locations: Optional[Sequence[str]] = None,
        value_function: Optional[Callable[[str, float], Mapping]] = None,
        rng: Optional[random.Random] = None,
        phase_spread: bool = True,
        until: Optional[float] = None,
    ):
        self.system = system
        self.service = service
        self.period = period
        self.recorder = recorder
        self.until = until
        self.rng = rng or random.Random(7)
        self.value_function = value_function or self._default_value
        self.publishers: List[PublisherHandle] = []
        self.locations = list(locations) if locations is not None else system.space.locations
        self._deploy(phase_spread)

    def _default_value(self, location: str, now: float) -> Mapping:
        return {"value": round(15.0 + 10.0 * self.rng.random(), 2)}

    def _deploy(self, phase_spread: bool) -> None:
        for index, location in enumerate(self.locations):
            client = self.system.add_publisher(f"pub-{self.service}-{location}", location)
            start_delay = (index / max(1, len(self.locations))) * self.period if phase_spread else 0.0
            task = PeriodicTask(
                self.system.sim,
                period=self.period,
                callback=self._publish_callback(client, location),
                start_delay=start_delay,
                until=self.until,
            )
            self.publishers.append(
                PublisherHandle(client=client, task=task, location=location, service=self.service)
            )

    def _publish_callback(self, client: Client, location: str) -> Callable[[], None]:
        def publish() -> None:
            attributes = {
                "service": self.service,
                LOCATION_ATTRIBUTE: location,
            }
            attributes.update(self.value_function(location, self.system.sim.now))
            self.recorder.record(client.publish(attributes))

        return publish

    def stop(self) -> None:
        for handle in self.publishers:
            handle.stop()

    def __len__(self) -> int:
        return len(self.publishers)


class PoissonLocationPublishers(LocationServicePublishers):
    """Like :class:`LocationServicePublishers` but with exponential inter-arrival times."""

    def _deploy(self, phase_spread: bool) -> None:
        for location in self.locations:
            client = self.system.add_publisher(f"pub-{self.service}-{location}", location)
            jitter = self._exponential_jitter()
            task = PeriodicTask(
                self.system.sim,
                period=self.period,
                callback=self._publish_callback(client, location),
                start_delay=self.rng.uniform(0, self.period),
                jitter=jitter,
                until=self.until,
            )
            self.publishers.append(
                PublisherHandle(client=client, task=task, location=location, service=self.service)
            )

    def _exponential_jitter(self) -> Callable[[], float]:
        def jitter() -> float:
            # Turn the fixed period into an exponential inter-arrival with the same mean.
            return self.rng.expovariate(1.0 / self.period) - self.period

        return jitter


class GlobalServicePublisher:
    """A single location-independent publisher (e.g. a stock ticker).

    Used by the physical-mobility experiment: the subscription that must
    survive roaming untouched is precisely one that has nothing to do with
    location.
    """

    def __init__(
        self,
        system: MobilePubSub,
        service: str,
        period: float,
        recorder: WorkloadRecorder,
        broker_name: Optional[str] = None,
        value_function: Optional[Callable[[float], Mapping]] = None,
        symbol: str = "ACME",
        until: Optional[float] = None,
    ):
        self.system = system
        self.service = service
        self.period = period
        self.recorder = recorder
        self.symbol = symbol
        self.value_function = value_function or (lambda now: {"price": round(100 + now % 17, 2)})
        broker = broker_name or system.network.broker_names()[0]
        self.client = system.add_static_client(f"pub-{service}", broker)
        self.sequence = 0
        self.task = PeriodicTask(system.sim, period=period, callback=self._publish, until=until)

    def _publish(self) -> None:
        self.sequence += 1
        attributes = {"service": self.service, "symbol": self.symbol, "seq": self.sequence}
        attributes.update(self.value_function(self.system.sim.now))
        self.recorder.record(self.client.publish(attributes))

    def stop(self) -> None:
        self.task.stop()


class BurstyLocationPublisher:
    """A publisher that emits bursts of notifications at one location.

    Used by the buffering experiments (E7): bursts stress count-based
    policies, long quiet periods stress time-based policies.
    """

    def __init__(
        self,
        system: MobilePubSub,
        service: str,
        location: str,
        recorder: WorkloadRecorder,
        burst_size: int = 5,
        burst_period: float = 20.0,
        intra_burst_gap: float = 0.1,
        until: Optional[float] = None,
    ):
        self.system = system
        self.service = service
        self.location = location
        self.recorder = recorder
        self.burst_size = burst_size
        self.intra_burst_gap = intra_burst_gap
        self.client = system.add_publisher(f"pub-burst-{service}-{location}", location)
        self.bursts_emitted = 0
        self.task = PeriodicTask(system.sim, period=burst_period, callback=self._burst, until=until)

    def _burst(self) -> None:
        self.bursts_emitted += 1
        for i in range(self.burst_size):
            self.system.sim.schedule(i * self.intra_burst_gap, self._publish_one, i)

    def _publish_one(self, index: int) -> None:
        notification = self.client.publish(
            {
                "service": self.service,
                LOCATION_ATTRIBUTE: self.location,
                "burst": self.bursts_emitted,
                "index": index,
            }
        )
        self.recorder.record(notification)

    def stop(self) -> None:
        self.task.stop()


def temperature_workload(
    system: MobilePubSub,
    period: float,
    recorder: Optional[WorkloadRecorder] = None,
    until: Optional[float] = None,
) -> tuple[LocationServicePublishers, WorkloadRecorder]:
    """The office-floor example: one temperature sensor per location."""
    if recorder is None:
        recorder = WorkloadRecorder()
    publishers = LocationServicePublishers(system, "temperature", period, recorder, until=until)
    return publishers, recorder


def restaurant_workload(
    system: MobilePubSub,
    period: float,
    recorder: Optional[WorkloadRecorder] = None,
    until: Optional[float] = None,
) -> tuple[LocationServicePublishers, WorkloadRecorder]:
    """The car-on-a-route example: restaurant menus per road segment."""
    if recorder is None:
        recorder = WorkloadRecorder()

    def menu(location: str, now: float) -> Mapping:
        return {"restaurant": f"diner-{location}", "dish": f"special-{int(now) % 7}"}

    publishers = LocationServicePublishers(
        system, "restaurant-menu", period, recorder, value_function=menu, until=until
    )
    return publishers, recorder


def weather_workload(
    system: MobilePubSub,
    period: float,
    recorder: Optional[WorkloadRecorder] = None,
    until: Optional[float] = None,
) -> tuple[LocationServicePublishers, WorkloadRecorder]:
    """The pervasive example: weather for the region someone is currently located in."""
    if recorder is None:
        recorder = WorkloadRecorder()

    def forecast(location: str, now: float) -> Mapping:
        return {"forecast": "sunny" if int(now) % 2 == 0 else "rain"}

    publishers = LocationServicePublishers(
        system, "weather", period, recorder, value_function=forecast, until=until
    )
    return publishers, recorder


def stock_workload(
    system: MobilePubSub,
    period: float,
    recorder: Optional[WorkloadRecorder] = None,
    until: Optional[float] = None,
) -> tuple[GlobalServicePublisher, WorkloadRecorder]:
    """The location-transparent example: stock quotes followed from PC to PDA."""
    if recorder is None:
        recorder = WorkloadRecorder()
    publisher = GlobalServicePublisher(system, "stock", period, recorder, until=until)
    return publisher, recorder
