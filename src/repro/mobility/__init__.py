"""Mobility models, workloads, traces and scenario composition.

This package provides the evaluation substrate: how clients move (models),
what gets published where (workloads), how movement is recorded and analysed
(traces), and ready-made scenario builders matching the paper's motivating
examples (office floor, car route, cellular grid).
"""

from .handover_workload import (
    HandoverWorkloadResult,
    MobileOutcome,
    cross_check_backends,
    run_handover_workload,
)
from .models import (
    MarkovMobility,
    MobilityDriver,
    MobilityModel,
    RandomWalkMobility,
    RoutePathMobility,
    StaticMobility,
    TeleportMobility,
    Waypoint,
)
from .scenario import (
    RoamingSubscriber,
    Scenario,
    build_grid_scenario,
    build_office_scenario,
    build_route_scenario,
    grid_route,
)
from .trace import (
    MovementTrace,
    TraceEntry,
    coverage_against_graph,
    synthetic_commuter_trace,
    trace_from_model,
)
from .workload import (
    BurstyLocationPublisher,
    GlobalServicePublisher,
    LocationServicePublishers,
    PoissonLocationPublishers,
    PublisherHandle,
    WorkloadRecorder,
    restaurant_workload,
    stock_workload,
    temperature_workload,
    weather_workload,
)

__all__ = [
    "BurstyLocationPublisher",
    "GlobalServicePublisher",
    "HandoverWorkloadResult",
    "LocationServicePublishers",
    "MobileOutcome",
    "cross_check_backends",
    "run_handover_workload",
    "MarkovMobility",
    "MobilityDriver",
    "MobilityModel",
    "MovementTrace",
    "PoissonLocationPublishers",
    "PublisherHandle",
    "RandomWalkMobility",
    "RoamingSubscriber",
    "RoutePathMobility",
    "Scenario",
    "StaticMobility",
    "TeleportMobility",
    "TraceEntry",
    "Waypoint",
    "WorkloadRecorder",
    "build_grid_scenario",
    "build_office_scenario",
    "build_route_scenario",
    "coverage_against_graph",
    "grid_route",
    "restaurant_workload",
    "stock_workload",
    "synthetic_commuter_trace",
    "temperature_workload",
    "trace_from_model",
    "weather_workload",
]
