"""A deterministic roaming workload runnable on any mobility-capable backend.

The cross-check strategy of the transport layer (``tests/test_transport.py``)
extended to the mobility stack: one fixed handover scenario — attach, walk
across the broker line, power off, reappear far away — is executed on both
the deterministic simulator and the asyncio socket backend, and the delivered
``(notification_id, replayed)`` multisets per mobile client must be
*identical*.  Every phase is driven to exact quiescence before the next one
starts, so the only thing allowed to differ between backends is the physical
interleaving of traffic, never the outcome.

The same workload is the substance of ``repro mobility-demo`` and of
``benchmarks/bench_mobility_transport.py``, which records handover latency
and delivery counts per backend.

Scenario shape (``brokers`` = N, locations ``l1..lN`` on a broker line with
chain adjacency, so the NLB movement graph is the line itself):

* ``m-walk`` subscribes a location-dependent ``news`` template plus a plain
  (location-independent) ``alerts`` filter, attaches at ``l1`` and walks
  ``l1 → l2 → … → lN``; at the end it powers off, misses a publish phase,
  and powers back on at ``l1`` — a non-neighbouring broker, exercising the
  paper's Sect. 4 exception mode through the handover request/reply protocol.
* ``m-commute`` subscribes the ``news`` template only and commutes between
  ``l2`` and ``l1`` (the home/office pattern), so some broker always hosts
  both an active virtual client and a buffering shadow.
* after every movement step each location's wired publisher emits
  ``publishes_per_phase`` pinned-id ``news`` notifications and one global
  ``alerts`` notification is published from the last broker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.location import LocationSpace
from ..core.location_filter import MYLOC, location_dependent
from ..core.middleware import MobilePubSub, MobilitySystemConfig
from ..core.mobile_client import MobileClient
from ..pubsub.broker_network import line_topology
from ..pubsub.filters import Equals, Filter
from ..pubsub.notification import Notification


@dataclass
class MobileOutcome:
    """What one mobile client experienced during the workload."""

    name: str
    #: sorted ``(notification_id, replayed)`` pairs, one per delivery —
    #: the multiset compared across backends
    deliveries: List[Tuple[int, bool]]
    live: int
    replayed: int
    duplicates: int
    #: per-attachment setup latency (attach request -> welcome), in the
    #: backend's clock seconds — real seconds on asyncio
    handover_latencies_sec: List[float]


@dataclass
class HandoverWorkloadResult:
    """Outcome of one backend run of the shared handover workload."""

    backend: str
    brokers: int
    publishes_per_phase: int
    clients: List[MobileOutcome] = field(default_factory=list)
    wall_sec: float = 0.0
    published: int = 0
    handovers: int = 0
    exception_activations: int = 0
    shadows_created: int = 0
    control_messages: int = 0
    subscription_messages: int = 0

    def delivered_map(self) -> Dict[str, List[Tuple[int, bool]]]:
        """Per-client delivered multisets, the cross-backend invariant."""
        return {outcome.name: outcome.deliveries for outcome in self.clients}

    def all_handover_latencies(self) -> List[float]:
        return sorted(
            latency for outcome in self.clients for latency in outcome.handover_latencies_sec
        )

    def delivered_total(self) -> int:
        return sum(len(outcome.deliveries) for outcome in self.clients)


def _line_space(brokers: int) -> LocationSpace:
    locations = [f"l{i + 1}" for i in range(brokers)]
    adjacency = {
        location: [n for n in (locations[i - 1] if i else None, locations[i + 1] if i + 1 < brokers else None) if n]
        for i, location in enumerate(locations)
    }
    return LocationSpace(
        {location: f"B{i + 1}" for i, location in enumerate(locations)}, adjacency=adjacency
    )


def run_handover_workload(
    backend: str = "sim",
    brokers: int = 3,
    publishes_per_phase: int = 4,
    predictor: str = "nlb",
    connect_latency: float = 0.01,
) -> HandoverWorkloadResult:
    """Run the fixed handover scenario on one backend and collect the outcome.

    Every notification id is pinned explicitly, every phase runs to exact
    quiescence, and every mutation of the subscription state happens between
    phases — which is what makes the delivered multisets backend-invariant.
    """
    if brokers < 3:
        raise ValueError("the handover workload needs at least 3 brokers")
    locations = [f"l{i + 1}" for i in range(brokers)]
    sim_backend = backend == "sim"
    net = line_topology(
        n_brokers=brokers,
        transport=backend,
        # the simulator keeps its default simulated latencies; on sockets the
        # per-message latency floor would be real waiting, so run at raw speed
        link_latency=0.001 if sim_backend else 0.0,
    )
    config = MobilitySystemConfig(
        predictor=predictor,
        connect_latency=connect_latency,
        wireless_latency=0.002 if sim_backend else 0.0,
    )
    space = _line_space(brokers)
    started = time.perf_counter()
    system = MobilePubSub(None, net, space, config=config)
    result = HandoverWorkloadResult(
        backend=backend, brokers=brokers, publishes_per_phase=publishes_per_phase
    )
    try:
        walker = system.add_mobile_client("m-walk")
        walker.subscribe_location(
            location_dependent({"service": "news", "location": MYLOC}), template_id="t-walk"
        )
        walker.subscribe(Filter([Equals("service", "alerts")]), sub_id="p-alerts")
        commuter = system.add_mobile_client("m-commute")
        commuter.subscribe_location(
            location_dependent({"service": "news", "location": MYLOC}), template_id="t-commute"
        )
        publishers = {
            location: system.add_publisher(f"pub-{location}", location) for location in locations
        }
        alert_publisher = publishers[locations[-1]]

        next_id = [10_000]

        def publish_phase() -> None:
            for location in locations:
                for seq in range(publishes_per_phase):
                    next_id[0] += 1
                    publishers[location].publish(
                        Notification(
                            {"service": "news", "location": location, "seq": seq},
                            notification_id=next_id[0],
                        )
                    )
            next_id[0] += 1
            alert_publisher.publish(
                Notification({"service": "alerts", "level": 1}, notification_id=next_id[0])
            )
            result.published += brokers * publishes_per_phase + 1
            system.run_until_idle()

        system.attach(walker, location=locations[0])
        system.attach(commuter, location=locations[1])
        system.run_until_idle()
        publish_phase()

        # the walk: one handover per line segment, the commuter toggling
        # between its two home locations on every step
        commuter_home = [locations[1], locations[0]]
        for step, target in enumerate(locations[1:]):
            system.move(walker, target)
            system.move(commuter, commuter_home[(step + 1) % 2])
            system.run_until_idle()
            publish_phase()

        # power off at the end of the line, miss a phase, reappear at l1 —
        # a non-neighbouring broker, so this goes through the Sect. 4
        # exception mode (handover request/reply salvages the buffered past)
        system.power_off(walker)
        system.run_until_idle()
        publish_phase()
        system.power_on(walker, locations[0])
        system.run_until_idle()
        publish_phase()

        result.wall_sec = time.perf_counter() - started
        for client in (walker, commuter):
            result.clients.append(_outcome_of(client))
        result.handovers = sum(r.stats.handovers for r in system.replicators.values())
        result.exception_activations = sum(
            r.stats.exception_activations for r in system.replicators.values()
        )
        result.shadows_created = sum(r.stats.shadows_created for r in system.replicators.values())
        result.control_messages = system.control_message_count()
        result.subscription_messages = system.subscription_message_count()
        return result
    finally:
        system.close()


def _outcome_of(client: MobileClient) -> MobileOutcome:
    deliveries = sorted(
        (delivery.notification.notification_id, delivery.replayed)
        for delivery in client.deliveries
    )
    return MobileOutcome(
        name=client.name,
        deliveries=deliveries,
        live=len(client.live_deliveries()),
        replayed=len(client.replayed_deliveries()),
        duplicates=client.duplicate_deliveries(),
        handover_latencies_sec=client.setup_latencies(),
    )


def cross_check_backends(
    backends: Tuple[str, ...] = ("sim", "asyncio"),
    brokers: int = 3,
    publishes_per_phase: int = 4,
    predictor: str = "nlb",
) -> Tuple[Dict[str, HandoverWorkloadResult], List[str]]:
    """Run the workload on every backend and diff the delivered multisets.

    Returns the per-backend results and a (hopefully empty) list of
    mismatch descriptions; the first backend is the reference.
    """
    results = {
        backend: run_handover_workload(
            backend, brokers=brokers, publishes_per_phase=publishes_per_phase, predictor=predictor
        )
        for backend in backends
    }
    reference_name = backends[0]
    reference = results[reference_name].delivered_map()
    mismatches: List[str] = []
    for backend in backends[1:]:
        candidate = results[backend].delivered_map()
        for client_name in sorted(set(reference) | set(candidate)):
            expected = reference.get(client_name, [])
            actual = candidate.get(client_name, [])
            if expected != actual:
                missing = [pair for pair in expected if pair not in actual]
                extra = [pair for pair in actual if pair not in expected]
                mismatches.append(
                    f"{client_name}: {backend} delivered {len(actual)} vs "
                    f"{reference_name} {len(expected)} "
                    f"(missing {missing[:5]}, extra {extra[:5]})"
                )
    return results, mismatches
