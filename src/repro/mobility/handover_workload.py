"""A deterministic roaming workload runnable on any mobility-capable backend.

The cross-check strategy of the transport layer (``tests/test_transport.py``)
extended to the mobility stack: one fixed handover scenario — attach, walk
across the broker line, power off, reappear far away — is executed on both
the deterministic simulator and the asyncio socket backend, and the delivered
``(notification_id, replayed)`` multisets per mobile client must be
*identical*.  Every phase is driven to exact quiescence before the next one
starts, so the only thing allowed to differ between backends is the physical
interleaving of traffic, never the outcome.

The same workload is the substance of ``repro mobility-demo`` and of
``benchmarks/bench_mobility_transport.py``, which records handover latency
and delivery counts per backend.

Scenario shape (``brokers`` = N, locations ``l1..lN`` on a broker line with
chain adjacency, so the NLB movement graph is the line itself):

* ``m-walk`` subscribes a location-dependent ``news`` template plus a plain
  (location-independent) ``alerts`` filter, attaches at ``l1`` and walks
  ``l1 → l2 → … → lN``; at the end it powers off, misses a publish phase,
  and powers back on at ``l1`` — a non-neighbouring broker, exercising the
  paper's Sect. 4 exception mode through the handover request/reply protocol.
* ``m-commute`` subscribes the ``news`` template only and commutes between
  ``l2`` and ``l1`` (the home/office pattern), so some broker always hosts
  both an active virtual client and a buffering shadow.
* after every movement step each location's wired publisher emits
  ``publishes_per_phase`` pinned-id ``news`` notifications and one global
  ``alerts`` notification is published from the last broker.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.location import LocationSpace
from ..core.location_filter import MYLOC, location_dependent
from ..core.middleware import MobilePubSub, MobilitySystemConfig
from ..core.mobile_client import MobileClient
from ..pubsub.broker_network import line_topology
from ..pubsub.filters import Equals, Filter
from ..pubsub.notification import Notification


@dataclass(frozen=True)
class WorkloadSpec:
    """The scenario family the fixed handover workload generalises into.

    The legacy storyline is the all-defaults member: one walker, one
    commuter, deterministic walk order, no churn, no spikes — and with
    ``seed=None`` the RNG is *never constructed*, so the default spec is
    byte-identical to the historical fixed workload (its pinned delivery
    multisets are regression-locked by the mobility tests and
    ``BENCH_mobility``).  A non-``None`` seed turns every knob into a draw:
    walk order becomes a random walk over the location adjacency (randomized
    handover interleavings), extra walkers/commuters roam concurrently,
    ``churn_rate`` toggles the walkers' location-independent ``alerts``
    subscription between phases (covering churn across handovers), and
    ``spike_rate``/``spike_factor`` multiply publish phases.  Everything is
    a pure function of the seed, so any cross-backend divergence found in CI
    is replayable from the seed alone.
    """

    brokers: int = 3
    publishes_per_phase: int = 4
    predictor: str = "nlb"
    connect_latency: float = 0.01
    walkers: int = 1
    commuters: int = 1
    churn_rate: float = 0.0
    spike_rate: float = 0.0
    spike_factor: int = 3
    seed: Optional[int] = None

    @property
    def randomized(self) -> bool:
        return self.seed is not None

    @classmethod
    def draw(cls, seed: int) -> "WorkloadSpec":
        """Draw a spec from ``seed`` — deterministically, any machine."""
        rng = random.Random(seed)
        return cls(
            brokers=rng.randint(3, 5),
            publishes_per_phase=rng.randint(2, 4),
            predictor=rng.choice(("nlb", "nlb-2", "flooding")),
            walkers=rng.randint(1, 2),
            commuters=rng.randint(1, 2),
            churn_rate=rng.choice((0.0, 0.25, 0.5)),
            spike_rate=rng.choice((0.0, 0.25)),
            spike_factor=rng.randint(2, 3),
            seed=seed,
        )


@dataclass
class MobileOutcome:
    """What one mobile client experienced during the workload."""

    name: str
    #: sorted ``(notification_id, replayed)`` pairs, one per delivery —
    #: the multiset compared across backends
    deliveries: List[Tuple[int, bool]]
    live: int
    replayed: int
    duplicates: int
    #: per-attachment setup latency (attach request -> welcome), in the
    #: backend's clock seconds — real seconds on asyncio
    handover_latencies_sec: List[float]


@dataclass
class HandoverWorkloadResult:
    """Outcome of one backend run of the shared handover workload."""

    backend: str
    brokers: int
    publishes_per_phase: int
    clients: List[MobileOutcome] = field(default_factory=list)
    wall_sec: float = 0.0
    published: int = 0
    handovers: int = 0
    exception_activations: int = 0
    shadows_created: int = 0
    control_messages: int = 0
    subscription_messages: int = 0
    #: the spec seed this run replayed (None = the legacy fixed scenario)
    seed: Optional[int] = None

    def delivered_map(self) -> Dict[str, List[Tuple[int, bool]]]:
        """Per-client delivered multisets, the cross-backend invariant."""
        return {outcome.name: outcome.deliveries for outcome in self.clients}

    def all_handover_latencies(self) -> List[float]:
        return sorted(
            latency for outcome in self.clients for latency in outcome.handover_latencies_sec
        )

    def delivered_total(self) -> int:
        return sum(len(outcome.deliveries) for outcome in self.clients)


def _line_space(brokers: int) -> LocationSpace:
    locations = [f"l{i + 1}" for i in range(brokers)]
    adjacency = {
        location: [
            n
            for n in (
                locations[i - 1] if i else None,
                locations[i + 1] if i + 1 < brokers else None,
            )
            if n
        ]
        for i, location in enumerate(locations)
    }
    return LocationSpace(
        {location: f"B{i + 1}" for i, location in enumerate(locations)}, adjacency=adjacency
    )


def run_handover_workload(
    backend: str = "sim",
    brokers: int = 3,
    publishes_per_phase: int = 4,
    predictor: str = "nlb",
    connect_latency: float = 0.01,
    spec: Optional[WorkloadSpec] = None,
    codec=None,
    config=None,
) -> HandoverWorkloadResult:
    """Run one member of the handover scenario family on one backend.

    With ``spec=None`` (or the default :class:`WorkloadSpec`) this is the
    historical fixed scenario, operation for operation.  A ``spec`` with a
    seed replays the drawn member deterministically: every notification id
    is pinned, every phase runs to exact quiescence, and every mutation of
    the subscription state happens between phases — which is what makes the
    delivered multisets backend-invariant for *any* member of the family.

    ``config`` is an optional :class:`~repro.config.SystemConfig` carrying
    the fabric knobs (matcher, advertising, codec, ...); its ``transport``
    field is overridden by ``backend``.  Mutually exclusive with the legacy
    ``codec=`` kwarg.
    """
    if spec is None:
        spec = WorkloadSpec(
            brokers=brokers,
            publishes_per_phase=publishes_per_phase,
            predictor=predictor,
            connect_latency=connect_latency,
        )
    brokers, publishes_per_phase = spec.brokers, spec.publishes_per_phase
    if brokers < 3:
        raise ValueError("the handover workload needs at least 3 brokers")
    # the RNG only exists for randomized specs: the legacy default must not
    # consult it anywhere, so its pinned multisets stay byte-identical
    rng = random.Random(spec.seed) if spec.randomized else None
    locations = [f"l{i + 1}" for i in range(brokers)]
    sim_backend = backend == "sim"
    if config is not None:
        if codec is not None:
            raise ValueError("pass the codec inside config=, not alongside it")
        net = line_topology(
            n_brokers=brokers,
            # the simulator keeps its default simulated latencies; on sockets
            # the per-message latency floor would be real waiting, so run at
            # raw speed
            link_latency=0.001 if sim_backend else 0.0,
            config=config.replace(transport=backend),
        )
    else:
        net = line_topology(
            n_brokers=brokers,
            transport=backend,
            link_latency=0.001 if sim_backend else 0.0,
            codec=codec,
        )
    mobility_config = MobilitySystemConfig(
        predictor=spec.predictor,
        connect_latency=spec.connect_latency,
        wireless_latency=0.002 if sim_backend else 0.0,
        system=net.config,
    )
    space = _line_space(brokers)
    started = time.perf_counter()
    system = MobilePubSub(None, net, space, config=mobility_config)
    result = HandoverWorkloadResult(
        backend=backend,
        brokers=brokers,
        publishes_per_phase=publishes_per_phase,
        seed=spec.seed,
    )
    try:
        walkers: List[MobileClient] = []
        alerts_state: Dict[str, Tuple[bool, int]] = {}  # name -> (subscribed, serial)
        for index in range(spec.walkers):
            suffix = "" if index == 0 else str(index + 1)
            walker = system.add_mobile_client(f"m-walk{suffix}")
            walker.subscribe_location(
                location_dependent({"service": "news", "location": MYLOC}),
                template_id=f"t-walk{suffix}",
            )
            walker.subscribe(
                Filter([Equals("service", "alerts")]), sub_id=f"p-alerts{suffix}-0"
            )
            alerts_state[walker.name] = (True, 0)
            walkers.append(walker)
        commuters: List[MobileClient] = []
        for index in range(spec.commuters):
            suffix = "" if index == 0 else str(index + 1)
            commuter = system.add_mobile_client(f"m-commute{suffix}")
            commuter.subscribe_location(
                location_dependent({"service": "news", "location": MYLOC}),
                template_id=f"t-commute{suffix}",
            )
            commuters.append(commuter)
        publishers = {
            location: system.add_publisher(f"pub-{location}", location) for location in locations
        }
        alert_publisher = publishers[locations[-1]]

        next_id = [10_000]

        def publish_phase() -> None:
            count = publishes_per_phase
            if rng is not None and rng.random() < spec.spike_rate:
                count *= spec.spike_factor
            for location in locations:
                for seq in range(count):
                    next_id[0] += 1
                    publishers[location].publish(
                        Notification(
                            {"service": "news", "location": location, "seq": seq},
                            notification_id=next_id[0],
                        )
                    )
            next_id[0] += 1
            alert_publisher.publish(
                Notification({"service": "alerts", "level": 1}, notification_id=next_id[0])
            )
            result.published += brokers * count + 1
            system.run_until_idle()

        def churn_alerts(walker: MobileClient) -> None:
            subscribed, serial = alerts_state[walker.name]
            suffix = "" if walker is walkers[0] else str(walkers.index(walker) + 1)
            if subscribed:
                walker.unsubscribe(f"p-alerts{suffix}-{serial}")
            else:
                serial += 1
                walker.subscribe(
                    Filter([Equals("service", "alerts")]), sub_id=f"p-alerts{suffix}-{serial}"
                )
            alerts_state[walker.name] = (not subscribed, serial)

        walker_at: Dict[str, str] = {}
        for walker in walkers:
            system.attach(walker, location=locations[0])
            walker_at[walker.name] = locations[0]
        commuter_homes: Dict[str, List[str]] = {}
        for index, commuter in enumerate(commuters):
            homes = [locations[(index + 1) % brokers], locations[index % brokers]]
            system.attach(commuter, location=homes[0])
            commuter_homes[commuter.name] = homes
        system.run_until_idle()
        publish_phase()

        # the walk: one handover per line segment — in fixed order for the
        # legacy scenario, a seeded random walk over the location adjacency
        # for drawn specs — with every commuter toggling between its two
        # home locations on every step
        for step in range(brokers - 1):
            for walker in walkers:
                if rng is None:
                    target = locations[step + 1]
                else:
                    target = rng.choice(sorted(space.neighbours_of(walker_at[walker.name])))
                system.move(walker, target)
                walker_at[walker.name] = target
            for commuter in commuters:
                homes = commuter_homes[commuter.name]
                system.move(commuter, homes[(step + 1) % 2])
            if rng is not None:
                for walker in walkers:
                    if rng.random() < spec.churn_rate:
                        churn_alerts(walker)
            system.run_until_idle()
            publish_phase()

        # power off at the end of the walk, miss a phase, reappear at l1 —
        # for the legacy walker a non-neighbouring broker, so this goes
        # through the Sect. 4 exception mode (handover request/reply
        # salvages the buffered past)
        system.power_off(walkers[0])
        system.run_until_idle()
        publish_phase()
        system.power_on(walkers[0], locations[0])
        system.run_until_idle()
        publish_phase()

        result.wall_sec = time.perf_counter() - started
        for client in walkers + commuters:
            result.clients.append(_outcome_of(client))
        result.handovers = sum(r.stats.handovers for r in system.replicators.values())
        result.exception_activations = sum(
            r.stats.exception_activations for r in system.replicators.values()
        )
        result.shadows_created = sum(r.stats.shadows_created for r in system.replicators.values())
        result.control_messages = system.control_message_count()
        result.subscription_messages = system.subscription_message_count()
        return result
    finally:
        system.close()


def _outcome_of(client: MobileClient) -> MobileOutcome:
    deliveries = sorted(
        (delivery.notification.notification_id, delivery.replayed)
        for delivery in client.deliveries
    )
    return MobileOutcome(
        name=client.name,
        deliveries=deliveries,
        live=len(client.live_deliveries()),
        replayed=len(client.replayed_deliveries()),
        duplicates=client.duplicate_deliveries(),
        handover_latencies_sec=client.setup_latencies(),
    )


def cross_check_backends(
    backends: Tuple[str, ...] = ("sim", "asyncio"),
    brokers: int = 3,
    publishes_per_phase: int = 4,
    predictor: str = "nlb",
    spec: Optional[WorkloadSpec] = None,
    codec=None,
    config=None,
) -> Tuple[Dict[str, HandoverWorkloadResult], List[str]]:
    """Run one family member on every backend and diff the delivered multisets.

    Returns the per-backend results and a (hopefully empty) list of
    mismatch descriptions; the first backend is the reference.  Pass a drawn
    :class:`WorkloadSpec` to cross-check a randomized member instead of the
    legacy fixed scenario, and/or a :class:`~repro.config.SystemConfig` to
    cross-check under specific fabric knobs (each backend run overrides its
    ``transport`` field).
    """
    results = {
        backend: run_handover_workload(
            backend,
            brokers=brokers,
            publishes_per_phase=publishes_per_phase,
            predictor=predictor,
            spec=spec,
            codec=codec,
            config=config,
        )
        for backend in backends
    }
    reference_name = backends[0]
    reference = results[reference_name].delivered_map()
    mismatches: List[str] = []
    for backend in backends[1:]:
        candidate = results[backend].delivered_map()
        for client_name in sorted(set(reference) | set(candidate)):
            expected = reference.get(client_name, [])
            actual = candidate.get(client_name, [])
            if expected != actual:
                missing = [pair for pair in expected if pair not in actual]
                extra = [pair for pair in actual if pair not in expected]
                mismatches.append(
                    f"{client_name}: {backend} delivered {len(actual)} vs "
                    f"{reference_name} {len(expected)} "
                    f"(missing {missing[:5]}, extra {extra[:5]})"
                )
    return results, mismatches
