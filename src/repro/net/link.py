"""Point-to-point FIFO links between simulated processes.

Section 2 of the paper requires that "messages are delivered in FIFO order on
each link" and that the communication links are point-to-point.  A
:class:`Link` models a bidirectional connection between two processes with a
fixed one-way latency; delivery order on each direction is FIFO even if the
latency were to change mid-flight, because each direction tracks the earliest
time the next message may be delivered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .process import LinkEndpoint, Message, Process
from .simulator import Simulator


@dataclass
class LinkStats:
    """Per-direction traffic counters, used by the bandwidth/overhead metrics."""

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, message: Message) -> None:
        self.messages += 1
        self.bytes += message.size()
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1

    def record_drop(self) -> None:
        self.dropped += 1


class _DirectedEndpoint(LinkEndpoint):
    """The sending side of one direction of a link."""

    def __init__(self, link: "Link", source: Process, target: Process):
        self.link = link
        self.source = source
        self.target = target
        self.stats = LinkStats()
        # earliest simulated time at which the next message may arrive,
        # maintained to preserve FIFO order regardless of latency changes.
        self._next_delivery_floor = 0.0

    def transmit(self, message: Message) -> None:
        link = self.link
        if not link.up:
            self.stats.record_drop()
            link.on_drop(message, self.source, self.target)
            return
        self.stats.record(message)
        sim = link.sim
        arrival = sim.now + link.latency
        if arrival < self._next_delivery_floor:
            arrival = self._next_delivery_floor
        self._next_delivery_floor = arrival
        sim.schedule_at(arrival, self._deliver, message)

    def transmit_many(self, messages: list[Message]) -> None:
        """Transmit a burst of messages as ONE scheduled delivery event.

        FIFO order within the burst (and relative to earlier traffic) is
        preserved: all messages share the same arrival time, which also
        becomes the delivery floor for later traffic.
        """
        link = self.link
        if not link.up:
            for message in messages:
                self.stats.record_drop()
                link.on_drop(message, self.source, self.target)
            return
        for message in messages:
            self.stats.record(message)
        sim = link.sim
        arrival = sim.now + link.latency
        if arrival < self._next_delivery_floor:
            arrival = self._next_delivery_floor
        self._next_delivery_floor = arrival
        sim.schedule_at(arrival, self._deliver_many, tuple(messages))

    def _deliver(self, message: Message) -> None:
        if not self.link.up and not self.link.deliver_in_flight_on_down:
            self.stats.record_drop()
            self.link.on_drop(message, self.source, self.target)
            return
        self.target.deliver(message)

    def _deliver_many(self, messages: tuple[Message, ...]) -> None:
        for message in messages:
            self._deliver(message)


class Link:
    """A bidirectional point-to-point FIFO link between two processes.

    Parameters
    ----------
    sim:
        The simulator carrying delivery events.
    a, b:
        The two endpoint processes.  Both get an endpoint attached under the
        other's name, so ``a.send(b.name, msg)`` works immediately.
    latency:
        One-way delivery latency in simulated seconds.
    deliver_in_flight_on_down:
        If ``True`` (default), messages already in flight when the link goes
        down are still delivered (models buffered TCP segments); if ``False``
        they are dropped.
    """

    def __init__(
        self,
        sim: Simulator,
        a: Process,
        b: Process,
        latency: float = 0.001,
        deliver_in_flight_on_down: bool = True,
    ):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.up = True
        self.deliver_in_flight_on_down = deliver_in_flight_on_down
        self._a_to_b = _DirectedEndpoint(self, a, b)
        self._b_to_a = _DirectedEndpoint(self, b, a)
        a.attach_link(b.name, self._a_to_b)
        b.attach_link(a.name, self._b_to_a)

    # ------------------------------------------------------------------ state
    def set_up(self, up: bool) -> None:
        """Bring the link up or down (fault injection / disconnection)."""
        self.up = up

    def disconnect(self) -> None:
        """Tear the link down and detach both endpoints."""
        self.up = False
        self.a.detach_link(self.b.name)
        self.b.detach_link(self.a.name)

    def reconnect(self) -> None:
        """Re-attach both endpoints and bring the link up."""
        self.up = True
        self.a.attach_link(self.b.name, self._a_to_b)
        self.b.attach_link(self.a.name, self._b_to_a)

    def abandon(self) -> None:
        """Tear down a link that lost an attachment race.

        Unlike :meth:`disconnect`, which detaches whatever endpoint is
        registered under the peer names, this removes only entries this
        link actually owns — a rival link established concurrently between
        the same processes may have re-registered those names, and its
        attachment must survive.
        """
        self.up = False
        for owner, peer_name, endpoint in (
            (self.a, self.b.name, self._a_to_b),
            (self.b, self.a.name, self._b_to_a),
        ):
            if owner.links.get(peer_name) is endpoint:
                owner.detach_link(peer_name)

    # ------------------------------------------------------------------ stats
    @property
    def stats_a_to_b(self) -> LinkStats:
        return self._a_to_b.stats

    @property
    def stats_b_to_a(self) -> LinkStats:
        return self._b_to_a.stats

    def total_messages(self) -> int:
        """Total messages transmitted in either direction."""
        return self._a_to_b.stats.messages + self._b_to_a.stats.messages

    def total_bytes(self) -> int:
        """Total abstract bytes transmitted in either direction."""
        return self._a_to_b.stats.bytes + self._b_to_a.stats.bytes

    def messages_of_kind(self, kind: str) -> int:
        return self._a_to_b.stats.by_kind.get(kind, 0) + self._b_to_a.stats.by_kind.get(kind, 0)

    # ------------------------------------------------------------------ hooks
    def on_drop(self, message: Message, source: Process, target: Process) -> None:
        """Hook invoked when a message is dropped; overridden in tests if needed."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"Link({self.a.name}<->{self.b.name}, latency={self.latency}, {state})"


class Network:
    """A registry of processes and the links between them.

    This is a convenience container used by topology builders and by the
    metric collectors (which need to iterate over all links to sum up
    control-message overhead).

    Links are created through the network's :class:`~repro.net.transport.
    Transport` backend, so the same registry works on the deterministic
    simulator (the default — pass a :class:`Simulator` as before) or on real
    asyncio sockets (pass ``transport=AsyncioTransport()`` or
    ``transport="asyncio"``).
    """

    def __init__(self, sim: Optional[Simulator] = None, transport=None, codec=None):
        from .transport import make_transport  # local: transport imports Link

        self.transport = make_transport(transport, sim=sim, codec=codec)
        self.processes: Dict[str, Process] = {}
        self.links: list = []

    @property
    def sim(self):
        """The backend's clock — the actual :class:`Simulator` on the sim backend."""
        return self.transport.clock

    def add_process(self, process: Process) -> Process:
        if process.name in self.processes:
            raise ValueError(f"duplicate process name {process.name!r}")
        self.processes[process.name] = process
        return process

    def get(self, name: str) -> Process:
        return self.processes[name]

    def connect(self, a: str, b: str, latency: float = 0.001):
        """Create (and register) a link between two already-added processes."""
        link = self.transport.make_link(self.processes[a], self.processes[b], latency=latency)
        self.links.append(link)
        return link

    def link_between(self, a: str, b: str) -> Optional[Link]:
        for link in self.links:
            names = {link.a.name, link.b.name}
            if names == {a, b}:
                return link
        return None

    def total_messages(self, kind: Optional[str] = None) -> int:
        """Total messages across all links, optionally restricted to one kind."""
        if kind is None:
            return sum(link.total_messages() for link in self.links)
        return sum(link.messages_of_kind(kind) for link in self.links)

    def total_bytes(self) -> int:
        return sum(link.total_bytes() for link in self.links)
