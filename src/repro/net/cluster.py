"""Multi-process cluster runner: one OS process per broker.

PR 3 proved the wire seam works — the whole pub/sub stack runs over real
localhost TCP sockets — but every broker still shared one Python process and
one GIL.  This module shards the broker graph across *spawned OS processes*,
the deployment shape of the paper's original REBECA testbed (Java broker
processes on separate hosts):

* each broker runs in its own child process (``python -m
  repro.net.cluster_node '<json spec>'``) hosting a TCP server; links
  between brokers are duplex TCP connections carrying the same
  length-prefixed wire frames
  (:mod:`repro.net.wire`) as the in-process asyncio backend;
* the parent process runs a :class:`~repro.net.registry.RegistryServer` for
  broker discovery (name -> host:port), the boot readiness barrier, counter
  polling and orderly shutdown;
* client processes attach *by name*: the parent resolves a broker through
  the registry and dials it, so publishers/subscribers never hardcode
  addresses.

Topology on the parent side is declared exactly like on the other backends —
``BrokerNetwork(transport="cluster")`` or any topology builder with
``transport="cluster"`` — except that :meth:`ClusterTransport.build_broker`
returns a :class:`RemoteBroker` proxy instead of an in-process
:class:`~repro.pubsub.broker.Broker`.  The first client attachment (or an
explicit :meth:`ClusterTransport.boot`) freezes the broker topology, spawns
the children and waits for the readiness barrier.

Failure semantics: a broker child that hits an internal error exits with a
non-zero code; the parent polls child liveness during boot and on every
``run_until_idle`` tick and raises :class:`ClusterError` naming the dead
broker and its exit code.  A child whose registry control channel hits EOF
(the parent died) shuts itself down, so no orphan broker processes are left
behind.

Quiescence: the parent cannot observe in-flight frames inside other
processes, so ``run_until_idle`` polls the message counters of every broker
child (over the registry control channels) together with the local clients'
counters, and declares the cluster idle once two consecutive poll rounds
return *identical* counter vectors whose global sent and received totals
are *equal*.  This is exact, not heuristic: every transmitted message is
counted by its sender before it leaves and by exactly one receiver when it
has been fully handled, so a message in flight (socket buffer, starved
reader) keeps ``sent > received``; and because counters are monotone, a
send missed by one poll round would change the next round's vector.  No
settle window is needed, which keeps the fixed cost of a drain to a couple
of millisecond-scale poll rounds.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from ..obs.metrics import NULL_COUNTER, NULL_HISTOGRAM
from . import wire
from .link import LinkStats
from .process import LinkEndpoint, Message, Process
from .registry import (
    FrameChannel,
    RegistryError,
    RegistryServer,
    lookup,
    register_node,
    report_ready,
)
from .transport import (
    FAULT_ACTIONS,
    RUNTIME_KNOBS,
    AsyncioClock,
    Transport,
    TransportError,
)
from .wire import FrameDecoder


class ClusterError(TransportError):
    """Raised on cluster boot failures, broker crashes, or protocol misuse."""


# ---------------------------------------------------------------- endpoints


class _RemoteEndpoint(LinkEndpoint):
    """The sending half of a cross-process link: frames onto a TCP writer.

    Used on both sides — broker children write towards their peers, the
    parent's clients write towards their border broker.  The receiving side
    is a plain reader loop feeding :class:`~repro.net.wire.FrameDecoder`.

    Frames are *batched*: ``transmit`` appends to a per-endpoint buffer and
    the owner flushes it once per dispatch burst (a child after processing
    one socket read, the parent when it starts driving its loop).  A
    pipelined stream of messages thus costs one ``write`` syscall per burst
    instead of one per message — on a single core this batching, not
    parallelism, is what lets the cluster outpace the in-process asyncio
    backend.
    """

    shares_fanout = True

    __slots__ = (
        "writer",
        "peer",
        "stats",
        "codec",
        "_buffer",
        "flush_cap",
        "frames",
        "wire_bytes",
        "write_sizes",
    )

    def __init__(self, writer: asyncio.StreamWriter, peer: str, codec: "wire.Codec | None" = None):
        self.writer = writer
        self.peer = peer
        self.stats = LinkStats()
        self.codec = wire.get_codec(codec)
        self._buffer = bytearray()
        #: buffer size that triggers an early flush mid-burst (``None`` = only
        #: flush at burst boundaries); retuned live via the ``configure`` op
        self.flush_cap: Optional[int] = None
        # live wire instruments, bound by the owner from its metrics registry;
        # the null singletons make the hot path branch-free when metrics are off
        self.frames = NULL_COUNTER
        self.wire_bytes = NULL_COUNTER
        self.write_sizes = NULL_HISTOGRAM

    def transmit(self, message: Message) -> None:
        if self.writer.is_closing():
            self.stats.record_drop()
            return
        self.stats.record(message)
        frame = self.codec.frame_message(message)
        self._buffer += frame
        self.frames.inc()
        self.wire_bytes.inc(len(frame))
        if self.flush_cap is not None and len(self._buffer) >= self.flush_cap:
            self.flush()

    def transmit_many(self, messages: List[Message]) -> None:
        if self.writer.is_closing():
            for _ in messages:
                self.stats.record_drop()
            return
        frame_message = self.codec.frame_message
        for message in messages:
            self.stats.record(message)
            frame = frame_message(message)
            self._buffer += frame
            self.frames.inc()
            self.wire_bytes.inc(len(frame))
        if self.flush_cap is not None and len(self._buffer) >= self.flush_cap:
            self.flush()

    def flush(self) -> None:
        """Hand every buffered frame to the socket in one write."""
        if not self._buffer:
            return
        if not self.writer.is_closing():
            self.writer.write(bytes(self._buffer))
            self.write_sizes.observe(len(self._buffer))
        self._buffer.clear()


def _stats_payload(stats: LinkStats) -> Dict[str, Any]:
    return {
        "messages": stats.messages,
        "bytes": stats.bytes,
        "dropped": stats.dropped,
        "by_kind": dict(stats.by_kind),
    }


# ------------------------------------------------------------- child process


class _NodeClock:
    """Minimal Simulator-compatible clock for a broker child's event loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._t0 = loop.time()

    @property
    def now(self) -> float:
        return self._loop.time() - self._t0

    def schedule(self, delay: float, callback, *args):
        return self._loop.call_later(max(0.0, delay), callback, *args)

    def schedule_at(self, time: float, callback, *args):
        return self.schedule(time - self.now, callback, *args)

    def call_now(self, callback, *args):
        return self.schedule(0.0, callback, *args)


class _BrokerNode:
    """One broker, hosted in its own OS process.

    Lifecycle: start the TCP server -> register with the registry -> dial
    the peers this node initiates -> wait for the peers that dial us ->
    report ready -> answer control requests (stats/shutdown) until told to
    stop or the parent disappears.
    """

    LINK_SETUP_TIMEOUT = 30.0
    #: first retry pause when dialling a peer that is not accepting yet
    DIAL_RETRY_BASE = 0.05
    #: upper bound on the exponential backoff between dial retries
    DIAL_RETRY_CAP = 2.0

    def __init__(self, spec: Dict[str, Any]):
        self.spec = spec
        self.name: str = spec["name"]
        self.host: str = spec.get("host", "127.0.0.1")
        self.registry_address: Tuple[str, int] = tuple(spec["registry"])
        #: the wire codec every link of this node speaks (handshake-checked)
        self.codec = wire.get_codec(spec.get("codec"))
        #: a restarted node re-synchronises routing state over every link it
        #: (re-)establishes, instead of assuming the peers' tables are fresh
        self.resync_on_connect: bool = bool(spec.get("resync", False))
        #: control-plane knobs shipped in the spec by :class:`SystemConfig`
        #: (absent when the parent used legacy kwargs; defaults apply then)
        self.config: Dict[str, Any] = dict(spec.get("config") or {})
        self.flush_cap: Optional[int] = self.config.get("flush_cap")
        self.metrics = None
        self.broker = None
        self.failure: Optional[BaseException] = None
        self.stop = asyncio.Event()
        self._accept_pending: Set[str] = set(spec.get("accept", ()))
        self._accept_seen = asyncio.Event()
        self._writers: List[asyncio.StreamWriter] = []
        self._tasks: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        # dial-retry jitter comes from a private, name-seeded RNG: broker
        # children must never mutate the module-level ``random`` state (the
        # chaos fuzzer's seeded schedules rely on nobody sharing that dice)
        self._rng = random.Random(f"dial-jitter:{self.name}")

    def _fail(self, exc: BaseException) -> None:
        if self.failure is None:
            self.failure = exc
        self.stop.set()

    # ------------------------------------------------------------ link traffic
    def _make_endpoint(self, writer: asyncio.StreamWriter, peer: str) -> _RemoteEndpoint:
        """Build an outbound endpoint wired to this node's knobs and metrics."""
        endpoint = _RemoteEndpoint(writer, peer, self.codec)
        endpoint.flush_cap = self.flush_cap
        if self.metrics is not None:
            endpoint.frames = self.metrics.counter("transport.frames_sent")
            endpoint.wire_bytes = self.metrics.counter("transport.bytes_sent")
            endpoint.write_sizes = self.metrics.histogram("transport.socket_write_bytes")
        return endpoint

    def _flush_endpoints(self) -> None:
        """Write out every frame the last dispatch burst buffered."""
        for endpoint in self.broker.links.values():
            if isinstance(endpoint, _RemoteEndpoint):
                endpoint.flush()

    async def _read_link(
        self,
        reader: asyncio.StreamReader,
        decoder: FrameDecoder,
        peer: Optional[str] = None,
        endpoint: Optional[_RemoteEndpoint] = None,
    ) -> None:
        """The receive hot path: decode frames, hand messages to the broker.

        Deliberately synchronous per message (no per-frame coroutine, no
        shared in-flight counters): a burst read is decoded and routed in
        one tight loop, then every outbound endpoint is flushed once — the
        forwards of a whole burst leave in one write.  This lean path is
        what lets a broker child outpace the single-process asyncio backend
        even before multi-core parallelism.

        ``peer``/``endpoint`` identify the link this loop serves, so that a
        crash of the remote end (EOF, TCP reset) can be reported to the
        broker as a lost link rather than silently ignored.
        """
        deliver = self.broker.deliver
        decode = self.codec.decode_message
        lost = False
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    lost = True
                    break
                for body in decoder.feed(data):
                    deliver(decode(body))
                self._flush_endpoints()
        except ConnectionResetError:
            lost = True
        except asyncio.CancelledError:
            pass
        except BaseException as exc:  # routing/codec bugs must fail the node
            self._fail(exc)
        if lost and peer is not None:
            try:
                self._link_lost(peer, endpoint)
            except BaseException as exc:
                self._fail(exc)

    def _link_lost(self, peer: str, endpoint: Optional[_RemoteEndpoint]) -> None:
        """React to a link dying under us (peer crashed or was severed)."""
        if self.stop.is_set():
            return  # orderly shutdown closes every link; nothing to recover
        if self.broker.links.get(peer) is not endpoint:
            return  # a reconnect already replaced this link; stale EOF
        self.broker.handle_link_lost(peer)
        # dropping a client link's entries may forward unsubscribes
        self._flush_endpoints()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Accept an inbound link: handshake names the peer, then traffic."""
        decoder = FrameDecoder()
        try:
            handshake = None
            while handshake is None:
                data = await reader.read(65536)
                if not data:
                    writer.close()
                    return
                bodies = decoder.feed(data)
                if bodies:
                    handshake = wire.decode_control(bodies[0])
                    leftover = bodies[1:]
            wire.check_handshake_codec(handshake, self.codec)
            # the handshake fixed the codec; every later body must lead with
            # this codec's first byte
            decoder.codec = self.codec
            peer = handshake["peer"]
            endpoint = self._make_endpoint(writer, peer)
            self.broker.attach_link(peer, endpoint)
            if handshake.get("kind") == "broker":
                self.broker.register_broker_peer(peer)
            self._writers.append(writer)
            self._accept_pending.discard(peer)
            self._accept_seen.set()
            if handshake.get("resync"):
                # the dialer lost (or restarted without) its routing state:
                # void what it advertised before and send ours from scratch
                self.broker.resync_link(peer)
            for body in leftover:
                self.broker.deliver(self.codec.decode_message(body))
            self._flush_endpoints()
        except (ConnectionResetError, asyncio.CancelledError):
            writer.close()
            return
        except BaseException as exc:
            self._fail(exc)
            writer.close()
            return
        await self._read_link(reader, decoder, peer, endpoint)

    async def _dial_peer(self, peer: str, resync: bool = False) -> None:
        """Initiate the link for an edge this node is the dialer of.

        Connection attempts are retried with bounded exponential backoff and
        jitter until :data:`LINK_SETUP_TIMEOUT` runs out: during recovery the
        peer may be mid-restart, registered but not yet accepting, and a
        thundering herd of reconnecting neighbours must not synchronise.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.LINK_SETUP_TIMEOUT
        pause = self.DIAL_RETRY_BASE
        while True:
            address = await lookup(self.registry_address, peer, timeout=self.LINK_SETUP_TIMEOUT)
            try:
                reader, writer = await asyncio.open_connection(*address)
                break
            except OSError as exc:
                if loop.time() + pause > deadline:
                    raise ClusterError(
                        f"{self.name}: could not connect to {peer!r} at {address} "
                        f"within {self.LINK_SETUP_TIMEOUT}s: {exc}"
                    )
                await asyncio.sleep(pause + self._rng.uniform(0.0, pause / 4))
                pause = min(pause * 2, self.DIAL_RETRY_CAP)
        handshake = {"peer": self.name, "kind": "broker", **wire.handshake_fields(self.codec)}
        if resync:
            handshake["resync"] = True
        writer.write(wire.frame(wire.encode_control(handshake)))
        await writer.drain()
        endpoint = self._make_endpoint(writer, peer)
        self.broker.attach_link(peer, endpoint)
        self.broker.register_broker_peer(peer)
        self._writers.append(writer)
        if resync:
            self.broker.resync_link(peer)
            self._flush_endpoints()
        self._tasks.append(
            # the dialer's read side only ever carries message frames, so its
            # decoder is codec-armed from the first byte
            asyncio.ensure_future(self._read_link(reader, FrameDecoder(self.codec), peer, endpoint))
        )

    def _sever_link(self, peer: str) -> None:
        """Tear the TCP link to ``peer`` down for real (fault injection).

        Idempotent: the peer's own severing (or its crash) may already have
        taken the link away by the time the control request arrives.
        """
        endpoint = self.broker.links.get(peer)
        if isinstance(endpoint, _RemoteEndpoint):
            endpoint.writer.close()
        if self.broker.has_link(peer):
            self.broker.handle_link_lost(peer)
            self._flush_endpoints()

    async def _wait_for_accepts(self) -> None:
        deadline = asyncio.get_running_loop().time() + self.LINK_SETUP_TIMEOUT
        while self._accept_pending:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise ClusterError(
                    f"{self.name}: peers never dialled in: {sorted(self._accept_pending)}"
                )
            self._accept_seen.clear()
            try:
                await asyncio.wait_for(self._accept_seen.wait(), min(remaining, 0.5))
            except asyncio.TimeoutError:
                continue

    # ---------------------------------------------------------------- control
    def _set_flush_cap(self, cap: int) -> None:
        """Retune the early-flush threshold of every live outbound link."""
        if not isinstance(cap, int) or isinstance(cap, bool) or cap < 1:
            raise ValueError(f"flush_cap must be a positive integer, got {cap!r}")
        self.flush_cap = cap
        for endpoint in self.broker.links.values():
            if isinstance(endpoint, _RemoteEndpoint):
                endpoint.flush_cap = cap

    def _configure(self, changes: Dict[str, Any]) -> Dict[str, Any]:
        """Apply runtime knob changes shipped by the parent's ``configure`` op.

        ``flush_cap`` is a node-level wire knob applied to this process's
        endpoints; everything else is delegated to the broker's own verified
        :meth:`~repro.pubsub.broker.Broker.reconfigure`.
        """
        changes = dict(changes)
        flush_cap = changes.pop("flush_cap", None)
        applied = self.broker.reconfigure(changes) if changes else {}
        if flush_cap is not None:
            self._set_flush_cap(flush_cap)
            applied["flush_cap"] = self.flush_cap
        return applied

    def _stats(self) -> Dict[str, Any]:
        links = {
            peer: _stats_payload(endpoint.stats)
            for peer, endpoint in self.broker.links.items()
            if isinstance(endpoint, _RemoteEndpoint)
        }
        return {
            "received": self.broker.messages_received,
            "sent": self.broker.messages_sent,
            "broker": self.broker.stats(),
            "links": links,
        }

    async def _control_loop(self, channel: FrameChannel) -> None:
        try:
            while True:
                request = await channel.recv()
                if request is None:
                    # parent (and its registry) are gone: shut down, no orphan
                    self.stop.set()
                    return
                rid = request.get("rid")
                op = request.get("op")
                if op == "stats":
                    channel.send({"re": rid, "ok": True, **self._stats()})
                elif op == "metrics":
                    channel.send({"re": rid, "ok": True, "metrics": self.broker.metrics_snapshot()})
                elif op == "configure":
                    try:
                        applied = self._configure(request.get("changes") or {})
                    except (ValueError, RuntimeError) as exc:
                        channel.send({"re": rid, "ok": False, "error": str(exc)})
                    else:
                        # the flip may have forwarded resyncs; push them out
                        self._flush_endpoints()
                        channel.send({"re": rid, "ok": True, "applied": applied})
                elif op == "link_down":
                    self._sever_link(request.get("peer"))
                    channel.send({"re": rid, "ok": True})
                elif op == "link_up":
                    try:
                        await self._dial_peer(request.get("peer"), resync=True)
                    except (ClusterError, RegistryError, OSError) as exc:
                        channel.send({"re": rid, "ok": False, "error": str(exc)})
                    else:
                        channel.send({"re": rid, "ok": True})
                elif op == "shutdown":
                    channel.send({"re": rid, "ok": True})
                    await channel.drain()
                    self.stop.set()
                    return
                else:
                    channel.send({"re": rid, "ok": False, "error": f"unknown op {op!r}"})
                await channel.drain()
        except (ConnectionResetError, asyncio.CancelledError):
            self.stop.set()
        except BaseException as exc:
            self._fail(exc)

    # -------------------------------------------------------------------- run
    async def run(self) -> int:
        from ..obs.metrics import MetricsRegistry
        from ..pubsub.broker import Broker  # lazy: net/ stays importable alone

        loop = asyncio.get_running_loop()
        self.metrics = MetricsRegistry(enabled=bool(self.config.get("metrics", True)))
        self.broker = Broker(
            _NodeClock(loop),
            self.name,
            routing=self.spec.get("routing", "simple"),
            matcher=self.spec.get("matcher", "indexed"),
            advertising=self.spec.get("advertising", "incremental"),
            duplicates_capacity=self.config.get("duplicates_capacity"),
            metrics=self.metrics,
        )
        self._server = await asyncio.start_server(self._serve_connection, host=self.host, port=0)
        port = self._server.sockets[0].getsockname()[1]
        channel = await register_node(self.registry_address, self.name, self.host, port)
        try:
            for peer in self.spec.get("dial", ()):
                await self._dial_peer(peer, resync=self.resync_on_connect)
            await self._wait_for_accepts()
            await report_ready(channel, self.name)
            self._tasks.append(asyncio.ensure_future(self._control_loop(channel)))
            await self.stop.wait()
        finally:
            self._server.close()
            for writer in self._writers:
                writer.close()
            channel.close()
            for task in self._tasks:
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self.failure is not None:
            raise self.failure
        return 0


def node_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of a spawned broker process (see :mod:`repro.net.cluster_node`)."""
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.net.cluster_node '<json node spec>'", file=sys.stderr)
        return 2
    try:
        spec = json.loads(argv[0])
    except json.JSONDecodeError as exc:
        print(f"invalid node spec: {exc}", file=sys.stderr)
        return 2
    profile_dir = os.environ.get("REPRO_NODE_PROFILE")
    profiler = None
    if profile_dir:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        return asyncio.run(_BrokerNode(spec).run())
    except Exception:  # a child must die loudly, with a traceback on stderr
        import traceback

        traceback.print_exc()
        return 1
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(os.path.join(profile_dir, f"node-{spec.get('name', '?')}.pstats"))


# ------------------------------------------------------------- parent: links


class ClusterLink:
    """Parent-side view of one cluster link, mirroring the Link stats surface.

    For client attachments the parent records both directions itself; for
    broker-to-broker edges the counters live inside the two children and are
    refreshed from the most recent stats poll (exact at quiescence, because
    the poll that declares the cluster idle is also the freshest snapshot).
    """

    def __init__(self, transport: "ClusterTransport", a: Process, b: Process, latency: float):
        self.transport = transport
        self.a = a
        self.b = b
        self.latency = latency
        self.up = True
        self.deliver_in_flight_on_down = True
        self._local_out = LinkStats()  # a -> b as recorded locally (client links)
        self._local_in = LinkStats()  # b -> a as recorded locally (client links)

    @property
    def is_broker_edge(self) -> bool:
        return isinstance(self.a, RemoteBroker) and isinstance(self.b, RemoteBroker)

    # ------------------------------------------------------------------ state
    def set_up(self, up: bool) -> None:
        """Sever (``False``) or restore (``True``) this broker edge for real.

        Severing closes the TCP connection on both children; restoring makes
        the edge's original dialer reconnect and re-synchronise routing state
        in both directions.  Only broker-to-broker edges can be severed — a
        client link is torn down by killing (or detaching) the client.
        """
        if up:
            self.transport._restore_link(self)
        else:
            self.transport._sever_link(self)

    def disconnect(self) -> None:
        self.set_up(False)

    def reconnect(self) -> None:
        self.set_up(True)

    def on_drop(self, message: Message, source: Process, target: Process) -> None:
        """Drop hook for interface parity; cluster links never drop by policy."""

    # ------------------------------------------------------------------ stats
    def _polled(self, owner: str, towards: str) -> Dict[str, Any]:
        stats = self.transport.polled_stats.get(owner, {})
        return stats.get("links", {}).get(towards, {})

    @property
    def stats_a_to_b(self) -> LinkStats:
        if self.is_broker_edge:
            return self._remote_stats(self.a.name, self.b.name)
        return self._local_out

    @property
    def stats_b_to_a(self) -> LinkStats:
        if self.is_broker_edge:
            return self._remote_stats(self.b.name, self.a.name)
        return self._local_in

    def _remote_stats(self, owner: str, towards: str) -> LinkStats:
        polled = self._polled(owner, towards)
        stats = LinkStats()
        stats.messages = polled.get("messages", 0)
        stats.bytes = polled.get("bytes", 0)
        stats.dropped = polled.get("dropped", 0)
        stats.by_kind = dict(polled.get("by_kind", {}))
        return stats

    def total_messages(self) -> int:
        return self.stats_a_to_b.messages + self.stats_b_to_a.messages

    def total_bytes(self) -> int:
        return self.stats_a_to_b.bytes + self.stats_b_to_a.bytes

    def messages_of_kind(self, kind: str) -> int:
        return self.stats_a_to_b.by_kind.get(kind, 0) + self.stats_b_to_a.by_kind.get(kind, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flavour = "edge" if self.is_broker_edge else "client"
        return f"ClusterLink({self.a.name}<->{self.b.name}, {flavour})"


class RemoteBroker(Process):
    """Parent-side proxy for a broker that lives in a child process.

    Carries the broker's configuration until boot and its last polled
    counters afterwards.  It never routes anything itself — messages to a
    remote broker go over the TCP attachment, not through ``deliver``.
    """

    def __init__(
        self,
        transport: "ClusterTransport",
        clock,
        name: str,
        routing: str,
        matcher: str,
        advertising: str,
    ):
        super().__init__(clock, name)
        self.transport = transport
        self.routing_strategy_name = routing
        self.matcher = matcher
        self.advertising = advertising
        self._broker_peers: Set[str] = set()

    # topology bookkeeping (mirrors Broker's surface used by BrokerNetwork)
    def register_broker_peer(self, peer_name: str) -> None:
        self._broker_peers.add(peer_name)

    def unregister_broker_peer(self, peer_name: str) -> None:
        self._broker_peers.discard(peer_name)

    def broker_neighbors(self) -> List[str]:
        return sorted(self._broker_peers)

    def client_links(self) -> List[str]:
        return sorted(self.transport.clients_of(self.name))

    @property
    def is_border(self) -> bool:
        return bool(self.transport.clients_of(self.name))

    # remote state, refreshed by the transport's stats polls
    @property
    def last_stats(self) -> Dict[str, Any]:
        return self.transport.polled_stats.get(self.name, {})

    def stats(self) -> Dict[str, int]:
        return dict(self.last_stats.get("broker", {}))

    def routing_table_size(self) -> int:
        return int(self.last_stats.get("broker", {}).get("table_size", 0))

    def on_message(self, message: Message) -> None:  # pragma: no cover - guard
        raise ClusterError(
            f"RemoteBroker {self.name!r} received a local message; remote brokers "
            "only exist as proxies in the parent process"
        )


# --------------------------------------------------------- parent: transport


class ClusterTransport(Transport):
    """Run each broker of the graph in its own spawned OS process.

    The parent process hosts the registry, the clients and this transport;
    each declared broker becomes a child process connected to its peers by
    duplex TCP links.  Booting happens lazily on the first client attachment
    (or explicitly via :meth:`boot`); the broker topology is frozen from
    that point on.

    ``run_until_idle`` uses counter-stability quiescence (see the module
    docstring) and doubles as the crash detector: a child that exited is
    reported with its exit code as a :class:`ClusterError`.
    """

    name = "cluster"
    # the broker topology freezes at boot, so the dynamically attaching
    # wireless links of the mobility layer cannot be hosted here
    supports_mobility = False
    # faults are real here: SIGKILL + supervised respawn, TCP-level severing
    supports_fault_injection = True

    DEFAULT_BOOT_TIMEOUT = 60.0
    DEFAULT_IDLE_TIMEOUT = 120.0
    #: once a fault has dropped frames, sent==received never holds again;
    #: quiescence then requires this many consecutive identical poll rounds
    LOSSY_STABLE_ROUNDS = 5

    def __init__(
        self,
        host: str = "127.0.0.1",
        registry_port: Optional[int] = None,
        boot_timeout: float = DEFAULT_BOOT_TIMEOUT,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        settle: float = 0.005,
        codec: "wire.Codec | str | None" = None,
    ):
        self.host = host
        self.codec = wire.get_codec(codec)
        self.boot_timeout = boot_timeout
        self.idle_timeout = idle_timeout
        self.settle = settle
        self._loop = asyncio.new_event_loop()
        self._pending_error: Optional[BaseException] = None
        self._clock = AsyncioClock(self)
        self.registry = RegistryServer(host, port=registry_port)
        self._specs: Dict[str, Dict[str, Any]] = {}
        self._edges: List[Tuple[str, str]] = []
        self._brokers: Dict[str, RemoteBroker] = {}
        self._children: Dict[str, subprocess.Popen] = {}
        self._local: Dict[str, Process] = {}
        self._client_peers: Dict[str, Set[str]] = {}
        self._reader_tasks: List[asyncio.Task] = []
        self._client_writers: List[asyncio.StreamWriter] = []
        self.links: List[ClusterLink] = []
        #: freshest per-broker stats payloads, refreshed by every idle poll
        self.polled_stats: Dict[str, Dict[str, Any]] = {}
        #: broker name -> exit code, filled in by :meth:`close`
        self.exit_codes: Dict[str, int] = {}
        #: brokers deliberately killed and not yet restarted
        self._down: Set[str] = set()
        #: set once any fault dropped frames; switches the idle detector to
        #: counter-stability (conservation cannot hold after a loss)
        self._lossy = False
        #: fault/recovery action counters, for the chaos harness and benches
        self.recovery: Dict[str, int] = {
            "kills": 0,
            "restarts": 0,
            "link_severs": 0,
            "link_restores": 0,
            "client_resubscribes": 0,
        }
        self._booted = False
        self._closed = False
        self._shutting_down = False

    @property
    def clock(self) -> AsyncioClock:
        return self._clock

    def clients_of(self, broker_name: str) -> Set[str]:
        return self._client_peers.get(broker_name, set())

    @property
    def booted(self) -> bool:
        return self._booted

    @property
    def failures(self) -> Dict[str, int]:
        """Broker name -> non-zero exit code, for every child that failed."""
        return {name: code for name, code in self.exit_codes.items() if code != 0}

    @property
    def broker_pids(self) -> Dict[str, int]:
        """Broker name -> OS pid of its spawned process (empty before boot)."""
        return {name: child.pid for name, child in self._children.items()}

    # ---------------------------------------------------------------- topology
    def build_broker(
        self,
        name: str,
        routing: str = "simple",
        matcher: str = "indexed",
        advertising: str = "incremental",
    ) -> RemoteBroker:
        """Declare a broker to run in its own process; returns its proxy."""
        self._require_open()
        if self._booted:
            raise ClusterError("the broker topology is frozen once the cluster has booted")
        if name in self._specs:
            raise ClusterError(f"duplicate broker name {name!r}")
        self._specs[name] = {
            "name": name,
            "host": self.host,
            "routing": routing,
            "matcher": matcher,
            "advertising": advertising,
            "codec": self.codec.name,
            "dial": [],
            "accept": [],
        }
        if self._system_config is not None:
            # ship the control-plane knobs (metrics on/off, duplicate memory,
            # flush cap) to the child; the flat keys above stay authoritative
            # for routing/matcher/advertising so legacy callers are unchanged
            self._specs[name]["config"] = self._system_config.to_dict()
        proxy = RemoteBroker(self, self._clock, name, routing, matcher, advertising)
        self._brokers[name] = proxy
        return proxy

    def make_link(
        self,
        a: Process,
        b: Process,
        latency: float = 0.001,
        deliver_in_flight_on_down: bool = True,
    ) -> ClusterLink:
        self._require_open()
        remote_a, remote_b = isinstance(a, RemoteBroker), isinstance(b, RemoteBroker)
        link = ClusterLink(self, a, b, latency)
        if remote_a and remote_b:
            if self._booted:
                raise ClusterError("cannot add broker edges after the cluster has booted")
            # the edge's first broker dials, the second accepts
            self._specs[a.name]["dial"].append(b.name)
            self._specs[b.name]["accept"].append(a.name)
            self._edges.append((a.name, b.name))
        elif remote_a or remote_b:
            client, broker = (b, a) if remote_a else (a, b)
            self.boot()
            self._local[client.name] = client
            self._client_peers.setdefault(broker.name, set()).add(client.name)
            self._loop.run_until_complete(self._attach_client(client, broker.name, link))
        else:
            raise ClusterError(
                "cluster links connect clients to brokers or brokers to brokers; "
                f"neither {a.name!r} nor {b.name!r} is a declared broker"
            )
        self.links.append(link)
        return link

    # -------------------------------------------------------------------- boot
    def boot(self) -> None:
        """Spawn one OS process per declared broker and wait for readiness."""
        self._require_open()
        if self._booted:
            return
        if not self._specs:
            raise ClusterError("no brokers declared; add brokers before attaching clients")
        self._booted = True
        self._loop.run_until_complete(self.registry.start())
        for name, spec in self._specs.items():
            spec["registry"] = list(self.registry.address)
            self._children[name] = self._spawn(spec)
        barrier = self.registry.wait_ready(
            self._specs, self.boot_timeout, liveness=self._check_children
        )
        try:
            self._loop.run_until_complete(barrier)
        except Exception:
            # a failed boot must not leak half a cluster
            self.close()
            raise

    def _spawn(self, spec: Dict[str, Any]) -> subprocess.Popen:
        src_dir = Path(__file__).resolve().parents[2]
        env = os.environ.copy()
        env["PYTHONPATH"] = str(src_dir) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro.net.cluster_node", json.dumps(spec)],
            env=env,
        )

    def _check_children(self) -> None:
        """Raise if any broker child exited; called on every liveness tick."""
        if self._shutting_down:
            return
        for name, child in self._children.items():
            if name in self._down:
                continue  # deliberately killed; not a surprise crash
            code = child.poll()
            if code is not None:
                raise ClusterError(
                    f"broker process {name!r} exited with code {code} "
                    "(see its traceback on stderr)"
                )

    async def _attach_client(self, client: Process, broker_name: str, link: ClusterLink) -> None:
        host, port = self.registry.registered[broker_name]
        reader, writer = await asyncio.open_connection(host, port)
        handshake = {"peer": client.name, "kind": "client", **wire.handshake_fields(self.codec)}
        writer.write(wire.frame(wire.encode_control(handshake)))
        await writer.drain()
        endpoint = _RemoteEndpoint(writer, broker_name, self.codec)
        endpoint.stats = link._local_out  # the link owns the outbound counters
        endpoint.flush_cap = self._flush_cap
        client.attach_link(broker_name, endpoint)
        self._client_writers.append(writer)
        reader_task = self._loop.create_task(self._client_reader(client, reader, link))
        self._reader_tasks.append(reader_task)

    async def _client_reader(
        self, client: Process, reader: asyncio.StreamReader, link: ClusterLink
    ) -> None:
        # the broker only ever sends message frames back, so the decoder is
        # codec-armed from the first byte
        decoder = FrameDecoder(self.codec)
        decode_message = self.codec.decode_message
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for body in decoder.feed(data):
                    message = decode_message(body)
                    link._local_in.record(message)
                    client.deliver(message)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        except BaseException as exc:
            if self._pending_error is None:
                self._pending_error = exc

    # ----------------------------------------------------------- control plane
    def set_flush_cap(self, cap: int) -> None:
        """Retune the parent-side clients' write batching (children keep theirs).

        Broker children are retuned through :meth:`configure`, which ships
        the knob to the owning process.
        """
        super().set_flush_cap(cap)
        for process in self._local.values():
            for endpoint in process.links.values():
                if isinstance(endpoint, _RemoteEndpoint):
                    endpoint.flush_cap = cap

    def configure(self, broker, changes: Dict[str, Any]) -> Dict[str, Any]:
        """Ship runtime knob changes to a live broker child's process.

        The child applies them through the same verified
        :meth:`~repro.pubsub.broker.Broker.reconfigure` path as the
        in-process backends (plus its node-level ``flush_cap``) and replies
        with the applied values; a rejected change surfaces as a
        :class:`~repro.net.registry.RegistryError` naming the node.
        """
        self._require_open()
        changes = dict(changes)
        unknown = sorted(set(changes) - set(RUNTIME_KNOBS))
        if unknown:
            raise ValueError(
                f"unknown runtime knob(s) {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(RUNTIME_KNOBS)}"
            )
        name = broker if isinstance(broker, str) else broker.name
        if name not in self._brokers:
            raise TransportError(f"no broker named {name!r} on this transport")
        if not self._booted:
            raise ClusterError(
                f"cannot configure {name!r} before the cluster has booted; "
                "runtime knobs reach a broker child over its control channel"
            )
        if name in self._down:
            raise ClusterError(f"broker {name!r} is down; restart it before reconfiguring")
        if not changes:
            return {}

        async def send() -> Dict[str, Any]:
            return await self.registry.request(name, "configure", timeout=10.0, changes=changes)

        reply = self._loop.run_until_complete(send())
        applied = dict(reply.get("applied", {}))
        proxy = self._brokers[name]
        if "matcher" in applied:
            proxy.matcher = applied["matcher"]
        if "advertising" in applied:
            proxy.advertising = applied["advertising"]
        return applied

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Gather every live child's metrics over the registry control channel."""
        self._require_open()
        brokers: Dict[str, Any] = {}
        if self._booted:

            async def gather() -> None:
                names = [name for name in self._specs if name not in self._down]
                replies = await asyncio.gather(
                    *[self.registry.request(name, "metrics", timeout=10.0) for name in names]
                )
                for name, reply in zip(names, replies):
                    brokers[name] = reply["metrics"]

            self._loop.run_until_complete(gather())
        return {"transport": self.transport_metrics(), "brokers": brokers}

    # ------------------------------------------------------------- fault plane
    def inject_fault(self, action: str, process=None, link=None) -> None:
        """Real faults: SIGKILL/respawn for processes, TCP severing for links."""
        if action == "crash":
            self.kill_broker(self._fault_target(process, "process").name)
        elif action == "restart":
            self.restart_broker(self._fault_target(process, "process").name)
        elif action == "link_down":
            self._sever_link(self._fault_target(link, "link"))
        elif action == "link_up":
            self._restore_link(self._fault_target(link, "link"))
        else:
            raise TransportError(
                f"unknown fault action {action!r}; available: {FAULT_ACTIONS}"
            )

    def kill_broker(self, name: str) -> None:
        """``kill -9`` a broker child mid-run (chaos testing).

        The registry forgets the node so its stale address cannot satisfy a
        lookup, and liveness checks stop treating the death as a crash.
        Frames in flight towards the dead broker are lost — exactly what the
        real fault would lose.
        """
        self._require_open()
        if name not in self._children:
            raise ClusterError(f"unknown broker {name!r} (is the cluster booted?)")
        if name in self._down:
            raise ClusterError(f"broker {name!r} is already down")
        child = self._children[name]
        if child.poll() is None:
            child.kill()
        child.wait()
        self.registry.forget(name)
        self._down.add(name)
        self._lossy = True
        self.recovery["kills"] += 1
        # half-open client sockets towards the corpse would buffer silently;
        # closing them makes client-side sends count as drops immediately
        for client_name in sorted(self._client_peers.get(name, ())):
            endpoint = self._local[client_name].links.get(name)
            if isinstance(endpoint, _RemoteEndpoint):
                endpoint.writer.close()
        self._prune_dead_io()

    def restart_broker(self, name: str) -> None:
        """Supervised restart of a killed broker: respawn, re-link, re-sync.

        The respawned child re-registers under its old name, dials every
        surviving neighbour with the resync flag (both sides re-advertise
        their routing state from scratch), and the parent re-attaches the
        broker's clients, whose local brokers re-issue their subscriptions —
        after the next drain the delivery sets converge back to the sim
        baseline.
        """
        self._require_open()
        if name not in self._down:
            raise ClusterError(f"broker {name!r} is not down; kill it before restarting")
        spec = dict(self._specs[name])
        spec["dial"] = self._neighbors_of(name)
        spec["accept"] = []
        spec["resync"] = True
        self._children[name] = self._spawn(spec)
        self._down.discard(name)
        barrier = self.registry.wait_ready([name], self.boot_timeout, liveness=self._check_children)
        self._loop.run_until_complete(barrier)
        self.recovery["restarts"] += 1
        for client_name in sorted(self._client_peers.get(name, ())):
            client = self._local[client_name]
            link = self._client_link(client_name, name)
            self._loop.run_until_complete(self._attach_client(client, name, link))
            if hasattr(client, "connect_to"):
                client.connect_to(name, reissue=True)
                self.recovery["client_resubscribes"] += len(client.subscriptions)
        self._flush_local()
        self._prune_dead_io()

    def _prune_dead_io(self) -> None:
        """Drop closed client writers and finished reader tasks.

        Every kill/restart cycle closes the dead broker's client sockets and
        attaches fresh ones; without pruning, ``_client_writers`` and
        ``_reader_tasks`` grow by one entry per cycle for the lifetime of
        the cluster — exactly the leak class the soak harness gates via
        :meth:`resource_sizes`.
        """
        self._client_writers = [
            writer for writer in self._client_writers if not writer.is_closing()
        ]
        self._reader_tasks = [task for task in self._reader_tasks if not task.done()]

    def _neighbors_of(self, name: str) -> List[str]:
        """Broker peers reachable over currently-up edges (for re-dialling)."""
        peers: Set[str] = set()
        for link in self.links:
            if not link.is_broker_edge or not link.up:
                continue
            if link.a.name == name:
                peers.add(link.b.name)
            elif link.b.name == name:
                peers.add(link.a.name)
        return sorted(peers)

    def _client_link(self, client_name: str, broker_name: str) -> ClusterLink:
        for link in self.links:
            if not link.is_broker_edge and {link.a.name, link.b.name} == {
                client_name,
                broker_name,
            }:
                return link
        raise ClusterError(f"no client link between {client_name!r} and {broker_name!r}")

    def _sever_link(self, link: ClusterLink) -> None:
        """Close a broker edge's TCP connection on both children."""
        self._require_open()
        if not isinstance(link, ClusterLink) or not link.is_broker_edge:
            raise ClusterError("only broker-to-broker cluster links can be severed")
        if not link.up:
            return

        async def sever() -> None:
            for owner, peer in ((link.a.name, link.b.name), (link.b.name, link.a.name)):
                if owner not in self._down:
                    await self.registry.request(owner, "link_down", peer=peer, timeout=10.0)

        self._loop.run_until_complete(sever())
        link.up = False
        self._lossy = True
        self.recovery["link_severs"] += 1

    def _restore_link(self, link: ClusterLink) -> None:
        """Re-establish a severed broker edge (original dialer reconnects)."""
        self._require_open()
        if not isinstance(link, ClusterLink) or not link.is_broker_edge:
            raise ClusterError("only broker-to-broker cluster links can be restored")
        if link.up:
            return
        dialer, acceptor = link.a.name, link.b.name
        if dialer in self._down or acceptor in self._down:
            raise ClusterError(
                f"cannot restore {dialer}<->{acceptor}: one side is down; restart it first"
            )

        async def restore() -> None:
            try:
                await self.registry.request(
                    dialer, "link_up", peer=acceptor, timeout=self.boot_timeout
                )
            except RegistryError as exc:
                raise ClusterError(f"link restore {dialer}->{acceptor} failed: {exc}") from exc

        self._loop.run_until_complete(restore())
        link.up = True
        self.recovery["link_restores"] += 1

    # ----------------------------------------------------------------- driving
    def _flush_local(self) -> None:
        """Write out frames the parent's clients buffered since the last drive."""
        for process in self._local.values():
            for endpoint in process.links.values():
                if isinstance(endpoint, _RemoteEndpoint):
                    endpoint.flush()

    def run(self, until: Optional[float] = None) -> float:
        """Spin the parent loop; with ``until``, for that many clock seconds."""
        self._require_open()
        self._flush_local()
        if until is None:
            return self.run_until_idle()
        delay = until - self._clock.now
        if delay > 0:
            self._loop.run_until_complete(asyncio.sleep(delay))
        self._raise_pending_error()
        return self._clock.now

    def run_until_idle(self, timeout: Optional[float] = None) -> float:
        """Drive until the cluster is provably quiescent.

        Idle iff two consecutive poll rounds see identical counter vectors
        *and* the global sent total equals the global received total (see
        the module docstring for why this is exact).
        """
        self._require_open()
        if not self._booted:
            return self._clock.now
        timeout = timeout if timeout is not None else self.idle_timeout
        self._flush_local()

        async def drain() -> None:
            deadline = self._loop.time() + timeout
            previous: Optional[Dict[str, Tuple[int, int]]] = None
            stable_rounds = 0
            while True:
                if self._pending_error is not None:
                    return
                self._flush_local()  # clients buffer while the loop is parked
                self._check_children()
                snapshot = await self._poll_counters()
                stable_rounds = stable_rounds + 1 if snapshot == previous else 0
                received_total = sum(received for received, _ in snapshot.values())
                sent_total = sum(sent for _, sent in snapshot.values())
                if self._lossy:
                    # a fault dropped frames, so conservation is broken for
                    # good; require several consecutive identical rounds
                    idle = stable_rounds >= self.LOSSY_STABLE_ROUNDS
                else:
                    idle = sent_total == received_total and stable_rounds >= 1
                # parity with the asyncio backend: a scheduled-but-unfired
                # parent-side clock callback also keeps the cluster busy
                if idle and self._clock.pending_timers == 0:
                    return
                previous = snapshot
                if self._loop.time() > deadline:
                    raise ClusterError(
                        f"cluster did not reach quiescence within {timeout}s "
                        f"(last snapshot: {snapshot})"
                    )
                await asyncio.sleep(self.settle)

        self._loop.run_until_complete(drain())
        self._raise_pending_error()
        return self._clock.now

    async def _poll_counters(self) -> Dict[str, Tuple[int, int]]:
        # every broker has its own control channel, so the stats calls are
        # independent: one concurrent round costs one RTT, not n_brokers RTTs
        names = [name for name in self._specs if name not in self._down]
        calls = [self.registry.call(name, {"op": "stats"}, timeout=5.0) for name in names]
        replies = await asyncio.gather(*calls, return_exceptions=True)
        snapshot: Dict[str, Tuple[int, int]] = {}
        for name, reply in zip(names, replies):
            if isinstance(reply, BaseException):
                if not isinstance(reply, RegistryError):
                    raise reply
                self._check_children()  # a dead child explains it better
                raise ClusterError(f"lost contact with broker {name!r}: {reply}") from reply
            self.polled_stats[name] = reply
            snapshot[name] = (reply.get("received", 0), reply.get("sent", 0))
        for name, process in self._local.items():
            snapshot[name] = (process.messages_received, process.messages_sent)
        return snapshot

    def _raise_pending_error(self) -> None:
        if self._pending_error is not None:
            error, self._pending_error = self._pending_error, None
            raise error

    def _require_open(self) -> None:
        if self._closed:
            raise ClusterError("cluster transport is closed")

    def resource_sizes(self) -> Dict[str, int]:
        """Parent-side resource sizes; kill/restart cycles must not grow them.

        Client writers and reader tasks are pruned first (a dead broker's
        sockets finish closing asynchronously), so a quiesced snapshot after
        a recovery cycle is directly comparable to the pre-fault baseline —
        the soak harness's non-growth gate on the cluster backend.
        """
        self._prune_dead_io()
        live_children = sum(1 for child in self._children.values() if child.poll() is None)
        return {
            "links": len(self.links),
            "client_writers": len(self._client_writers),
            "reader_tasks": len(self._reader_tasks),
            "registry_entries": len(self.registry.registered),
            "registry_disconnected": len(self.registry.disconnected),
            "live_children": live_children,
            "pending_timers": self._clock.pending_timers,
        }

    # ----------------------------------------------------------------- closing
    def close(self) -> None:
        """Orderly shutdown: ask every child to exit, then reap them.

        Never raises for a crashed child — inspect :attr:`failures` (or the
        :attr:`exit_codes` map) afterwards; ``run_until_idle`` is the place
        where crashes surface as exceptions mid-run.
        """
        if self._closed:
            return
        self._closed = True
        self._shutting_down = True

        async def shutdown() -> None:
            for name, child in self._children.items():
                if child.poll() is None:
                    try:
                        await self.registry.request(name, "shutdown", timeout=5.0)
                    except (RegistryError, ConnectionError):
                        pass
            for writer in self._client_writers:
                writer.close()
            for task in self._reader_tasks:
                task.cancel()
            if self._reader_tasks:
                await asyncio.gather(*self._reader_tasks, return_exceptions=True)
            await self.registry.close()

        if self._booted:
            self._loop.run_until_complete(shutdown())
            for name, child in self._children.items():
                try:
                    self.exit_codes[name] = child.wait(timeout=10.0)
                except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                    child.kill()
                    self.exit_codes[name] = child.wait()
        self._loop.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("booted" if self._booted else "declared")
        return f"ClusterTransport({len(self._specs)} brokers, {state})"
