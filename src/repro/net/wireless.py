"""Wireless access links with connection awareness.

The paper's "Mobile REBECA" architecture (Sect. 2, Fig. 3) connects a mobile
device to the border broker of its current cell over a wireless link
(WLAN/IrDA/Bluetooth in the paper).  The only properties the mobility
algorithms need from that hardware are *connection awareness*: both the
device and its virtual counterpart can check whether a connection currently
exists, and the device can discover whether some border broker is in
reachable distance.

:class:`WirelessChannel` models exactly that: at any time the device is
attached to at most one access point (border broker / replicator process);
attachment changes are explicit events with connect/disconnect latencies, and
both sides receive callbacks so that virtual clients can switch between
*active* and *buffering* mode (Sect. 3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .link import Link, LinkStats
from .process import Message, Process
from .simulator import Simulator

ConnectionCallback = Callable[[str], None]


@dataclass
class WirelessStats:
    """Counters for a device's wireless activity."""

    connects: int = 0
    disconnects: int = 0
    handovers: int = 0
    messages_up: int = 0
    messages_down: int = 0
    dropped_while_disconnected: int = 0
    attachment_history: List[tuple] = field(default_factory=list)


class WirelessChannel:
    """The wireless side of a mobile device.

    The channel owns the (single) dynamic link between the device process and
    whatever access-point process it is currently attached to.  Attachment is
    driven externally by the mobility model / scenario code through
    :meth:`attach`, :meth:`detach` and :meth:`handover`.
    """

    def __init__(
        self,
        sim: Simulator,
        device: Process,
        latency: float = 0.002,
        connect_latency: float = 0.05,
    ):
        self.sim = sim
        self.device = device
        self.latency = latency
        self.connect_latency = connect_latency
        self.current_ap: Optional[Process] = None
        self._link: Optional[Link] = None
        self.stats = WirelessStats()
        self._on_connect: List[ConnectionCallback] = []
        self._on_disconnect: List[ConnectionCallback] = []

    # ------------------------------------------------------------ awareness
    @property
    def connected(self) -> bool:
        """Connection awareness: is the device currently attached to an access point?"""
        return self.current_ap is not None and self._link is not None and self._link.up

    @property
    def access_point_name(self) -> Optional[str]:
        return self.current_ap.name if self.current_ap is not None else None

    def on_connect(self, callback: ConnectionCallback) -> None:
        """Register a callback invoked (with the AP name) after each attach completes."""
        self._on_connect.append(callback)

    def on_disconnect(self, callback: ConnectionCallback) -> None:
        """Register a callback invoked (with the AP name) after each detach."""
        self._on_disconnect.append(callback)

    # ------------------------------------------------------------ attachment
    def attach(self, access_point: Process, immediate: bool = False) -> None:
        """Attach the device to ``access_point``.

        The attachment completes after ``connect_latency`` simulated seconds
        (associating with the access point, establishing the virtual-client
        connection), unless ``immediate`` is set.
        """
        if self.current_ap is not None:
            self.detach()
        delay = 0.0 if immediate else self.connect_latency
        self.sim.schedule(delay, self._complete_attach, access_point)

    def _complete_attach(self, access_point: Process) -> None:
        if self.current_ap is not None:
            # A concurrent attach won; ignore the stale completion.
            return
        self.current_ap = access_point
        self._link = Link(self.sim, self.device, access_point, latency=self.latency)
        self.stats.connects += 1
        self.stats.attachment_history.append((self.sim.now, "attach", access_point.name))
        for callback in list(self._on_connect):
            callback(access_point.name)

    def detach(self) -> None:
        """Detach from the current access point (range loss, power-off, roaming)."""
        if self.current_ap is None:
            return
        ap_name = self.current_ap.name
        if self._link is not None:
            self._link.disconnect()
        self.current_ap = None
        self._link = None
        self.stats.disconnects += 1
        self.stats.attachment_history.append((self.sim.now, "detach", ap_name))
        for callback in list(self._on_disconnect):
            callback(ap_name)

    def handover(self, new_access_point: Process, gap: float = 0.0) -> None:
        """Detach from the current AP and attach to ``new_access_point``.

        ``gap`` models the out-of-coverage interval between leaving the old
        cell and associating with the new one.
        """
        self.stats.handovers += 1
        self.detach()
        self.sim.schedule(gap, self.attach, new_access_point)

    # ------------------------------------------------------------- messaging
    def send_up(self, message: Message) -> bool:
        """Send a message from the device to the current access point.

        Returns ``False`` (and counts a drop) if the device is disconnected —
        the caller decides whether to buffer and retry.
        """
        if not self.connected or self.current_ap is None:
            self.stats.dropped_while_disconnected += 1
            return False
        self.stats.messages_up += 1
        self.device.send(self.current_ap.name, message)
        return True

    def link_stats(self) -> Optional[LinkStats]:
        if self._link is None:
            return None
        return self._link.stats_a_to_b


class CoverageMap:
    """Maps physical positions to the access points that cover them.

    The scenario code uses a coverage map to decide, whenever the mobility
    model moves a device, which border broker (if any) is "in reachable
    distance" — the second half of the paper's connection-awareness
    assumption.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, str] = {}

    def set_cell(self, cell_id: str, access_point_name: str) -> None:
        """Declare that physical cell ``cell_id`` is covered by ``access_point_name``."""
        self._cells[cell_id] = access_point_name

    def access_point_for(self, cell_id: str) -> Optional[str]:
        """Return the covering access point's name, or ``None`` if out of coverage."""
        return self._cells.get(cell_id)

    def cells_of(self, access_point_name: str) -> List[str]:
        return [cell for cell, ap in self._cells.items() if ap == access_point_name]

    def __contains__(self, cell_id: str) -> bool:
        return cell_id in self._cells

    def __len__(self) -> int:
        return len(self._cells)
