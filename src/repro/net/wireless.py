"""Wireless access links with connection awareness.

The paper's "Mobile REBECA" architecture (Sect. 2, Fig. 3) connects a mobile
device to the border broker of its current cell over a wireless link
(WLAN/IrDA/Bluetooth in the paper).  The only properties the mobility
algorithms need from that hardware are *connection awareness*: both the
device and its virtual counterpart can check whether a connection currently
exists, and the device can discover whether some border broker is in
reachable distance.

:class:`WirelessChannel` models exactly that: at any time the device is
attached to at most one access point (border broker / replicator process);
attachment changes are explicit events with connect/disconnect latencies, and
both sides receive callbacks so that virtual clients can switch between
*active* and *buffering* mode (Sect. 3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .link import Link, LinkStats
from .process import Message, Process
from .simulator import Simulator

ConnectionCallback = Callable[[str], None]


@dataclass
class WirelessStats:
    """Counters for a device's wireless activity."""

    connects: int = 0
    disconnects: int = 0
    handovers: int = 0
    messages_up: int = 0
    messages_down: int = 0
    dropped_while_disconnected: int = 0
    attachment_history: List[tuple] = field(default_factory=list)


class WirelessChannel:
    """The wireless side of a mobile device.

    The channel owns the (single) dynamic link between the device process and
    whatever access-point process it is currently attached to.  Attachment is
    driven externally by the mobility model / scenario code through
    :meth:`attach`, :meth:`detach` and :meth:`handover`.

    The substrate carrying that link is pluggable.  The channel needs exactly
    two operations from it — *open a link at runtime* and *release a
    torn-down link* — which is the small dynamic-link interface every
    mobility-capable :class:`~repro.net.transport.Transport` exposes
    (``open_dynamic_link``/``close_dynamic_link``).  Pass ``transport=`` to
    carry the wireless hop on that backend: on the simulator attachment is
    the classic synchronous :class:`~repro.net.link.Link`, on asyncio each
    attach opens real TCP connections and each detach closes them.  With no
    transport (the legacy construction) the channel builds simulator links
    directly from ``sim``.
    """

    def __init__(
        self,
        sim: Simulator,
        device: Process,
        latency: float = 0.002,
        connect_latency: float = 0.05,
        transport=None,
    ):
        self.sim = sim
        self.device = device
        self.latency = latency
        self.connect_latency = connect_latency
        self.transport = transport
        if transport is not None and not getattr(transport, "supports_mobility", False):
            raise ValueError(
                f"transport {getattr(transport, 'name', transport)!r} does not support "
                "dynamic (wireless) links"
            )
        self.current_ap: Optional[Process] = None
        self._link: Optional[Link] = None
        # bumped by every attach and detach; a pending attach completion
        # carrying a stale epoch was superseded and must not take effect
        self._attach_epoch = 0
        self.stats = WirelessStats()
        self._on_connect: List[ConnectionCallback] = []
        self._on_disconnect: List[ConnectionCallback] = []

    # ------------------------------------------------------------ awareness
    @property
    def connected(self) -> bool:
        """Connection awareness: is the device currently attached to an access point?"""
        return self.current_ap is not None and self._link is not None and self._link.up

    @property
    def access_point_name(self) -> Optional[str]:
        return self.current_ap.name if self.current_ap is not None else None

    def on_connect(self, callback: ConnectionCallback) -> None:
        """Register a callback invoked (with the AP name) after each attach completes."""
        self._on_connect.append(callback)

    def on_disconnect(self, callback: ConnectionCallback) -> None:
        """Register a callback invoked (with the AP name) after each detach."""
        self._on_disconnect.append(callback)

    # ------------------------------------------------------------ attachment
    def attach(self, access_point: Process, immediate: bool = False) -> None:
        """Attach the device to ``access_point``.

        The attachment completes after ``connect_latency`` simulated seconds
        (associating with the access point, establishing the virtual-client
        connection), unless ``immediate`` is set.  A later :meth:`attach` or
        :meth:`detach` issued while the attachment is still completing
        supersedes it: the latest instruction wins, a pending attach never
        resurrects a connection the device has since been told to drop.
        """
        if self.current_ap is not None:
            self.detach()
        self._attach_epoch += 1
        delay = 0.0 if immediate else self.connect_latency
        self.sim.schedule(delay, self._complete_attach, access_point, self._attach_epoch)

    def _complete_attach(self, access_point: Process, epoch: Optional[int] = None) -> None:
        if epoch is None:
            epoch = self._attach_epoch
        if epoch != self._attach_epoch or self.current_ap is not None:
            # superseded by a later attach/detach; ignore the stale completion
            return
        if self.transport is None:
            # legacy path: a simulator link, created synchronously
            link = Link(self.sim, self.device, access_point, latency=self.latency)
            self._finish_attach(access_point, link, epoch)
        else:
            # through the dynamic-link interface; on socket backends the
            # connection setup completes asynchronously and _finish_attach
            # fires once traffic can flow
            self.transport.open_dynamic_link(
                self.device,
                access_point,
                latency=self.latency,
                ready=lambda link, _ap=access_point, _e=epoch: self._finish_attach(_ap, link, _e),
            )

    def _finish_attach(self, access_point: Process, link, epoch: Optional[int] = None) -> None:
        if (epoch is not None and epoch != self._attach_epoch) or self.current_ap is not None:
            # superseded while this link was being established; tear the late
            # arrival down instead of hijacking the current attachment
            self._discard_stale_link(link)
            return
        self.current_ap = access_point
        self._link = link
        self.stats.connects += 1
        self.stats.attachment_history.append((self.sim.now, "attach", access_point.name))
        for callback in list(self._on_connect):
            callback(access_point.name)

    def _discard_stale_link(self, stale) -> None:
        """Tear down a link whose establishment lost the attachment race.

        ``abandon`` (not ``disconnect``) so that, when the stale
        establishment targeted the *same* access point as the winning one,
        the winner's endpoint registrations survive; they are re-attached
        afterwards in case the stale establishment overwrote them.
        """
        stale.abandon()
        if self.transport is not None:
            self.transport.close_dynamic_link(stale)
        if self._link is not None and self.current_ap is not None:
            self._link.reconnect()

    def detach(self) -> None:
        """Detach from the current access point (range loss, power-off, roaming).

        Also cancels any attachment still being established: after a detach
        (power-off, leaving coverage) the device must not end up connected
        because an older attach completed late.
        """
        self._attach_epoch += 1
        if self.current_ap is None:
            return
        ap_name = self.current_ap.name
        if self._link is not None:
            self._link.disconnect()
            if self.transport is not None:
                self.transport.close_dynamic_link(self._link)
        self.current_ap = None
        self._link = None
        self.stats.disconnects += 1
        self.stats.attachment_history.append((self.sim.now, "detach", ap_name))
        for callback in list(self._on_disconnect):
            callback(ap_name)

    def handover(self, new_access_point: Process, gap: float = 0.0) -> None:
        """Detach from the current AP and attach to ``new_access_point``.

        ``gap`` models the out-of-coverage interval between leaving the old
        cell and associating with the new one.
        """
        self.stats.handovers += 1
        self.detach()
        self.sim.schedule(gap, self.attach, new_access_point)

    # ------------------------------------------------------------- messaging
    def send_up(self, message: Message) -> bool:
        """Send a message from the device to the current access point.

        Returns ``False`` (and counts a drop) if the device is disconnected —
        the caller decides whether to buffer and retry.
        """
        if not self.connected or self.current_ap is None:
            self.stats.dropped_while_disconnected += 1
            return False
        self.stats.messages_up += 1
        self.device.send(self.current_ap.name, message)
        return True

    def link_stats(self) -> Optional[LinkStats]:
        if self._link is None:
            return None
        return self._link.stats_a_to_b


class CoverageMap:
    """Maps physical positions to the access points that cover them.

    The scenario code uses a coverage map to decide, whenever the mobility
    model moves a device, which border broker (if any) is "in reachable
    distance" — the second half of the paper's connection-awareness
    assumption.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, str] = {}

    def set_cell(self, cell_id: str, access_point_name: str) -> None:
        """Declare that physical cell ``cell_id`` is covered by ``access_point_name``."""
        self._cells[cell_id] = access_point_name

    def access_point_for(self, cell_id: str) -> Optional[str]:
        """Return the covering access point's name, or ``None`` if out of coverage."""
        return self._cells.get(cell_id)

    def cells_of(self, access_point_name: str) -> List[str]:
        return [cell for cell, ap in self._cells.items() if ap == access_point_name]

    def __contains__(self, cell_id: str) -> bool:
        return cell_id in self._cells

    def __len__(self) -> int:
        return len(self._cells)
