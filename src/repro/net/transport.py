"""Pluggable transport backends: deterministic simulator or real sockets.

PRs 1–2 ran the whole pub/sub stack on a single deterministic discrete-event
simulator.  That was the right substrate for reproducing the paper's
algorithms, but it hard-wired the *algorithm* (brokers, routing, mobility) to
the *substrate* (the simulator's event queue).  This module separates the
two: a :class:`Transport` owns link construction, message movement and time,
and everything above (``Process.send``/``send_many``, link FIFO semantics,
connect/disconnect events, latency/bandwidth accounting) goes through it.

Three interchangeable backends:

* :class:`SimTransport` (default) — the existing simulator, behaviour
  byte-identical to the pre-refactor substrate (enforced by the golden-trace
  cross-check in ``tests/test_transport.py``, the way the ``matcher=`` and
  ``advertising=`` knobs are cross-checked).
* :class:`AsyncioTransport` — every process gets a real asyncio TCP server
  on localhost; links are pairs of TCP connections carrying length-prefixed
  wire frames (:mod:`repro.net.wire`).  Per-direction FIFO comes from TCP
  itself; time is the event loop's monotonic clock.  Runs are *not*
  deterministic — that is the point: this is the deployment shape of the
  paper's original REBECA testbed (broker processes talking over sockets).
* :class:`~repro.net.cluster.ClusterTransport` (``transport="cluster"``) —
  every *broker* runs in its own spawned OS process, discovered through a
  TCP registry in the parent (:mod:`repro.net.registry`); same wire frames,
  one duplex TCP connection per link, real multi-core scale-out past the
  single-process GIL ceiling.

Both backends expose the same clock surface (``now``/``schedule``/``run``/
``run_until_idle``), so processes keep their ``self.sim`` attribute and the
pubsub layer runs unchanged on either substrate.

What each backend guarantees:

===========================  ==========================  ====================
property                     SimTransport                AsyncioTransport
===========================  ==========================  ====================
determinism                  bit-exact, seedable         no (real scheduler)
per-link FIFO                yes (delivery floors)       yes (TCP streams)
latency model                exact simulated seconds     ``latency`` is a
                                                         per-message floor
real concurrency / sockets   no                          yes (localhost TCP)
serialization                none (object references)    length-prefixed wire
                                                         frames per message
mobility layer support       full                        full (wireless links
                                                         are real TCP conns
                                                         opened per attach)
===========================  ==========================  ====================

(The cluster backend supports the plain pub/sub layer only; its broker
topology freezes at boot, so it cannot host the dynamically attaching
wireless links the mobility layer needs.)
"""

from __future__ import annotations

import asyncio
import itertools
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from . import wire
from .link import Link, LinkStats
from .process import LinkEndpoint, Message, Process
from .simulator import SimulationError, Simulator

#: the names accepted by the ``transport=`` knob
TRANSPORT_NAMES = ("sim", "asyncio", "cluster")

#: the fault primitives accepted by :meth:`Transport.inject_fault`
FAULT_ACTIONS = ("crash", "restart", "link_down", "link_up")

#: the knobs :meth:`Transport.configure` accepts on a *live* broker
#: (re-exported as :data:`repro.config.RUNTIME_KNOBS`)
RUNTIME_KNOBS = ("matcher", "advertising", "flush_cap", "duplicates_capacity")


class TransportError(RuntimeError):
    """Raised when a transport is used incorrectly or fails to settle."""


class Transport(ABC):
    """A substrate that moves messages between processes over links.

    The contract every backend honours:

    * :meth:`make_link` wires a bidirectional FIFO link between two
      processes and attaches an endpoint on each side (``a.send(b.name, m)``
      works immediately afterwards);
    * the returned link exposes the :class:`~repro.net.link.Link` surface —
      ``up``/``set_up``/``disconnect``/``reconnect``, per-direction
      :class:`~repro.net.link.LinkStats`, ``total_messages``/``total_bytes``
      /``messages_of_kind`` and the ``on_drop`` hook;
    * :attr:`clock` is a Simulator-compatible scheduling surface (``now``,
      ``schedule``, ``schedule_at``, ``call_now``, ``run``,
      ``run_until_idle``) that processes receive as their ``sim``.
    """

    #: backend name, matching the ``transport=`` knob value that builds it
    name: str = "abstract"

    #: whether the mobility layer (wireless channels, replicators) can run on
    #: this backend.  Requires dynamic link support: links that can be opened
    #: and torn down *while the substrate is running* (a wireless attach),
    #: not just wired up at build time.  Backends opt in explicitly.
    supports_mobility: bool = False

    #: whether :meth:`inject_fault` works on this backend.  Backends opt in
    #: explicitly, the same way they opt into mobility.
    supports_fault_injection: bool = False

    #: the :class:`~repro.config.SystemConfig` adopted via :meth:`apply_config`
    #: (``None`` until one is applied; legacy kwarg construction never sets it)
    _system_config = None

    #: the last flush cap applied via :meth:`set_flush_cap` (``None`` = default)
    _flush_cap: Optional[int] = None

    @property
    @abstractmethod
    def clock(self):
        """The scheduling surface handed to processes as their ``sim``."""

    @abstractmethod
    def make_link(
        self,
        a: Process,
        b: Process,
        latency: float = 0.001,
        deliver_in_flight_on_down: bool = True,
    ):
        """Create, attach and return a bidirectional FIFO link between ``a`` and ``b``."""

    @abstractmethod
    def run(self, until: Optional[float] = None) -> float:
        """Advance the substrate (to ``until`` when given); returns the clock's time."""

    @abstractmethod
    def run_until_idle(self) -> float:
        """Run until no traffic or scheduled work remains; returns the clock's time."""

    # ------------------------------------------------------------ fault plane
    def inject_fault(self, action: str, process: Optional[Process] = None, link=None) -> None:
        """Apply one fault primitive to a process or link of this substrate.

        The transport-agnostic seam used by
        :class:`~repro.net.faults.FaultInjector`: ``"crash"``/``"restart"``
        act on ``process``, ``"link_down"``/``"link_up"`` on ``link`` (see
        :data:`FAULT_ACTIONS`).  The in-process backends flip the exact same
        switches operational tooling would (``Process.alive``,
        ``Link.set_up``), preserving byte-identical scheduling on the
        simulator; the cluster backend overrides this with real
        SIGKILL/respawn and TCP-level link severing.
        """
        if not self.supports_fault_injection:
            raise TransportError(
                f"the {self.name!r} transport does not support fault injection"
            )
        if action == "crash":
            self._fault_target(process, "process").alive = False
        elif action == "restart":
            self._fault_target(process, "process").alive = True
        elif action == "link_down":
            self._fault_target(link, "link").set_up(False)
        elif action == "link_up":
            self._fault_target(link, "link").set_up(True)
        else:
            raise TransportError(
                f"unknown fault action {action!r}; available: {FAULT_ACTIONS}"
            )

    @staticmethod
    def _fault_target(target, role: str):
        if target is None:
            raise TransportError(f"this fault action requires a {role} target")
        return target

    # ------------------------------------------------------------ dynamic links
    def open_dynamic_link(
        self,
        a: Process,
        b: Process,
        latency: float = 0.001,
        deliver_in_flight_on_down: bool = True,
        ready: Optional[Callable[[Any], None]] = None,
    ):
        """Create a link *at runtime* — the substrate half of a wireless attach.

        Unlike :meth:`make_link` (build-time wiring), this may be called from
        inside a running substrate (a scheduled attach completion), so
        backends with asynchronous connection setup establish the link in the
        background.  ``ready(link)`` fires exactly once, after both endpoints
        are attached and traffic can flow; until then the link must not be
        used.  The returned link is the same object ``ready`` receives.

        The default implementation is synchronous (correct for the
        simulator): create the link and call ``ready`` immediately.
        """
        link = self.make_link(
            a, b, latency=latency, deliver_in_flight_on_down=deliver_in_flight_on_down
        )
        if ready is not None:
            ready(link)
        return link

    def close_dynamic_link(self, link) -> None:
        """Release substrate resources of a dynamically opened link.

        Called after the link has been logically disconnected (a wireless
        detach).  A no-op on the simulator; socket backends close the TCP
        connections the link held so handover churn does not leak sockets.
        """

    def resource_sizes(self) -> Dict[str, int]:
        """Sizes of the substrate resources this transport currently holds.

        The observability half of the fault plane: after a fault/recovery
        cycle has fully quiesced, every size reported here must be back at
        its pre-fault baseline — the non-growth invariant gated by the chaos
        fuzzer and soak harness (:mod:`repro.pubsub.invariants`).  Backends
        report whatever they actually allocate (links, servers, timers,
        writers, registry entries); the base transport holds nothing.
        """
        return {}

    # ----------------------------------------------------------- control plane
    @property
    def brokers(self) -> Dict[str, Any]:
        """Brokers built on this transport, by name (the control-plane roster)."""
        roster = getattr(self, "_brokers", None)
        if roster is None:
            roster = self._brokers = {}
        return roster

    def apply_config(self, config) -> None:
        """Adopt a :class:`~repro.config.SystemConfig` for this substrate.

        Records the config (later :meth:`build_broker` calls read the broker
        knobs off it) and applies the transport-level knobs immediately.
        """
        self._system_config = config
        self.set_flush_cap(config.flush_cap)
        self.set_metrics_enabled(config.metrics)

    def set_flush_cap(self, cap: int) -> None:
        """Retune the wire flush cap.

        The base implementation only validates and records the value: the
        simulator moves object references and holds no wire buffers, so the
        knob is inert there.  Socket backends override this to retune their
        live write batching.
        """
        if not isinstance(cap, int) or isinstance(cap, bool) or cap < 1:
            raise ValueError(f"flush_cap must be a positive integer, got {cap!r}")
        self._flush_cap = cap

    def set_metrics_enabled(self, enabled: bool) -> None:
        """Flip transport-level live instrumentation; a no-op on the simulator."""

    def configure(self, broker, changes: Dict[str, Any]) -> Dict[str, Any]:
        """Apply runtime knob changes to a *live* broker of this substrate.

        ``broker`` is a broker object built by :meth:`build_broker` or its
        name; ``changes`` maps knob names (see :data:`RUNTIME_KNOBS`) to new
        values.  Matcher/advertising flips rebuild the broker's index state
        from the routing table and are verified in place (identical
        ``destinations()`` and advertised-filter multisets before and
        after); ``flush_cap`` retunes this transport's write batching.
        Returns the applied values.  The cluster backend overrides this to
        ship the changes to the broker's process as a ``configure`` control
        op.
        """
        changes = dict(changes)
        unknown = sorted(set(changes) - set(RUNTIME_KNOBS))
        if unknown:
            raise ValueError(
                f"unknown runtime knob(s) {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(RUNTIME_KNOBS)}"
            )
        if isinstance(broker, str):
            try:
                broker = self.brokers[broker]
            except KeyError:
                raise TransportError(f"no broker named {broker!r} on this transport") from None
        flush_cap = changes.pop("flush_cap", None)
        applied: Dict[str, Any] = broker.reconfigure(changes) if changes else {}
        if flush_cap is not None:
            self.set_flush_cap(flush_cap)
            applied["flush_cap"] = self._flush_cap
        return applied

    def transport_metrics(self) -> Dict[str, Any]:
        """This substrate's own live instruments plus point-in-time gauges."""
        return {"counters": {}, "histograms": {}, "gauges": self.resource_sizes()}

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The full control-plane view: transport instruments + every broker.

        A plain (JSON-safe) dict.  In-process backends read their brokers
        directly; the cluster backend overrides this to gather the same
        shape over the registry control channel.
        """
        return {
            "transport": self.transport_metrics(),
            "brokers": {
                name: broker.metrics_snapshot() for name, broker in sorted(self.brokers.items())
            },
        }

    def build_broker(
        self,
        name: str,
        routing: str = "simple",
        matcher: str = "indexed",
        advertising: str = "incremental",
    ):
        """Construct a broker process for this substrate.

        In-process backends return a real :class:`~repro.pubsub.broker.Broker`
        running on this transport's clock; the multi-process cluster backend
        overrides this to return a :class:`~repro.net.cluster.RemoteBroker`
        proxy whose actual broker lives in a spawned child process.  When a
        :class:`~repro.config.SystemConfig` was applied, its
        ``duplicates_capacity`` and ``metrics`` knobs shape the new broker.
        """
        from ..obs.metrics import MetricsRegistry  # lazy: net/ stays importable alone
        from ..pubsub.broker import Broker

        config = self._system_config
        extra: Dict[str, Any] = {}
        if config is not None:
            extra["duplicates_capacity"] = config.duplicates_capacity
            extra["metrics"] = MetricsRegistry(enabled=config.metrics)
        broker = Broker(
            self.clock, name, routing=routing, matcher=matcher, advertising=advertising, **extra
        )
        self.brokers[name] = broker
        return broker

    def close(self) -> None:
        """Release substrate resources (sockets, event loops).  Idempotent."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


# ------------------------------------------------------------------ simulator


class SimTransport(Transport):
    """The deterministic discrete-event backend (the default).

    A thin shell around :class:`~repro.net.simulator.Simulator` +
    :class:`~repro.net.link.Link`: link construction, FIFO delivery floors,
    latency accounting and connect/disconnect all behave exactly as they did
    before the transport refactor — the golden-trace cross-check test pins
    the delivered byte sequence to the pre-refactor recording.
    """

    name = "sim"
    supports_mobility = True
    supports_fault_injection = True

    def __init__(self, sim: Optional[Simulator] = None):
        if sim is not None and not isinstance(sim, Simulator):
            raise TypeError(
                f"SimTransport wraps a Simulator, got {type(sim).__name__} "
                "(did you pass a positional argument into the wrong slot?)"
            )
        self.sim = sim if sim is not None else Simulator()

    @property
    def clock(self) -> Simulator:
        return self.sim

    def make_link(
        self,
        a: Process,
        b: Process,
        latency: float = 0.001,
        deliver_in_flight_on_down: bool = True,
    ) -> Link:
        return Link(
            self.sim, a, b, latency=latency, deliver_in_flight_on_down=deliver_in_flight_on_down
        )

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def run_until_idle(self) -> float:
        return self.sim.run_until_idle()

    def resource_sizes(self) -> Dict[str, int]:
        # the simulator holds no sockets; pending events are its only
        # resource, and a quiesced simulator must have drained them all
        return {"pending_events": self.sim.pending}


# -------------------------------------------------------------------- asyncio


class _ClockHandle:
    """Cancellation handle for :meth:`AsyncioClock.schedule` (EventHandle-shaped)."""

    __slots__ = ("cancelled", "executed", "_timer", "_clock")

    def __init__(self, clock: "AsyncioClock"):
        self.cancelled = False
        self.executed = False
        self._timer: Optional[asyncio.TimerHandle] = None
        self._clock = clock

    def cancel(self) -> None:
        if self.cancelled or self.executed:
            return
        self.cancelled = True
        if self._timer is not None:
            self._timer.cancel()
        self._clock.pending_timers -= 1


class AsyncioClock:
    """Simulator-compatible scheduling surface over a real event loop.

    ``now`` is monotonic wall time since the transport started, so delivery
    latencies measured against it are real end-to-end latencies.  Scheduled
    callbacks only fire while the transport is being driven (``run`` /
    ``run_until_idle``), mirroring how simulator events only fire inside
    ``Simulator.run``.
    """

    def __init__(self, transport: "AsyncioTransport"):
        self._transport = transport
        self._loop = transport._loop
        self._t0 = self._loop.time()
        #: scheduled-but-not-yet-fired callbacks; part of the idle condition
        self.pending_timers = 0

    @property
    def now(self) -> float:
        return self._loop.time() - self._t0

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> _ClockHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        handle = _ClockHandle(self)
        self.pending_timers += 1

        def fire() -> None:
            handle.executed = True
            self.pending_timers -= 1
            try:
                callback(*args)
            except BaseException as exc:
                # surface the failure through run_until_idle, matching the
                # simulator backend where a raising event fails the run
                transport = self._transport
                if transport._pending_error is None:
                    transport._pending_error = exc

        handle._timer = self._loop.call_later(delay, fire)
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> _ClockHandle:
        now = self.now
        if time < now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, which is before now={now:.6f}"
            )
        return self.schedule(time - now, callback, *args)

    def call_now(self, callback: Callable[..., Any], *args: Any) -> _ClockHandle:
        return self.schedule(0.0, callback, *args)

    # ---------------------------------------------------------------- running
    def run(self, until: Optional[float] = None) -> float:
        return self._transport.run(until=until)

    def run_until_idle(self, max_events: int = 0) -> float:
        return self._transport.run_until_idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AsyncioClock(now={self.now:.3f}, pending_timers={self.pending_timers})"


class _AsyncioDirectedEndpoint(LinkEndpoint):
    """The sending side of one direction of an :class:`AsyncioLink`.

    ``transmit`` serializes the message to a length-prefixed wire frame and
    writes it to this direction's TCP connection; the receiving side's
    server decodes and dispatches it.  Per-direction FIFO is TCP's.
    Serialising endpoints share fan-out messages, so a broker hop reuses
    one pre-encoded frame across every destination link.
    """

    shares_fanout = True

    def __init__(self, link: "AsyncioLink", source: Process, target: Process):
        self.link = link
        self.source = source
        self.target = target
        self.stats = LinkStats()
        self._writer: Optional[asyncio.StreamWriter] = None
        #: frames framed but not yet written to the socket (hop-level write
        #: batching under a batched codec; always empty under JSON)
        self._buffer = bytearray()
        #: frames written but not yet handed to the target process; lets the
        #: transport reconcile its in-flight counter if the connection dies
        self.undelivered = 0

    def transmit(self, message: Message) -> None:
        link = self.link
        if not link.up:
            self.stats.record_drop()
            link.on_drop(message, self.source, self.target)
            return
        self.stats.record(message)
        transport = link.transport
        transport._send_frames(self, transport.codec.frame_message(message), count=1)

    def transmit_many(self, messages: List[Message]) -> None:
        if not messages:
            return
        link = self.link
        if not link.up:
            for message in messages:
                self.stats.record_drop()
                link.on_drop(message, self.source, self.target)
            return
        transport = link.transport
        frame_message = transport.codec.frame_message
        burst = bytearray()
        for message in messages:
            self.stats.record(message)
            burst += frame_message(message)
        transport._send_frames(self, bytes(burst), count=len(messages))


class AsyncioLink:
    """A bidirectional link carried by two localhost TCP connections.

    Mirrors the :class:`~repro.net.link.Link` surface.  ``latency`` is
    honoured as a per-message delivery floor (the receiver sleeps before
    dispatching), on top of whatever the real sockets add; pass ``0.0`` for
    raw socket speed.
    """

    def __init__(
        self,
        transport: "AsyncioTransport",
        link_id: int,
        a: Process,
        b: Process,
        latency: float,
        deliver_in_flight_on_down: bool,
    ):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.transport = transport
        self.link_id = link_id
        self.a = a
        self.b = b
        self.latency = latency
        self.up = True
        self.deliver_in_flight_on_down = deliver_in_flight_on_down
        self._a_to_b = _AsyncioDirectedEndpoint(self, a, b)
        self._b_to_a = _AsyncioDirectedEndpoint(self, b, a)

    async def _open(self) -> None:
        await self.transport._open_direction(self._a_to_b)
        await self.transport._open_direction(self._b_to_a)
        self.a.attach_link(self.b.name, self._a_to_b)
        self.b.attach_link(self.a.name, self._b_to_a)

    def _endpoint_into(self, target: Process) -> _AsyncioDirectedEndpoint:
        """The directed endpoint whose traffic arrives at ``target``."""
        return self._a_to_b if target is self.b else self._b_to_a

    # ------------------------------------------------------------------ state
    def set_up(self, up: bool) -> None:
        self.up = up

    def disconnect(self) -> None:
        """Tear the link down logically; the TCP connections stay for ``reconnect``."""
        self.up = False
        self.a.detach_link(self.b.name)
        self.b.detach_link(self.a.name)

    def reconnect(self) -> None:
        self.up = True
        self.a.attach_link(self.b.name, self._a_to_b)
        self.b.attach_link(self.a.name, self._b_to_a)

    def abandon(self) -> None:
        """Tear down a link that lost an attachment race (see Link.abandon).

        Only routing entries this link actually owns are removed; a rival
        link's endpoints registered under the same peer names survive.
        """
        self.up = False
        for owner, peer_name, endpoint in (
            (self.a, self.b.name, self._a_to_b),
            (self.b, self.a.name, self._b_to_a),
        ):
            if owner.links.get(peer_name) is endpoint:
                owner.detach_link(peer_name)

    # ------------------------------------------------------------------ stats
    @property
    def stats_a_to_b(self) -> LinkStats:
        return self._a_to_b.stats

    @property
    def stats_b_to_a(self) -> LinkStats:
        return self._b_to_a.stats

    def total_messages(self) -> int:
        return self._a_to_b.stats.messages + self._b_to_a.stats.messages

    def total_bytes(self) -> int:
        return self._a_to_b.stats.bytes + self._b_to_a.stats.bytes

    def messages_of_kind(self, kind: str) -> int:
        return self._a_to_b.stats.by_kind.get(kind, 0) + self._b_to_a.stats.by_kind.get(kind, 0)

    # ------------------------------------------------------------------ hooks
    def on_drop(self, message: Message, source: Process, target: Process) -> None:
        """Hook invoked when a message is dropped; overridden in tests if needed."""

    def _close_writers(self) -> None:
        for endpoint in (self._a_to_b, self._b_to_a):
            if endpoint._writer is not None:
                endpoint._writer.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"AsyncioLink({self.a.name}<->{self.b.name}, {state})"


class AsyncioTransport(Transport):
    """Real asyncio TCP sockets on localhost.

    Every process registered through :meth:`make_link` gets its own TCP
    server on an ephemeral port; each link direction is a dedicated TCP
    connection from the sender to the receiver's server, opened with a
    handshake frame naming the link, then carrying one length-prefixed wire
    frame per message.

    The stack above stays synchronous: sends buffer onto the socket and the
    event loop only spins while the transport is *driven*
    (:meth:`run`/:meth:`run_until_idle`), which keeps the programming model
    identical to the simulator — build, publish, then run to quiescence.
    Quiescence is exact, not heuristic: every frame written increments an
    in-flight counter that is only decremented after the receiving process
    finished handling the message, so "no in-flight frames and no pending
    timers" means the system is genuinely idle.
    """

    name = "asyncio"
    supports_mobility = True
    supports_fault_injection = True

    #: default cap on run_until_idle, so a routing bug cannot hang a test run
    DEFAULT_IDLE_TIMEOUT = 30.0

    #: flush threshold for hop-level write batching (batched codecs only): a
    #: buffered burst is written out as soon as it reaches this many bytes,
    #: so batching never holds more than one socket write's worth of frames
    #: (individual frames are still bounded by ``wire.MAX_FRAME_SIZE``)
    FLUSH_CAP = 64 * 1024

    def __init__(self, host: str = "127.0.0.1", codec: "wire.Codec | str | None" = None):
        self.host = host
        self.codec = wire.get_codec(codec)
        self._loop = asyncio.new_event_loop()
        self._clock = AsyncioClock(self)
        self._processes: Dict[str, Process] = {}
        self._servers: Dict[str, asyncio.AbstractServer] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._links: Dict[int, AsyncioLink] = {}
        self._link_seq = itertools.count(1)
        self._inflight = 0
        self._pending_error: Optional[BaseException] = None
        self._closed = False
        self.links: List[AsyncioLink] = []
        #: endpoints holding buffered frames, flushed in one scheduled pass
        self._dirty: "set[_AsyncioDirectedEndpoint]" = set()
        self._flush_scheduled = False
        from ..obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        """Cache instrument references so the send path pays no dict probes."""
        self._frames_sent = self.metrics.counter("transport.frames_sent")
        self._bytes_sent = self.metrics.counter("transport.bytes_sent")
        self._write_bytes = self.metrics.histogram("transport.socket_write_bytes")

    def set_metrics_enabled(self, enabled: bool) -> None:
        """Swap in a fresh registry; call before traffic, not mid-run."""
        from ..obs.metrics import MetricsRegistry

        if enabled != self.metrics.enabled:
            self.metrics = MetricsRegistry(enabled=enabled)
            self._bind_instruments()

    def set_flush_cap(self, cap: int) -> None:
        """Retune the live write-batching threshold (instance-level override)."""
        super().set_flush_cap(cap)
        self.FLUSH_CAP = cap

    def transport_metrics(self) -> Dict[str, Any]:
        snapshot = self.metrics.snapshot()
        return {
            "counters": snapshot["counters"],
            "histograms": snapshot["histograms"],
            "gauges": self.resource_sizes(),
        }

    @property
    def clock(self) -> AsyncioClock:
        return self._clock

    # ------------------------------------------------------------------ wiring
    def make_link(
        self,
        a: Process,
        b: Process,
        latency: float = 0.001,
        deliver_in_flight_on_down: bool = True,
    ) -> AsyncioLink:
        self._require_open()
        self._loop.run_until_complete(self._ensure_server(a))
        self._loop.run_until_complete(self._ensure_server(b))
        link = AsyncioLink(self, next(self._link_seq), a, b, latency, deliver_in_flight_on_down)
        self._links[link.link_id] = link
        self.links.append(link)
        self._loop.run_until_complete(link._open())
        return link

    def open_dynamic_link(
        self,
        a: Process,
        b: Process,
        latency: float = 0.001,
        deliver_in_flight_on_down: bool = True,
        ready: Optional[Callable[[Any], None]] = None,
    ) -> AsyncioLink:
        """Establish a link while the event loop may already be running.

        A wireless attach completes inside a scheduled callback, i.e. inside
        the running loop, where :meth:`make_link`'s ``run_until_complete``
        would deadlock.  The connection setup (server registration, TCP
        connects, handshakes) therefore runs as a task; it is counted as
        pending work so ``run_until_idle`` cannot declare the system idle
        while an attachment is still being established.  ``ready(link)``
        fires from inside the loop once traffic can flow.
        """
        self._require_open()
        link = AsyncioLink(self, next(self._link_seq), a, b, latency, deliver_in_flight_on_down)
        self._links[link.link_id] = link
        self.links.append(link)

        async def establish() -> None:
            try:
                await self._ensure_server(a)
                await self._ensure_server(b)
                await link._open()
                if ready is not None:
                    ready(link)
            except BaseException as exc:
                if self._pending_error is None:
                    self._pending_error = exc
            finally:
                self._clock.pending_timers -= 1

        self._clock.pending_timers += 1
        if self._loop.is_running():
            self._loop.create_task(establish())
        else:
            self._loop.run_until_complete(establish())
        return link

    def close_dynamic_link(self, link: AsyncioLink) -> None:
        """Close the TCP connections of a torn-down wireless link.

        Graceful: bytes already written (a ``client_leaving`` farewell) are
        flushed to the receiver before the connection closes.  The link is
        also dropped from the transport's registry so a long roaming run
        (thousands of attach/detach cycles) does not accumulate dead links;
        connections already serving the link hold their own reference.
        """
        self._flush_endpoint(link._a_to_b)
        self._flush_endpoint(link._b_to_a)
        link._close_writers()
        self._links.pop(link.link_id, None)
        try:
            self.links.remove(link)
        except ValueError:
            pass

    async def _ensure_server(self, process: Process) -> None:
        if process.name in self._servers:
            if self._processes[process.name] is not process:
                raise TransportError(f"duplicate process name {process.name!r} on this transport")
            return
        self._processes[process.name] = process
        server = await asyncio.start_server(
            lambda reader, writer, _p=process: self._serve_connection(_p, reader, writer),
            host=self.host,
            port=0,
        )
        self._servers[process.name] = server
        self._addresses[process.name] = server.sockets[0].getsockname()[:2]

    async def _open_direction(self, endpoint: _AsyncioDirectedEndpoint) -> None:
        host, port = self._addresses[endpoint.target.name]
        _reader, writer = await asyncio.open_connection(host, port)
        handshake = {
            "link": endpoint.link.link_id,
            "source": endpoint.source.name,
            "target": endpoint.target.name,
            **wire.handshake_fields(self.codec),
        }
        writer.write(wire.frame(wire.encode_control(handshake)))
        await writer.drain()
        endpoint._writer = writer

    # --------------------------------------------------------------- receiving
    async def _serve_connection(
        self, process: Process, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        codec = self.codec
        decode_message = codec.decode_message
        lean = codec.batched
        decoder = wire.FrameDecoder()
        link: Optional[AsyncioLink] = None
        saw_handshake = False
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                # every frame in this read shares one arrival time; latency is
                # applied as a delivery floor relative to it, so a burst pays
                # the latency once, not once per message (pipelined, like the
                # simulator's delivery floors)
                arrival = self._loop.time()
                for body in decoder.feed(data):
                    if not saw_handshake:
                        handshake = wire.decode_control(body)
                        if handshake.get("target") != process.name:
                            raise wire.WireError(
                                f"handshake for {handshake.get('target')!r} arrived at "
                                f"{process.name!r}"
                            )
                        wire.check_handshake_codec(handshake, codec)
                        link = self._links.get(handshake.get("link"))
                        saw_handshake = True
                        # the handshake fixed the codec; from here on every
                        # body must lead with this codec's first byte
                        decoder.codec = codec
                        continue
                    message = decode_message(body)
                    if lean and link is not None and link.latency == 0:
                        # zero-latency fast path for the batched codec: no
                        # coroutine per message, identical drop/accounting
                        # semantics to _dispatch
                        endpoint = link._endpoint_into(process)
                        try:
                            if not link.up and not link.deliver_in_flight_on_down:
                                endpoint.stats.record_drop()
                                link.on_drop(message, endpoint.source, endpoint.target)
                            else:
                                process.deliver(message)
                        finally:
                            self._inflight -= 1
                            endpoint.undelivered -= 1
                        continue
                    await self._dispatch(link, process, message, arrival)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        except BaseException as exc:  # surface decode/handler bugs to the driver
            if self._pending_error is None:
                self._pending_error = exc
        finally:
            # frames already written (and counted) towards this now-dead
            # connection will never be dispatched; forget them so later
            # run_until_idle calls don't wait out the timeout on a ghost,
            # and mark the endpoint dead so later transmits fail loudly
            # instead of re-inflating the counter
            if link is not None:
                endpoint = link._endpoint_into(process)
                self._inflight -= endpoint.undelivered
                endpoint.undelivered = 0
                endpoint._writer = None
            writer.close()

    async def _dispatch(
        self,
        link: Optional[AsyncioLink],
        process: Process,
        message: Message,
        arrival: float,
    ) -> None:
        endpoint = link._endpoint_into(process) if link is not None else None
        try:
            if link is not None:
                if link.latency > 0:
                    delay = arrival + link.latency - self._loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                # the up-check happens at *delivery* time — after the latency
                # window — exactly like the sim endpoint's _deliver, so a link
                # torn down while the message was in flight still drops it
                # when deliver_in_flight_on_down is off
                if not link.up and not link.deliver_in_flight_on_down:
                    endpoint.stats.record_drop()
                    link.on_drop(message, endpoint.source, endpoint.target)
                    return
            process.deliver(message)
        finally:
            self._inflight -= 1
            if endpoint is not None:
                endpoint.undelivered -= 1

    # ----------------------------------------------------------------- sending
    def _send_frames(self, endpoint: "_AsyncioDirectedEndpoint", data: bytes, count: int) -> None:
        if endpoint._writer is None:
            raise TransportError("link endpoint is not connected")
        self._inflight += count
        endpoint.undelivered += count
        self._frames_sent.inc(count)
        self._bytes_sent.inc(len(data))
        if not self.codec.batched:
            endpoint._writer.write(data)
            self._write_bytes.observe(len(data))
            return
        # hop-level batching: coalesce the dispatch burst into one socket
        # write.  In-flight accounting happens at buffer time (above), so
        # run_until_idle cannot declare the system idle before the flush.
        buffer = endpoint._buffer
        buffer += data
        if len(buffer) >= self.FLUSH_CAP:
            self._flush_endpoint(endpoint)
            return
        self._dirty.add(endpoint)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush_dirty)

    def _flush_endpoint(self, endpoint: "_AsyncioDirectedEndpoint") -> None:
        """Write an endpoint's buffered frames out in a single socket write."""
        buffer = endpoint._buffer
        if buffer:
            if endpoint._writer is not None:
                # a dead connection already reconciled the in-flight counter
                # (see _serve_connection's finally); its buffer just drops
                endpoint._writer.write(bytes(buffer))
                self._write_bytes.observe(len(buffer))
            buffer.clear()
        self._dirty.discard(endpoint)

    def _flush_dirty(self) -> None:
        """Scheduled once per event-loop turn: flush every buffering endpoint."""
        self._flush_scheduled = False
        dirty, self._dirty = self._dirty, set()
        for endpoint in dirty:
            self._flush_endpoint(endpoint)

    # ----------------------------------------------------------------- driving
    def run(self, until: Optional[float] = None) -> float:
        """Spin the event loop; with ``until``, for that many clock seconds."""
        self._require_open()
        if until is None:
            return self.run_until_idle()
        delay = until - self._clock.now
        if delay > 0:
            self._loop.run_until_complete(asyncio.sleep(delay))
        self._raise_pending_error()
        return self._clock.now

    def run_until_idle(self, timeout: Optional[float] = None, settle: float = 0.02) -> float:
        """Drive the loop until no in-flight frames or pending timers remain.

        ``settle`` is an extra idle-confirmation window after the counters
        first reach zero, guarding against a connection handler that has
        read bytes but not yet fed its frame decoder.
        """
        self._require_open()
        timeout = timeout if timeout is not None else self.DEFAULT_IDLE_TIMEOUT

        async def drain() -> None:
            deadline = self._loop.time() + timeout
            settled_since: Optional[float] = None
            while True:
                if self._pending_error is not None:
                    return
                if self._inflight == 0 and self._clock.pending_timers == 0:
                    now = self._loop.time()
                    if settled_since is None:
                        settled_since = now
                    elif now - settled_since >= settle:
                        return
                else:
                    settled_since = None
                if self._loop.time() > deadline:
                    raise TransportError(
                        f"run_until_idle timed out after {timeout}s "
                        f"({self._inflight} frames in flight, "
                        f"{self._clock.pending_timers} timers pending)"
                    )
                await asyncio.sleep(0.001)

        self._loop.run_until_complete(drain())
        self._raise_pending_error()
        return self._clock.now

    def _raise_pending_error(self) -> None:
        if self._pending_error is not None:
            error, self._pending_error = self._pending_error, None
            raise error

    def _require_open(self) -> None:
        if self._closed:
            raise TransportError("transport is closed")

    def resource_sizes(self) -> Dict[str, int]:
        """Live socket resources; handover/fault churn must not grow them.

        ``open_writers`` counts the directed endpoints whose TCP writer is
        still open — a closed dynamic link that left its writers behind
        shows up here even after the link itself was dropped from the
        registry.
        """
        open_writers = sum(
            1
            for link in self._links.values()
            for endpoint in (link._a_to_b, link._b_to_a)
            if endpoint._writer is not None and not endpoint._writer.is_closing()
        )
        buffered = sum(
            len(endpoint._buffer)
            for link in self._links.values()
            for endpoint in (link._a_to_b, link._b_to_a)
        )
        return {
            "links": len(self._links),
            "servers": len(self._servers),
            "pending_timers": self._clock.pending_timers,
            "open_writers": open_writers,
            "inflight_frames": self._inflight,
            "buffered_bytes": buffered,
        }

    # ----------------------------------------------------------------- closing
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True

        async def shutdown() -> None:
            for link in self._links.values():
                link._close_writers()
            for server in self._servers.values():
                server.close()
            for server in self._servers.values():
                await server.wait_closed()
            current = asyncio.current_task()
            tasks = [t for t in asyncio.all_tasks() if t is not current and not t.done()]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        self._loop.run_until_complete(shutdown())
        self._loop.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._processes)} processes"
        return f"AsyncioTransport({state})"


# -------------------------------------------------------------------- factory

TransportSpec = Union[None, str, Simulator, Transport]


def make_transport(
    spec: TransportSpec = None,
    sim: Optional[Simulator] = None,
    codec: "wire.Codec | str | None" = None,
) -> Transport:
    """Resolve the ``transport=`` knob into a backend instance.

    Accepts a backend name (``"sim"``/``"asyncio"``), an existing
    :class:`Transport`, a bare :class:`Simulator` (wrapped in
    :class:`SimTransport`), or ``None`` (simulator default).  ``sim`` is the
    simulator to wrap when the spec resolves to the sim backend.  ``codec``
    selects the wire codec of the socket backends (see
    :data:`repro.net.wire.CODEC_NAMES`); the simulator moves object
    references and never serializes, so it validates the name and ignores it
    — letting one ``codec=`` knob drive sim-oracle cross-checks unchanged.
    """
    if isinstance(spec, Transport):
        if sim is not None and not (isinstance(spec, SimTransport) and spec.sim is sim):
            # silently dropping the caller's Simulator would leave them
            # driving a clock nothing listens to — fail loudly instead
            raise ValueError(
                "got both a Simulator and a Transport with its own clock; "
                "pass one or the other (or SimTransport(sim) wrapping that simulator)"
            )
        if codec is not None:
            wanted = wire.get_codec(codec)
            actual = getattr(spec, "codec", None)
            if actual is not None and actual is not wanted:
                raise ValueError(
                    f"transport already speaks the {actual.name!r} codec; "
                    f"cannot re-resolve it with codec={wanted.name!r}"
                )
        return spec
    wire.get_codec(codec)  # validate the name up front for every backend
    if isinstance(spec, Simulator):
        return SimTransport(spec)
    if spec is None or spec == "sim":
        return SimTransport(sim)
    if spec == "asyncio":
        if sim is not None:
            raise ValueError("the asyncio backend does not take a Simulator")
        return AsyncioTransport(codec=codec)
    if spec == "cluster":
        if sim is not None:
            raise ValueError("the cluster backend does not take a Simulator")
        from .cluster import ClusterTransport  # lazy: avoid a subprocess import cycle

        return ClusterTransport(codec=codec)
    raise ValueError(f"unknown transport {spec!r}; available: {TRANSPORT_NAMES}")
