"""Deterministic discrete-event simulator.

The original REBECA middleware runs as a set of Java processes connected by
TCP links.  For the reproduction we replace the physical deployment with a
deterministic discrete-event simulation: every broker, client and replicator
is a :class:`~repro.net.process.Process` attached to a single
:class:`Simulator`, and every message exchange is an event scheduled on the
simulator's queue.  This preserves the only properties the paper's algorithms
rely on — per-link FIFO delivery, known (simulated) latencies and explicit
connect/disconnect events — while making every run reproducible.

Typical usage::

    sim = Simulator()
    sim.schedule(5.0, lambda: print("five seconds in"))
    sim.run()
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


# Heap entries are plain ``(time, seq, handle)`` tuples: ``seq`` is unique, so
# comparisons never reach the handle, and tuple ordering avoids the dataclass
# ``__lt__`` dispatch every simulated message used to pay on push/pop.


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable for cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "executed", "_sim", "_epoch")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: "Simulator" = None,
        epoch: int = 0,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.executed = False
        self._sim = sim
        self._epoch = epoch

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped.

        Cancelling an event that already ran (or was already cancelled) is a
        no-op — the handle is no longer in the queue, so there is nothing to
        account for.
        """
        if self.cancelled or self.executed:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled(self._epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("executed" if self.executed else "pending")
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"EventHandle(t={self.time:.3f}, {name}, {state})"


class Simulator:
    """A single-threaded discrete-event scheduler.

    Events are callables executed at a simulated timestamp.  Events scheduled
    for the same timestamp run in insertion order, which gives deterministic
    behaviour and preserves FIFO semantics for same-latency links.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0
        self.events_scheduled = 0
        # count of cancelled-but-not-yet-popped events, so ``pending`` is O(1);
        # the epoch guards the counter against handles cancelled after clear()
        self._cancelled_in_queue = 0
        self._epoch = 0

    def _note_cancelled(self, epoch: int) -> None:
        if epoch == self._epoch:
            self._cancelled_in_queue += 1

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, which is before now={self._now:.6f}"
            )
        seq = next(self._seq)
        handle = EventHandle(time, seq, callback, args, self, self._epoch)
        heapq.heappush(self._queue, (time, seq, handle))
        self.events_scheduled += 1
        return handle

    def call_now(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback`` to run at the current time (after pending same-time events)."""
        return self.schedule(0.0, callback, *args)

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` if the queue is empty."""
        while self._queue:
            time, _seq, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._now = time
            self.events_processed += 1
            handle.executed = True
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulated time when the run stopped.
        """
        self._running = True
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                processed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (bounded by ``max_events`` as a safety net)."""
        return self.run(max_events=max_events)

    def _peek_time(self) -> Optional[float]:
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._cancelled_in_queue -= 1
        if not queue:
            return None
        return queue[0][0]

    # ------------------------------------------------------------------ misc
    @property
    def pending(self) -> int:
        """Number of non-cancelled events still in the queue (O(1))."""
        return len(self._queue) - self._cancelled_in_queue

    def clear(self) -> None:
        """Drop all pending events (useful between experiment repetitions)."""
        self._queue.clear()
        self._cancelled_in_queue = 0
        # cancelling a handle from before the clear must not skew the counter
        self._epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.3f}, pending={self.pending})"


class PeriodicTask:
    """Helper that re-schedules a callback at a fixed period until stopped.

    Used by workload generators (periodic publishers) and by mobility models
    (periodic movement steps).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        start_delay: float = 0.0,
        jitter: Callable[[], float] | None = None,
        until: Optional[float] = None,
    ):
        if period <= 0:
            raise SimulationError("period must be positive")
        self.sim = sim
        self.period = period
        self.callback = callback
        self.jitter = jitter
        self.until = until
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self.fired = 0
        self._handle = sim.schedule(start_delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        if self.until is not None and self.sim.now > self.until:
            self._stopped = True
            return
        self.fired += 1
        self.callback()
        if self._stopped:
            return
        delay = self.period
        if self.jitter is not None:
            delay = max(1e-9, delay + self.jitter())
        next_time = self.sim.now + delay
        if self.until is not None and next_time > self.until:
            self._stopped = True
            return
        self._handle = self.sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop the task; the pending occurrence (if any) is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped


def drain(sim: Simulator, rounds: Iterable[float]) -> None:
    """Run the simulator to each timestamp in ``rounds`` in order.

    Convenience for tests that want to interleave external actions with
    simulated time progression.
    """
    for t in rounds:
        sim.run(until=t)
