"""Spawn entry point for broker child processes.

The cluster runner launches children as ``python -m repro.net.cluster_node
'<json spec>'``.  This shim exists (instead of ``-m repro.net.cluster``)
because ``repro.net/__init__`` imports :mod:`repro.net.cluster` eagerly, and
running an already-imported module with ``-m`` makes runpy warn about
double execution; this module is imported by nothing, so it runs clean.
"""

import sys

from .cluster import node_main

if __name__ == "__main__":
    sys.exit(node_main())
