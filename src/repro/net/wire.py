"""Wire serialization for the asyncio transport backend.

The deterministic simulator hands :class:`~repro.net.process.Message` objects
between processes as plain Python references; real sockets need bytes.  This
module is the codec between the two worlds: every message the pub/sub layer
exchanges — ``publish``/``notify`` carrying a
:class:`~repro.pubsub.notification.Notification`, ``subscribe`` carrying a
:class:`~repro.pubsub.subscription.Subscription`, ``unsubscribe``/``detach``
control payloads carrying :class:`~repro.pubsub.filters.Filter` objects — can
be encoded to a length-prefixed frame and decoded back to an equal object.
The mobility layer's replicated-handover protocol is covered too:
``client_hello`` profiles, location templates
(:class:`~repro.core.location_filter.LocationDependentFilter`, including ones
riding on a location-dependent :class:`Subscription`), the
``handover_request``/``handover_reply`` relocation exchange and replicator
stats snapshots all round-trip, which is what lets ``MobilePubSub`` run on
real sockets.

Design notes
------------
* **Framing** is a 4-byte big-endian length prefix followed by the body
  (:func:`frame`/:class:`FrameDecoder`), the standard way to delimit messages
  on a TCP stream.
* **Encoding** is tagged JSON: domain objects become ``{"__t__": tag, ...}``
  dictionaries, containers recurse, and the final body is emitted with sorted
  keys and no whitespace so that *the same message always encodes to the same
  bytes*.  That determinism is what the ``SimTransport`` cross-check tests
  hash.
* Non-finite floats (``Range`` uses ``±inf`` bounds) rely on Python's JSON
  ``Infinity`` extension, which is symmetric between ``dumps`` and ``loads``.
* The codec is deliberately closed: encoding an object it does not know about
  raises :class:`WireError` instead of silently pickling arbitrary state.
  (``pickle`` would accept everything but turn every broker into a remote
  code execution endpoint; a closed codec is the safe default for sockets.)

Two codecs share that closed payload set (see :func:`get_codec`):

* ``"json"`` — the tagged-JSON reference codec described above.  Its byte
  encodings are pinned by golden-trace digests and never change.
* ``"binary"`` — a versioned binary codec for the socket hot path: a
  version byte, one tag byte per value, compact (varint-style) lengths,
  and protocol strings interned through a static :data:`STRING_TABLE`
  whose revision is negotiated in the connection handshake
  (:func:`handshake_fields`/:func:`check_handshake_codec`).  Every binary
  round-trip decodes to an object whose JSON re-encoding is byte-identical
  to a direct JSON encoding, so the golden traces keep pinning semantics.

Handshakes themselves are always JSON control frames under both codecs —
a codec mismatch is therefore detected loudly at connection setup
(:class:`CodecMismatchError`) instead of surfacing as garbage frames.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, Tuple

from .process import Message

_LENGTH = struct.Struct(">I")

#: frames larger than this are rejected as corrupt (16 MiB)
MAX_FRAME_SIZE = 16 * 1024 * 1024

_TAG = "__t__"


class WireError(ValueError):
    """Raised when a value cannot be encoded, or a frame cannot be decoded."""


class CodecMismatchError(WireError):
    """A peer speaks a different codec or wire revision than this endpoint.

    Distinct from plain :class:`WireError` so transports can tell a
    negotiation failure (wrong codec, wrong binary version, skewed string
    table) apart from truncation or corruption of an otherwise agreed
    stream.
    """


# --------------------------------------------------------------------- values


def _encode_value(obj: Any) -> Any:
    """Transform ``obj`` into a JSON-serialisable structure with type tags."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [_encode_value(item) for item in obj]
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "items": [_encode_value(item) for item in obj]}
    if isinstance(obj, (set, frozenset)):
        # distinct tags so mutability round-trips: a receiver must see the
        # same type the sim backend would have handed over by reference
        tag = "frozenset" if isinstance(obj, frozenset) else "set"
        items = sorted((_encode_value(item) for item in obj), key=repr)
        return {_TAG: tag, "items": items}
    if isinstance(obj, dict):
        if any(not isinstance(key, str) for key in obj):
            raise WireError(f"only string dict keys are encodable, got {obj!r}")
        if _TAG in obj:
            raise WireError(f"dict key {_TAG!r} is reserved for the codec")
        return {key: _encode_value(value) for key, value in obj.items()}

    # domain objects — imported lazily to keep net/ free of a pubsub dependency
    from ..pubsub.filters import Constraint, Filter
    from ..pubsub.notification import Notification
    from ..pubsub.subscription import Subscription

    if isinstance(obj, Notification):
        return {
            _TAG: "notification",
            # through _encode_value so non-string keys raise WireError
            # instead of being silently stringified by json.dumps
            "attrs": _encode_value(obj.attributes),
            "id": obj.notification_id,
            "published_at": obj.published_at,
            "publisher": obj.publisher,
        }
    if isinstance(obj, Filter):
        return {
            _TAG: "filter",
            "constraints": [_encode_constraint(c) for c in obj.constraints],
        }
    if isinstance(obj, Constraint):
        return _encode_constraint(obj)
    if isinstance(obj, Subscription):
        encoded = {
            _TAG: "subscription",
            "sub_id": obj.sub_id,
            "filter": _encode_value(obj.filter),
            "subscriber": obj.subscriber,
            "location_dependent": obj.location_dependent,
            "meta": _encode_value(obj.meta),
        }
        if obj.template is not None:
            # location templates are wire-encodable payloads; anything else
            # (an opaque application object) still fails the closed-set check
            # below.  The key is omitted when absent so plain subscriptions
            # keep their pre-mobility byte encoding (golden traces).
            encoded["template"] = _encode_value(obj.template)
        return encoded
    if isinstance(obj, Message):
        return _encode_message_value(obj)

    # mobility-layer control payloads (the replicated-handover protocol)
    from ..core.location_filter import LocationDependentFilter
    from ..core.physical_mobility import HandoverReply, HandoverRequest
    from ..core.replicator import ClientHello, ReplicatorStats

    if isinstance(obj, LocationDependentFilter):
        return {
            _TAG: "loctemplate",
            "static": _encode_value(obj.static_filter),
            "attr": obj.location_attribute,
            "scope": obj.scope,
        }
    if isinstance(obj, ClientHello):
        return {
            _TAG: "client_hello",
            "client_id": obj.client_id,
            "location": obj.location,
            "templates": _encode_value(obj.templates),
            "plain_filters": _encode_value(obj.plain_filters),
            "previous_broker": obj.previous_broker,
            "reissue": obj.reissue,
        }
    if isinstance(obj, HandoverRequest):
        return {
            _TAG: "handover_request",
            "client_id": obj.client_id,
            "new_broker": obj.new_broker,
            "new_replicator": obj.new_replicator,
        }
    if isinstance(obj, HandoverReply):
        return {
            _TAG: "handover_reply",
            "client_id": obj.client_id,
            "old_broker": obj.old_broker,
            "plain_filters": _encode_value(obj.plain_filters),
            "buffered_plain": [_encode_value(n) for n in obj.buffered_plain],
            "buffered_location": [_encode_value(n) for n in obj.buffered_location],
            "found": obj.found,
        }
    if isinstance(obj, ReplicatorStats):
        from dataclasses import fields

        stats = {f.name: getattr(obj, f.name) for f in fields(obj)}
        return {_TAG: "replicator_stats", "stats": stats}
    raise WireError(f"cannot encode {type(obj).__name__} value {obj!r}")


def _encode_constraint(constraint: Any) -> Dict[str, Any]:
    from ..pubsub import filters as f

    if isinstance(constraint, f.Exists):
        return {_TAG: "c:exists", "attr": constraint.attribute}
    if isinstance(constraint, f.Equals):
        return {
            _TAG: "c:eq",
            "attr": constraint.attribute,
            "value": _encode_value(constraint.value),
        }
    if isinstance(constraint, f.NotEquals):
        return {
            _TAG: "c:ne",
            "attr": constraint.attribute,
            "value": _encode_value(constraint.value),
        }
    if isinstance(constraint, f.InSet):
        values = sorted((_encode_value(v) for v in constraint.values), key=repr)
        return {_TAG: "c:in", "attr": constraint.attribute, "values": values}
    if isinstance(constraint, f.Range):
        return {
            _TAG: "c:range",
            "attr": constraint.attribute,
            "low": constraint.low,
            "high": constraint.high,
            "include_low": constraint.include_low,
            "include_high": constraint.include_high,
        }
    if isinstance(constraint, f.Prefix):
        return {_TAG: "c:prefix", "attr": constraint.attribute, "prefix": constraint.prefix}
    raise WireError(f"cannot encode constraint type {type(constraint).__name__}")


def _encode_message_value(message: Message) -> Dict[str, Any]:
    return {
        _TAG: "message",
        "kind": message.kind,
        "payload": _encode_value(message.payload),
        "sender": message.sender,
        "msg_id": message.msg_id,
        # through _encode_value so non-string meta keys raise WireError
        "meta": _encode_value(message.meta),
    }


def _decode_value(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [_decode_value(item) for item in obj]
    if not isinstance(obj, dict):  # pragma: no cover - json only yields the above
        raise WireError(f"unexpected decoded value {obj!r}")
    tag = obj.get(_TAG)
    if tag is None:
        return {key: _decode_value(value) for key, value in obj.items()}
    if tag == "tuple":
        return tuple(_decode_value(item) for item in obj["items"])
    if tag == "set":
        return set(_decode_value(item) for item in obj["items"])
    if tag == "frozenset":
        return frozenset(_decode_value(item) for item in obj["items"])

    from ..pubsub import filters as f
    from ..pubsub.notification import Notification
    from ..pubsub.subscription import Subscription

    if tag == "notification":
        return Notification(
            {k: _decode_value(v) for k, v in obj["attrs"].items()},
            published_at=obj["published_at"],
            publisher=obj["publisher"],
            notification_id=obj["id"],
        )
    if tag == "filter":
        return f.Filter(_decode_value(c) for c in obj["constraints"])
    if tag == "subscription":
        template = obj.get("template")
        return Subscription(
            sub_id=obj["sub_id"],
            filter=_decode_value(obj["filter"]),
            subscriber=obj["subscriber"],
            location_dependent=obj["location_dependent"],
            template=_decode_value(template) if template is not None else None,
            meta={k: _decode_value(v) for k, v in obj["meta"].items()},
        )
    if tag == "message":
        return Message(
            kind=obj["kind"],
            payload=_decode_value(obj["payload"]),
            sender=obj["sender"],
            msg_id=obj["msg_id"],
            meta={k: _decode_value(v) for k, v in obj["meta"].items()},
        )
    if tag == "c:exists":
        return f.Exists(obj["attr"])
    if tag == "c:eq":
        return f.Equals(obj["attr"], _decode_value(obj["value"]))
    if tag == "c:ne":
        return f.NotEquals(obj["attr"], _decode_value(obj["value"]))
    if tag == "c:in":
        return f.InSet(obj["attr"], (_decode_value(v) for v in obj["values"]))
    if tag == "c:range":
        return f.Range(
            obj["attr"],
            low=obj["low"],
            high=obj["high"],
            include_low=obj["include_low"],
            include_high=obj["include_high"],
        )
    if tag == "c:prefix":
        return f.Prefix(obj["attr"], obj["prefix"])

    from ..core.location_filter import LocationDependentFilter
    from ..core.physical_mobility import HandoverReply, HandoverRequest
    from ..core.replicator import ClientHello, ReplicatorStats

    if tag == "loctemplate":
        return LocationDependentFilter(
            static_filter=_decode_value(obj["static"]),
            location_attribute=obj["attr"],
            scope=obj["scope"],
        )
    if tag == "client_hello":
        return ClientHello(
            client_id=obj["client_id"],
            location=obj["location"],
            templates={k: _decode_value(v) for k, v in obj["templates"].items()},
            plain_filters={k: _decode_value(v) for k, v in obj["plain_filters"].items()},
            previous_broker=obj["previous_broker"],
            reissue=obj["reissue"],
        )
    if tag == "handover_request":
        return HandoverRequest(
            client_id=obj["client_id"],
            new_broker=obj["new_broker"],
            new_replicator=obj["new_replicator"],
        )
    if tag == "handover_reply":
        return HandoverReply(
            client_id=obj["client_id"],
            old_broker=obj["old_broker"],
            plain_filters={k: _decode_value(v) for k, v in obj["plain_filters"].items()},
            buffered_plain=[_decode_value(n) for n in obj["buffered_plain"]],
            buffered_location=[_decode_value(n) for n in obj["buffered_location"]],
            found=obj["found"],
        )
    if tag == "replicator_stats":
        return ReplicatorStats(**obj["stats"])
    raise WireError(f"unknown wire tag {tag!r}")


# ------------------------------------------------------------------- messages


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=True)


def _notification_fragment(notification: Any) -> str:
    """The canonical JSON fragment of a notification, cached on the object.

    Notifications are immutable, so the fragment computed on the first
    encode (or primed by :func:`decode_message`) is reused by every later
    encode of the same object — a broker fanning one notification out to K
    links serializes the payload once instead of K times, and a hop that
    just decoded a payload never re-walks it to forward it.
    ``Message.copy()`` shares the (immutable) payload, so forwarded copies
    share the cache; any mutation path (``with_attributes``/``stamped``)
    builds a new object with an empty cache.
    """
    fragment = notification._wire
    if fragment is None:
        fragment = _dumps(_encode_value(notification))
        notification._wire = fragment
    return fragment


def _filter_fragment(filter: Any) -> str:
    """The canonical JSON fragment of a filter, cached on the object.

    Filters are immutable; the covering-churn path re-forwards the same
    filter (inside fresh subscriptions and unsubscribe payloads) once per
    link, so the fragment is serialized at most once per object.
    """
    fragment = filter._wire_json
    if fragment is None:
        constraints = ",".join(_dumps(_encode_constraint(c)) for c in filter.constraints)
        # key order matches sort_keys=True: "__t__" < "constraints"
        fragment = f'{{"{_TAG}":"filter","constraints":[{constraints}]}}'
        filter._wire_json = fragment
    return fragment


def _subscription_fragment(subscription: Any) -> str:
    """The canonical JSON fragment of a subscription, cached on the object.

    The cache lives in the instance ``__dict__`` (``Subscription`` is a
    frozen dataclass without slots), so it never participates in equality,
    and ``dataclasses.replace``-based rebinding builds fresh objects with
    empty caches.  The nested filter fragment is spliced from its own
    cache, which is the common hit: ``rebound``/``for_subscriber`` create
    new subscriptions sharing one filter object.
    """
    fragment = subscription.__dict__.get("_wire_json")
    if fragment is None:
        # key order matches sort_keys=True: "__t__" < "filter" <
        # "location_dependent" < "meta" < "sub_id" < "subscriber" < "template"
        head = (
            f'{{"{_TAG}":"subscription"'
            f',"filter":{_filter_fragment(subscription.filter)}'
            f',"location_dependent":{"true" if subscription.location_dependent else "false"}'
            f',"meta":{_json_fragment(subscription.meta)}'
            f',"sub_id":{_dumps(subscription.sub_id)}'
            f',"subscriber":{_dumps(subscription.subscriber)}'
        )
        if subscription.template is not None:
            fragment = f'{head},"template":{_dumps(_encode_value(subscription.template))}}}'
        else:
            fragment = head + "}"
        object.__setattr__(subscription, "_wire_json", fragment)
    return fragment


def _json_fragment(obj: Any) -> str:
    """Emit the canonical JSON text of any encodable value, using caches.

    Byte-identical to ``_dumps(_encode_value(obj))`` by construction (same
    sorted keys, same separators), but notification/filter/subscription
    sub-trees are spliced from their cached fragments, and containers
    recurse so a filter nested in an ``unsubscribe`` dict payload still
    hits its cache.
    """
    if isinstance(obj, dict):
        if any(not isinstance(key, str) for key in obj):
            raise WireError(f"only string dict keys are encodable, got {obj!r}")
        if _TAG in obj:
            raise WireError(f"dict key {_TAG!r} is reserved for the codec")
        items = ",".join(f"{_dumps(key)}:{_json_fragment(obj[key])}" for key in sorted(obj))
        return f"{{{items}}}"
    if isinstance(obj, list):
        return f'[{",".join(_json_fragment(item) for item in obj)}]'

    from ..pubsub.filters import Filter
    from ..pubsub.notification import Notification
    from ..pubsub.subscription import Subscription

    if isinstance(obj, Notification):
        return _notification_fragment(obj)
    if isinstance(obj, Filter):
        return _filter_fragment(obj)
    if isinstance(obj, Subscription):
        return _subscription_fragment(obj)
    return _dumps(_encode_value(obj))


def encode_message(message: Message) -> bytes:
    """Serialize a message to its canonical (deterministic) byte body."""
    # splice the cached payload fragment into the canonical body; key
    # order of the hand-built JSON matches sort_keys=True
    # ("__t__" < "kind" < "meta" < "msg_id" < "payload" < "sender")
    head = _dumps(
        {
            _TAG: "message",
            "kind": message.kind,
            "meta": _encode_value(message.meta),
            "msg_id": message.msg_id,
        }
    )
    tail = _dumps({"sender": message.sender})
    return f'{head[:-1]},"payload":{_json_fragment(message.payload)},{tail[1:]}'.encode("utf-8")


def decode_message(data: bytes) -> Message:
    """Parse a byte body produced by :func:`encode_message`."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        if data[:1] == _BINARY_PREFIX:
            raise CodecMismatchError(
                "received a binary frame on a JSON-codec connection (codec mismatch)"
            ) from exc
        raise WireError(f"malformed wire body: {exc}") from exc
    decoded = _decode_value(obj)
    if not isinstance(decoded, Message):
        raise WireError(f"wire body is not a message: {decoded!r}")
    payload = decoded.payload
    from ..pubsub.notification import Notification
    from ..pubsub.subscription import Subscription

    if isinstance(payload, Notification) and payload._wire is None:
        # prime the fragment cache from the parsed body: re-dumping the
        # already-canonical payload sub-structure is byte-identical to the
        # sender's encoding, so the next hop forwards without re-encoding
        payload._wire = _dumps(obj["payload"])
    elif isinstance(payload, Subscription):
        if payload.__dict__.get("_wire_json") is None:
            object.__setattr__(payload, "_wire_json", _dumps(obj["payload"]))
        if payload.filter._wire_json is None:
            payload.filter._wire_json = _dumps(obj["payload"]["filter"])
    return decoded


def encode_control(obj: Any) -> bytes:
    """Serialize a non-message control payload (handshakes, diagnostics)."""
    return _dumps(_encode_value(obj)).encode("utf-8")


def decode_control(data: bytes) -> Any:
    try:
        return _decode_value(json.loads(data.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed control body: {exc}") from exc


# --------------------------------------------------------------- binary codec
#
# Body layout: one version byte (BINARY_VERSION, which can never collide with
# a JSON body — those start with "{" = 0x7B) followed by one tagged value.
# Every value is a tag byte plus a fixed- or length-prefixed encoding; counts
# and lengths use a compact form (one byte 0..254, or 0xFF + 4-byte >I).
# Protocol strings (message kinds, common payload keys and workload attribute
# names) are interned through the static STRING_TABLE: a 2-byte reference
# instead of the spelled-out string.  The table is part of the wire revision:
# handshakes carry (codec, WIRE_VERSION, table length) and a skew is rejected
# loudly at connection setup, so indices are connection-independent and the
# per-object binary fragments below are globally cacheable.
#
# Determinism mirrors the JSON codec: dict keys are emitted sorted,
# set/frozenset items are emitted sorted by repr, so the same object always
# encodes to the same bytes regardless of hash seed.

BINARY_VERSION = 1

#: revision of the binary format *and* the string table; negotiated in the
#: connection handshake.  Bump whenever tags, layouts or STRING_TABLE change.
WIRE_VERSION = 1

_BINARY_PREFIX = bytes([BINARY_VERSION])

#: static interned protocol strings (message kinds, wire payload keys, common
#: workload attribute names).  Append-only; any change bumps WIRE_VERSION.
STRING_TABLE: Tuple[str, ...] = (
    # message kinds (broker + mobility protocol)
    "publish",
    "notify",
    "subscribe",
    "unsubscribe",
    "detach",
    "resync",
    "shadow_create",
    "shadow_delete",
    "shadow_sub",
    "shadow_unsub",
    "client_hello",
    "client_bye",
    "client_leaving",
    "client_subscribe",
    "client_unsubscribe",
    "location_update",
    "welcome",
    "handover_request",
    "handover_reply",
    # common wire payload keys
    "sub_id",
    "filter",
    "client_id",
    "subscription",
    "templates",
    "location",
    "broker",
    "had_shadow",
    "replayed",
    "new_broker",
    "old_broker",
    "found",
    "reissue",
    # common workload attribute names and topic values
    "topic",
    "value",
    "pad",
    "service",
    "room",
    "seq",
    "phase",
    "bench",
    "demo",
)

_STRING_IDS: Dict[str, int] = {s: i for i, s in enumerate(STRING_TABLE)}
_TABLE_LEN = len(STRING_TABLE)

_PACK_D = struct.Struct(">d")
_PACK_I32 = struct.Struct(">i")
_PACK_I64 = struct.Struct(">q")
_PACK_U32 = struct.Struct(">I")

# value tags
_B_NONE = 0x00
_B_TRUE = 0x01
_B_FALSE = 0x02
_B_INT8 = 0x03
_B_INT32 = 0x04
_B_INT64 = 0x05
_B_BIGINT = 0x06
_B_FLOAT = 0x07
_B_STR = 0x08
_B_SREF = 0x09
_B_LIST = 0x0A
_B_TUPLE = 0x0B
_B_SET = 0x0C
_B_FROZENSET = 0x0D
_B_DICT = 0x0E
_B_NOTIFICATION = 0x0F
_B_FILTER = 0x10
_B_C_EXISTS = 0x11
_B_C_EQ = 0x12
_B_C_NE = 0x13
_B_C_IN = 0x14
_B_C_RANGE = 0x15
_B_C_PREFIX = 0x16
_B_SUBSCRIPTION = 0x17
_B_MESSAGE = 0x18
_B_LOCTEMPLATE = 0x19
_B_CLIENT_HELLO = 0x1A
_B_HANDOVER_REQUEST = 0x1B
_B_HANDOVER_REPLY = 0x1C
_B_REPLICATOR_STATS = 0x1D

# Domain classes, resolved once on first use (the JSON path imports lazily
# per call; the binary hot path keeps them in module globals instead).
_Notification = None
_Filter = None
_Constraint = None
_Exists = None
_Equals = None
_NotEquals = None
_InSet = None
_Range = None
_Prefix = None
_Subscription = None
_LocationDependentFilter = None
_ClientHello = None
_HandoverRequest = None
_HandoverReply = None
_ReplicatorStats = None
_ReplicatorStatsFields: Tuple[str, ...] = ()


def _load_domain() -> None:
    global _Notification, _Filter, _Constraint, _Exists, _Equals, _NotEquals
    global _InSet, _Range, _Prefix, _Subscription, _LocationDependentFilter
    global _ClientHello, _HandoverRequest, _HandoverReply, _ReplicatorStats
    global _ReplicatorStatsFields
    from dataclasses import fields

    from ..core.location_filter import LocationDependentFilter
    from ..core.physical_mobility import HandoverReply, HandoverRequest
    from ..core.replicator import ClientHello, ReplicatorStats
    from ..pubsub import filters as f
    from ..pubsub.notification import Notification
    from ..pubsub.subscription import Subscription

    _Notification = Notification
    _Filter = f.Filter
    _Constraint = f.Constraint
    _Exists = f.Exists
    _Equals = f.Equals
    _NotEquals = f.NotEquals
    _InSet = f.InSet
    _Range = f.Range
    _Prefix = f.Prefix
    _Subscription = Subscription
    _LocationDependentFilter = LocationDependentFilter
    _ClientHello = ClientHello
    _HandoverRequest = HandoverRequest
    _HandoverReply = HandoverReply
    _ReplicatorStats = ReplicatorStats
    _ReplicatorStatsFields = tuple(field.name for field in fields(ReplicatorStats))


def _w_count(out: bytearray, n: int) -> None:
    if n < 255:
        out.append(n)
    else:
        out.append(255)
        out += _PACK_U32.pack(n)


def _w_str(out: bytearray, s: str) -> None:
    idx = _STRING_IDS.get(s)
    if idx is not None:
        out.append(_B_SREF)
        out.append(idx)
    else:
        data = s.encode("utf-8")
        out.append(_B_STR)
        _w_count(out, len(data))
        out += data


def _w_int(out: bytearray, v: int) -> None:
    if -128 <= v <= 127:
        out.append(_B_INT8)
        out.append(v & 0xFF)
    elif -2147483648 <= v <= 2147483647:
        out.append(_B_INT32)
        out += _PACK_I32.pack(v)
    elif -(1 << 63) <= v < 1 << 63:
        out.append(_B_INT64)
        out += _PACK_I64.pack(v)
    else:
        data = v.to_bytes((v.bit_length() + 8) // 8, "big", signed=True)
        if len(data) > 254:
            raise WireError(f"integer too large for the binary codec: {v!r}")
        out.append(_B_BIGINT)
        out.append(len(data))
        out += data


def _w_constraint(out: bytearray, c: Any) -> None:
    # isinstance chain in the same order as the JSON _encode_constraint
    if isinstance(c, _Exists):
        out.append(_B_C_EXISTS)
        _w_str(out, c.attribute)
    elif isinstance(c, _Equals):
        out.append(_B_C_EQ)
        _w_str(out, c.attribute)
        _b_write(out, c.value)
    elif isinstance(c, _NotEquals):
        out.append(_B_C_NE)
        _w_str(out, c.attribute)
        _b_write(out, c.value)
    elif isinstance(c, _InSet):
        out.append(_B_C_IN)
        _w_str(out, c.attribute)
        values = sorted(c.values, key=repr)
        _w_count(out, len(values))
        for value in values:
            _b_write(out, value)
    elif isinstance(c, _Range):
        out.append(_B_C_RANGE)
        _w_str(out, c.attribute)
        _b_write(out, c.low)
        _b_write(out, c.high)
        out.append((1 if c.include_low else 0) | (2 if c.include_high else 0))
    elif isinstance(c, _Prefix):
        out.append(_B_C_PREFIX)
        _w_str(out, c.attribute)
        _w_str(out, c.prefix)
    else:
        raise WireError(f"cannot encode constraint type {type(c).__name__}")


def _filter_fragment_binary(filter: Any) -> bytes:
    fragment = filter._wire_bin
    if fragment is None:
        tmp = bytearray()
        tmp.append(_B_FILTER)
        constraints = filter.constraints
        _w_count(tmp, len(constraints))
        for c in constraints:
            _w_constraint(tmp, c)
        fragment = bytes(tmp)
        filter._wire_bin = fragment
    return fragment


def _b_write(out: bytearray, obj: Any) -> None:
    if obj is None:
        out.append(_B_NONE)
        return
    t = type(obj)
    if t is str:
        _w_str(out, obj)
        return
    if t is bool:
        out.append(_B_TRUE if obj else _B_FALSE)
        return
    if t is int:
        _w_int(out, obj)
        return
    if t is float:
        out.append(_B_FLOAT)
        out += _PACK_D.pack(obj)
        return
    if t is dict:
        if any(not isinstance(key, str) for key in obj):
            raise WireError(f"only string dict keys are encodable, got {obj!r}")
        if _TAG in obj:
            raise WireError(f"dict key {_TAG!r} is reserved for the codec")
        out.append(_B_DICT)
        _w_count(out, len(obj))
        for key in sorted(obj):
            _w_str(out, key)
            _b_write(out, obj[key])
        return
    if t is list:
        out.append(_B_LIST)
        _w_count(out, len(obj))
        for item in obj:
            _b_write(out, item)
        return
    if t is tuple:
        out.append(_B_TUPLE)
        _w_count(out, len(obj))
        for item in obj:
            _b_write(out, item)
        return

    if isinstance(obj, _Notification):
        fragment = obj._wire_bin
        if fragment is None:
            tmp = bytearray()
            tmp.append(_B_NOTIFICATION)
            _b_write(tmp, obj._attributes)
            _w_int(tmp, obj.notification_id)
            _b_write(tmp, obj.published_at)
            _b_write(tmp, obj.publisher)
            fragment = bytes(tmp)
            obj._wire_bin = fragment
        out += fragment
        return
    if isinstance(obj, _Filter):
        out += _filter_fragment_binary(obj)
        return
    if isinstance(obj, _Subscription):
        fragment = obj.__dict__.get("_wire_bin")
        if fragment is None:
            tmp = bytearray()
            tmp.append(_B_SUBSCRIPTION)
            _w_str(tmp, obj.sub_id)
            tmp += _filter_fragment_binary(obj.filter)
            _b_write(tmp, obj.subscriber)
            template = obj.template
            tmp.append((1 if obj.location_dependent else 0) | (2 if template is not None else 0))
            if template is not None:
                _b_write(tmp, template)
            _b_write(tmp, obj.meta)
            fragment = bytes(tmp)
            object.__setattr__(obj, "_wire_bin", fragment)
        out += fragment
        return
    if isinstance(obj, Message):
        out.append(_B_MESSAGE)
        _w_str(out, obj.kind)
        _b_write(out, obj.payload)
        _b_write(out, obj.sender)
        _w_int(out, obj.msg_id)
        _b_write(out, obj.meta)
        return
    if isinstance(obj, _Constraint):
        _w_constraint(out, obj)
        return
    if isinstance(obj, (set, frozenset)):
        out.append(_B_FROZENSET if isinstance(obj, frozenset) else _B_SET)
        items = sorted(obj, key=repr)
        _w_count(out, len(items))
        for item in items:
            _b_write(out, item)
        return
    if isinstance(obj, _LocationDependentFilter):
        out.append(_B_LOCTEMPLATE)
        _b_write(out, obj.static_filter)
        _w_str(out, obj.location_attribute)
        _b_write(out, obj.scope)
        return
    if isinstance(obj, _ClientHello):
        out.append(_B_CLIENT_HELLO)
        _b_write(out, obj.client_id)
        _b_write(out, obj.location)
        _b_write(out, obj.templates)
        _b_write(out, obj.plain_filters)
        _b_write(out, obj.previous_broker)
        _b_write(out, obj.reissue)
        return
    if isinstance(obj, _HandoverRequest):
        out.append(_B_HANDOVER_REQUEST)
        _b_write(out, obj.client_id)
        _b_write(out, obj.new_broker)
        _b_write(out, obj.new_replicator)
        return
    if isinstance(obj, _HandoverReply):
        out.append(_B_HANDOVER_REPLY)
        _b_write(out, obj.client_id)
        _b_write(out, obj.old_broker)
        _b_write(out, obj.plain_filters)
        buffered_plain = obj.buffered_plain
        _w_count(out, len(buffered_plain))
        for n in buffered_plain:
            _b_write(out, n)
        buffered_location = obj.buffered_location
        _w_count(out, len(buffered_location))
        for n in buffered_location:
            _b_write(out, n)
        _b_write(out, obj.found)
        return
    if isinstance(obj, _ReplicatorStats):
        out.append(_B_REPLICATOR_STATS)
        _b_write(out, {name: getattr(obj, name) for name in _ReplicatorStatsFields})
        return
    # subclass fallbacks, mirroring the JSON codec's isinstance dispatch
    if isinstance(obj, bool):
        out.append(_B_TRUE if obj else _B_FALSE)
        return
    if isinstance(obj, int):
        _w_int(out, obj)
        return
    if isinstance(obj, float):
        out.append(_B_FLOAT)
        out += _PACK_D.pack(obj)
        return
    if isinstance(obj, str):
        _w_str(out, obj)
        return
    raise WireError(f"cannot encode {type(obj).__name__} value {obj!r}")


def _r_count(buf: bytes, pos: int) -> Tuple[int, int]:
    n = buf[pos]
    pos += 1
    if n == 255:
        n = _PACK_U32.unpack_from(buf, pos)[0]
        pos += 4
    return n, pos


def _b_read(buf: bytes, pos: int) -> Tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _B_SREF:
        idx = buf[pos]
        if idx >= _TABLE_LEN:
            raise WireError(
                f"string-table index {idx} out of range (table has {_TABLE_LEN} entries); "
                f"the peer speaks an incompatible wire revision"
            )
        return STRING_TABLE[idx], pos + 1
    if tag == _B_STR:
        n, pos = _r_count(buf, pos)
        end = pos + n
        if end > len(buf):
            raise WireError("truncated binary string")
        return buf[pos:end].decode("utf-8"), end
    if tag == _B_INT8:
        v = buf[pos]
        return (v - 256 if v >= 128 else v), pos + 1
    if tag == _B_INT32:
        return _PACK_I32.unpack_from(buf, pos)[0], pos + 4
    if tag == _B_DICT:
        n, pos = _r_count(buf, pos)
        obj: Dict[str, Any] = {}
        for _ in range(n):
            key, pos = _b_read(buf, pos)
            value, pos = _b_read(buf, pos)
            obj[key] = value
        return obj, pos
    if tag == _B_NOTIFICATION:
        start = pos - 1
        # inlined attrs read: a notification body is always a small dict of
        # interned-or-short keys with scalar values, so the generic dispatch
        # (one _b_read call per key and value) is mostly call overhead
        if buf[pos] == _B_DICT:
            n, pos = _r_count(buf, pos + 1)
            attrs = {}
            for _ in range(n):
                t = buf[pos]
                if t == _B_SREF:
                    idx = buf[pos + 1]
                    if idx >= _TABLE_LEN:
                        raise WireError(
                            f"string-table index {idx} out of range (table has "
                            f"{_TABLE_LEN} entries); the peer speaks an "
                            f"incompatible wire revision"
                        )
                    key = STRING_TABLE[idx]
                    pos += 2
                else:
                    key, pos = _b_read(buf, pos)
                t = buf[pos]
                if t == _B_INT8:
                    v = buf[pos + 1]
                    value = v - 256 if v >= 128 else v
                    pos += 2
                elif t == _B_INT32:
                    value = _PACK_I32.unpack_from(buf, pos + 1)[0]
                    pos += 5
                elif t == _B_STR and buf[pos + 1] < 255:
                    end = pos + 2 + buf[pos + 1]
                    if end > len(buf):
                        raise WireError("truncated binary string")
                    value = buf[pos + 2:end].decode("utf-8")
                    pos = end
                elif t == _B_FLOAT:
                    value = _PACK_D.unpack_from(buf, pos + 1)[0]
                    pos += 9
                else:
                    value, pos = _b_read(buf, pos)
                attrs[key] = value
        else:
            attrs, pos = _b_read(buf, pos)
        nid, pos = _b_read(buf, pos)
        published_at, pos = _b_read(buf, pos)
        publisher, pos = _b_read(buf, pos)
        # build without __init__: ``attrs`` is a freshly decoded dict this
        # notification can own outright, so the defensive copy is waste
        notification = _Notification.__new__(_Notification)
        notification._attributes = attrs
        notification.notification_id = nid
        notification.published_at = published_at
        notification.publisher = publisher
        notification._wire = None
        notification._esize = None
        # prime the binary fragment cache from the received span, so the
        # next hop forwards the payload without re-encoding it
        notification._wire_bin = buf[start:pos]
        return notification, pos
    if tag == _B_FLOAT:
        return _PACK_D.unpack_from(buf, pos)[0], pos + 8
    if tag == _B_NONE:
        return None, pos
    if tag == _B_TRUE:
        return True, pos
    if tag == _B_FALSE:
        return False, pos
    if tag == _B_INT64:
        return _PACK_I64.unpack_from(buf, pos)[0], pos + 8
    if tag == _B_BIGINT:
        n = buf[pos]
        pos += 1
        end = pos + n
        if end > len(buf):
            raise WireError("truncated binary integer")
        return int.from_bytes(buf[pos:end], "big", signed=True), end
    if tag == _B_LIST:
        n, pos = _r_count(buf, pos)
        items = []
        for _ in range(n):
            item, pos = _b_read(buf, pos)
            items.append(item)
        return items, pos
    if tag == _B_TUPLE:
        n, pos = _r_count(buf, pos)
        items = []
        for _ in range(n):
            item, pos = _b_read(buf, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _B_SET or tag == _B_FROZENSET:
        n, pos = _r_count(buf, pos)
        items = []
        for _ in range(n):
            item, pos = _b_read(buf, pos)
            items.append(item)
        return (frozenset(items) if tag == _B_FROZENSET else set(items)), pos
    if tag == _B_MESSAGE:
        kind, pos = _b_read(buf, pos)
        payload, pos = _b_read(buf, pos)
        sender, pos = _b_read(buf, pos)
        msg_id, pos = _b_read(buf, pos)
        meta, pos = _b_read(buf, pos)
        return Message(kind=kind, payload=payload, sender=sender, msg_id=msg_id, meta=meta), pos
    if tag == _B_FILTER:
        start = pos - 1
        n, pos = _r_count(buf, pos)
        constraints = []
        for _ in range(n):
            constraint, pos = _b_read(buf, pos)
            constraints.append(constraint)
        filter = _Filter(constraints)
        filter._wire_bin = buf[start:pos]
        return filter, pos
    if tag == _B_C_EXISTS:
        attr, pos = _b_read(buf, pos)
        return _Exists(attr), pos
    if tag == _B_C_EQ:
        attr, pos = _b_read(buf, pos)
        value, pos = _b_read(buf, pos)
        return _Equals(attr, value), pos
    if tag == _B_C_NE:
        attr, pos = _b_read(buf, pos)
        value, pos = _b_read(buf, pos)
        return _NotEquals(attr, value), pos
    if tag == _B_C_IN:
        attr, pos = _b_read(buf, pos)
        n, pos = _r_count(buf, pos)
        values = []
        for _ in range(n):
            value, pos = _b_read(buf, pos)
            values.append(value)
        return _InSet(attr, values), pos
    if tag == _B_C_RANGE:
        attr, pos = _b_read(buf, pos)
        low, pos = _b_read(buf, pos)
        high, pos = _b_read(buf, pos)
        flags = buf[pos]
        return _Range(
            attr, low=low, high=high, include_low=bool(flags & 1), include_high=bool(flags & 2)
        ), pos + 1
    if tag == _B_C_PREFIX:
        attr, pos = _b_read(buf, pos)
        prefix, pos = _b_read(buf, pos)
        return _Prefix(attr, prefix), pos
    if tag == _B_SUBSCRIPTION:
        start = pos - 1
        sub_id, pos = _b_read(buf, pos)
        filter, pos = _b_read(buf, pos)
        subscriber, pos = _b_read(buf, pos)
        flags = buf[pos]
        pos += 1
        template = None
        if flags & 2:
            template, pos = _b_read(buf, pos)
        meta, pos = _b_read(buf, pos)
        subscription = _Subscription(
            sub_id=sub_id,
            filter=filter,
            subscriber=subscriber,
            location_dependent=bool(flags & 1),
            template=template,
            meta=meta,
        )
        object.__setattr__(subscription, "_wire_bin", buf[start:pos])
        return subscription, pos
    if tag == _B_LOCTEMPLATE:
        static, pos = _b_read(buf, pos)
        attr, pos = _b_read(buf, pos)
        scope, pos = _b_read(buf, pos)
        return _LocationDependentFilter(
            static_filter=static, location_attribute=attr, scope=scope
        ), pos
    if tag == _B_CLIENT_HELLO:
        client_id, pos = _b_read(buf, pos)
        location, pos = _b_read(buf, pos)
        templates, pos = _b_read(buf, pos)
        plain_filters, pos = _b_read(buf, pos)
        previous_broker, pos = _b_read(buf, pos)
        reissue, pos = _b_read(buf, pos)
        return _ClientHello(
            client_id=client_id,
            location=location,
            templates=templates,
            plain_filters=plain_filters,
            previous_broker=previous_broker,
            reissue=reissue,
        ), pos
    if tag == _B_HANDOVER_REQUEST:
        client_id, pos = _b_read(buf, pos)
        new_broker, pos = _b_read(buf, pos)
        new_replicator, pos = _b_read(buf, pos)
        return _HandoverRequest(
            client_id=client_id, new_broker=new_broker, new_replicator=new_replicator
        ), pos
    if tag == _B_HANDOVER_REPLY:
        client_id, pos = _b_read(buf, pos)
        old_broker, pos = _b_read(buf, pos)
        plain_filters, pos = _b_read(buf, pos)
        n, pos = _r_count(buf, pos)
        buffered_plain = []
        for _ in range(n):
            notification, pos = _b_read(buf, pos)
            buffered_plain.append(notification)
        n, pos = _r_count(buf, pos)
        buffered_location = []
        for _ in range(n):
            notification, pos = _b_read(buf, pos)
            buffered_location.append(notification)
        found, pos = _b_read(buf, pos)
        return _HandoverReply(
            client_id=client_id,
            old_broker=old_broker,
            plain_filters=plain_filters,
            buffered_plain=buffered_plain,
            buffered_location=buffered_location,
            found=found,
        ), pos
    if tag == _B_REPLICATOR_STATS:
        stats, pos = _b_read(buf, pos)
        return _ReplicatorStats(**stats), pos
    raise WireError(f"unknown binary wire tag 0x{tag:02x}")


def encode_message_binary(message: Message) -> bytes:
    """Serialize a message to its binary byte body (version byte + value)."""
    if _Notification is None:
        _load_domain()
    out = bytearray(_BINARY_PREFIX)
    _b_write(out, message)
    return bytes(out)


def decode_message_binary(data: bytes) -> Message:
    """Parse a byte body produced by :func:`encode_message_binary`."""
    if not data:
        raise WireError("empty binary wire body")
    if data[0] != BINARY_VERSION:
        if data[0] == 0x7B:  # "{" — a tagged-JSON body
            raise CodecMismatchError(
                "received a JSON frame on a binary-codec connection (codec mismatch)"
            )
        raise CodecMismatchError(
            f"unsupported binary wire version byte 0x{data[0]:02x} "
            f"(this endpoint speaks version {BINARY_VERSION})"
        )
    if _Notification is None:
        _load_domain()
    try:
        if len(data) > 1 and data[1] == _B_MESSAGE:
            # inline the envelope read: every well-formed body is a Message,
            # so skip the full tag-dispatch chain for the outer value
            kind, pos = _b_read(data, 2)
            payload, pos = _b_read(data, pos)
            sender, pos = _b_read(data, pos)
            msg_id, pos = _b_read(data, pos)
            meta, pos = _b_read(data, pos)
            obj: Any = Message.__new__(Message)
            obj.__dict__ = {
                "kind": kind,
                "payload": payload,
                "sender": sender,
                "msg_id": msg_id,
                "meta": meta,
                "_size": None,
                "_frame_json": None,
                "_frame_bin": None,
            }
        else:
            obj, pos = _b_read(data, 1)
    except (IndexError, struct.error, UnicodeDecodeError, OverflowError, TypeError) as exc:
        raise WireError(f"malformed binary wire body: {exc}") from exc
    if pos != len(data):
        raise WireError(f"{len(data) - pos} trailing bytes after the binary message")
    if not isinstance(obj, Message):
        raise WireError(f"wire body is not a message: {obj!r}")
    return obj


def frame_message_binary(message: Message) -> bytes:
    """Encode and frame a binary message in one step (the sender hot path).

    Builds the length prefix, version byte and body in a single buffer and
    writes the envelope fields directly, skipping both the intermediate
    body copy of ``frame(encode_message_binary(...))`` and the type-dispatch
    chain of :func:`_b_write` for the outer :class:`Message`.  The finished
    frame is memoized on the message (see :func:`frame_message`).
    """
    cached = message._frame_bin
    if cached is not None:
        return cached
    if _Notification is None:
        _load_domain()
    out = bytearray(4)  # length prefix, patched once the body is complete
    out.append(BINARY_VERSION)
    out.append(_B_MESSAGE)
    _w_str(out, message.kind)
    _b_write(out, message.payload)
    _b_write(out, message.sender)
    _w_int(out, message.msg_id)
    _b_write(out, message.meta)
    body_len = len(out) - 4
    if body_len > MAX_FRAME_SIZE:
        raise WireError(f"frame body of {body_len} bytes exceeds MAX_FRAME_SIZE")
    _LENGTH.pack_into(out, 0, body_len)
    framed = message._frame_bin = bytes(out)
    return framed


# --------------------------------------------------------------------- codecs


class Codec:
    """A named message codec selectable through the ``codec=`` knob.

    ``encode_message``/``decode_message``/``frame_message`` are the per-codec
    entry points; control frames (handshakes, registry traffic) always use
    the JSON :func:`encode_control`/:func:`decode_control` pair so that codec
    negotiation itself is codec-independent.  ``body_first`` is the one byte
    every message body of this codec starts with, used by
    :class:`FrameDecoder` to reject foreign frames loudly; ``batched`` marks
    the codec as eligible for hop-level write batching (the JSON reference
    codec keeps the one-write-per-frame behaviour its golden traces and
    benchmarks were pinned with).
    """

    __slots__ = (
        "name",
        "encode_message",
        "decode_message",
        "frame_message",
        "body_first",
        "batched",
    )

    def __init__(self, name, encode, decode, frame_one, body_first, batched):
        self.name = name
        self.encode_message = encode
        self.decode_message = decode
        self.frame_message = frame_one
        self.body_first = body_first
        self.batched = batched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Codec({self.name!r})"


#: codec names accepted by ``get_codec`` and every ``codec=`` knob
CODEC_NAMES = ("json", "binary")


def get_codec(spec: "str | Codec | None" = None) -> Codec:
    """Resolve a ``codec=`` knob value to a :class:`Codec` (default JSON)."""
    if spec is None:
        return JSON_CODEC
    if isinstance(spec, Codec):
        return spec
    if spec == "json":
        return JSON_CODEC
    if spec == "binary":
        return BINARY_CODEC
    raise WireError(f"unknown codec {spec!r} (choose from {CODEC_NAMES})")


def handshake_fields(codec: Codec) -> Dict[str, Any]:
    """The codec-negotiation fields a connection handshake must carry."""
    return {"codec": codec.name, "wire": WIRE_VERSION, "table": _TABLE_LEN}


def check_handshake_codec(handshake: Dict[str, Any], codec: Codec) -> None:
    """Validate a peer's handshake against this endpoint's codec.

    Raises :class:`CodecMismatchError` when the peer negotiated a different
    codec, or (for the binary codec) a different wire revision or string
    table — the loud failure mode, instead of garbage frames later.
    Handshakes without a ``codec`` field are from pre-codec peers and are
    treated as JSON.
    """
    peer = handshake.get("codec", "json")
    if peer != codec.name:
        raise CodecMismatchError(
            f"peer negotiated codec {peer!r} but this endpoint speaks {codec.name!r}"
        )
    if codec.name == "binary":
        peer_wire = handshake.get("wire")
        peer_table = handshake.get("table")
        if peer_wire != WIRE_VERSION or peer_table != _TABLE_LEN:
            raise CodecMismatchError(
                f"peer speaks binary wire revision {peer_wire!r} with a "
                f"{peer_table!r}-entry string table; this endpoint speaks "
                f"revision {WIRE_VERSION} with {_TABLE_LEN} entries"
            )


# -------------------------------------------------------------------- framing


def frame(body: bytes) -> bytes:
    """Wrap a body in the 4-byte big-endian length prefix."""
    if len(body) > MAX_FRAME_SIZE:
        raise WireError(f"frame body of {len(body)} bytes exceeds MAX_FRAME_SIZE")
    return _LENGTH.pack(len(body)) + body


def frame_message(message: Message) -> bytes:
    """Encode and frame a message in one step (the sender hot path).

    The finished frame is memoized on the message (invalidated by
    :meth:`~repro.net.process.Process.send` when the sender changes), so a
    broker fanning one notification out to N socket links encodes it once.
    """
    cached = message._frame_json
    if cached is None:
        cached = message._frame_json = frame(encode_message(message))
    return cached


class FrameDecoder:
    """Incremental splitter of a TCP byte stream into frame bodies.

    Feed arbitrary chunks in the order they arrive; complete bodies come out
    in order.  Partial frames are buffered until their remainder shows up.

    Completed frames are scanned with a moving offset and the buffer is
    compacted once per :meth:`feed` call, so a burst of many frames costs one
    memmove instead of one per frame (``del buffer[:end]`` inside the loop
    made long-lived connections pay O(bytes x frames) per read).

    When :attr:`codec` is set (receivers arm it once the connection
    handshake has fixed the codec), every completed body's first byte is
    checked against the codec's expected leading byte and a foreign frame
    raises :class:`CodecMismatchError` — distinct from the plain
    :class:`WireError` raised for truncated or oversized frames.
    """

    __slots__ = ("_buffer", "codec")

    def __init__(self, codec: "Codec | str | None" = None) -> None:
        self._buffer = bytearray()
        self.codec = get_codec(codec) if codec is not None else None

    def feed(self, data: bytes) -> List[bytes]:
        """Add received bytes; return every frame body completed by them."""
        self._buffer.extend(data)
        bodies: List[bytes] = []
        buffer = self._buffer
        codec = self.codec
        expected_first = codec.body_first if codec is not None else None
        offset = 0
        available = len(buffer)
        while available - offset >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(buffer, offset)
            if length > MAX_FRAME_SIZE:
                raise WireError(f"incoming frame of {length} bytes exceeds MAX_FRAME_SIZE")
            end = offset + _LENGTH.size + length
            if available < end:
                break
            body = bytes(buffer[offset + _LENGTH.size:end])
            if expected_first is not None and body and body[0] != expected_first:
                raise CodecMismatchError(
                    f"frame body begins with 0x{body[0]:02x} but this connection "
                    f"negotiated the {codec.name!r} codec "
                    f"(expected 0x{expected_first:02x})"
                )
            bodies.append(body)
            offset = end
        if offset:
            # single compaction: the consumed prefix goes away, the partial
            # tail (if any) stays buffered for the next feed
            del buffer[:offset]
        return bodies

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


def iter_frames(data: bytes) -> Iterator[bytes]:
    """Split a complete byte string into frame bodies (test/diagnostic helper)."""
    decoder = FrameDecoder()
    for body in decoder.feed(data):
        yield body
    if decoder.pending_bytes:
        raise WireError(f"{decoder.pending_bytes} trailing bytes after the last frame")


#: the tagged-JSON reference codec — golden-trace pinned, one write per frame
JSON_CODEC = Codec("json", encode_message, decode_message, frame_message, 0x7B, False)

#: the binary performance codec — interned strings, hop-level write batching
BINARY_CODEC = Codec(
    "binary",
    encode_message_binary,
    decode_message_binary,
    frame_message_binary,
    BINARY_VERSION,
    True,
)
