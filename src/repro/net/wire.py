"""Wire serialization for the asyncio transport backend.

The deterministic simulator hands :class:`~repro.net.process.Message` objects
between processes as plain Python references; real sockets need bytes.  This
module is the codec between the two worlds: every message the pub/sub layer
exchanges — ``publish``/``notify`` carrying a
:class:`~repro.pubsub.notification.Notification`, ``subscribe`` carrying a
:class:`~repro.pubsub.subscription.Subscription`, ``unsubscribe``/``detach``
control payloads carrying :class:`~repro.pubsub.filters.Filter` objects — can
be encoded to a length-prefixed frame and decoded back to an equal object.

Design notes
------------
* **Framing** is a 4-byte big-endian length prefix followed by the body
  (:func:`frame`/:class:`FrameDecoder`), the standard way to delimit messages
  on a TCP stream.
* **Encoding** is tagged JSON: domain objects become ``{"__t__": tag, ...}``
  dictionaries, containers recurse, and the final body is emitted with sorted
  keys and no whitespace so that *the same message always encodes to the same
  bytes*.  That determinism is what the ``SimTransport`` cross-check tests
  hash.
* Non-finite floats (``Range`` uses ``±inf`` bounds) rely on Python's JSON
  ``Infinity`` extension, which is symmetric between ``dumps`` and ``loads``.
* The codec is deliberately closed: encoding an object it does not know about
  raises :class:`WireError` instead of silently pickling arbitrary state.
  (``pickle`` would accept everything but turn every broker into a remote
  code execution endpoint; a closed codec is the safe default for sockets.)
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, Tuple

from .process import Message

_LENGTH = struct.Struct(">I")

#: frames larger than this are rejected as corrupt (16 MiB)
MAX_FRAME_SIZE = 16 * 1024 * 1024

_TAG = "__t__"


class WireError(ValueError):
    """Raised when a value cannot be encoded, or a frame cannot be decoded."""


# --------------------------------------------------------------------- values


def _encode_value(obj: Any) -> Any:
    """Transform ``obj`` into a JSON-serialisable structure with type tags."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [_encode_value(item) for item in obj]
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "items": [_encode_value(item) for item in obj]}
    if isinstance(obj, (set, frozenset)):
        # distinct tags so mutability round-trips: a receiver must see the
        # same type the sim backend would have handed over by reference
        tag = "frozenset" if isinstance(obj, frozenset) else "set"
        items = sorted((_encode_value(item) for item in obj), key=repr)
        return {_TAG: tag, "items": items}
    if isinstance(obj, dict):
        if any(not isinstance(key, str) for key in obj):
            raise WireError(f"only string dict keys are encodable, got {obj!r}")
        if _TAG in obj:
            raise WireError(f"dict key {_TAG!r} is reserved for the codec")
        return {key: _encode_value(value) for key, value in obj.items()}

    # domain objects — imported lazily to keep net/ free of a pubsub dependency
    from ..pubsub.filters import Constraint, Filter
    from ..pubsub.notification import Notification
    from ..pubsub.subscription import Subscription

    if isinstance(obj, Notification):
        return {
            _TAG: "notification",
            # through _encode_value so non-string keys raise WireError
            # instead of being silently stringified by json.dumps
            "attrs": _encode_value(obj.attributes),
            "id": obj.notification_id,
            "published_at": obj.published_at,
            "publisher": obj.publisher,
        }
    if isinstance(obj, Filter):
        return {
            _TAG: "filter",
            "constraints": [_encode_constraint(c) for c in obj.constraints],
        }
    if isinstance(obj, Constraint):
        return _encode_constraint(obj)
    if isinstance(obj, Subscription):
        if obj.template is not None:
            raise WireError(
                "subscriptions carrying an unbound location template are not "
                "wire-encodable; bind the template before shipping it"
            )
        return {
            _TAG: "subscription",
            "sub_id": obj.sub_id,
            "filter": _encode_value(obj.filter),
            "subscriber": obj.subscriber,
            "location_dependent": obj.location_dependent,
            "meta": _encode_value(obj.meta),
        }
    if isinstance(obj, Message):
        return _encode_message_value(obj)
    raise WireError(f"cannot encode {type(obj).__name__} value {obj!r}")


def _encode_constraint(constraint: Any) -> Dict[str, Any]:
    from ..pubsub import filters as f

    if isinstance(constraint, f.Exists):
        return {_TAG: "c:exists", "attr": constraint.attribute}
    if isinstance(constraint, f.Equals):
        return {_TAG: "c:eq", "attr": constraint.attribute, "value": _encode_value(constraint.value)}
    if isinstance(constraint, f.NotEquals):
        return {_TAG: "c:ne", "attr": constraint.attribute, "value": _encode_value(constraint.value)}
    if isinstance(constraint, f.InSet):
        values = sorted((_encode_value(v) for v in constraint.values), key=repr)
        return {_TAG: "c:in", "attr": constraint.attribute, "values": values}
    if isinstance(constraint, f.Range):
        return {
            _TAG: "c:range",
            "attr": constraint.attribute,
            "low": constraint.low,
            "high": constraint.high,
            "include_low": constraint.include_low,
            "include_high": constraint.include_high,
        }
    if isinstance(constraint, f.Prefix):
        return {_TAG: "c:prefix", "attr": constraint.attribute, "prefix": constraint.prefix}
    raise WireError(f"cannot encode constraint type {type(constraint).__name__}")


def _encode_message_value(message: Message) -> Dict[str, Any]:
    return {
        _TAG: "message",
        "kind": message.kind,
        "payload": _encode_value(message.payload),
        "sender": message.sender,
        "msg_id": message.msg_id,
        # through _encode_value so non-string meta keys raise WireError
        "meta": _encode_value(message.meta),
    }


def _decode_value(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [_decode_value(item) for item in obj]
    if not isinstance(obj, dict):  # pragma: no cover - json only yields the above
        raise WireError(f"unexpected decoded value {obj!r}")
    tag = obj.get(_TAG)
    if tag is None:
        return {key: _decode_value(value) for key, value in obj.items()}
    if tag == "tuple":
        return tuple(_decode_value(item) for item in obj["items"])
    if tag == "set":
        return set(_decode_value(item) for item in obj["items"])
    if tag == "frozenset":
        return frozenset(_decode_value(item) for item in obj["items"])

    from ..pubsub import filters as f
    from ..pubsub.notification import Notification
    from ..pubsub.subscription import Subscription

    if tag == "notification":
        return Notification(
            {k: _decode_value(v) for k, v in obj["attrs"].items()},
            published_at=obj["published_at"],
            publisher=obj["publisher"],
            notification_id=obj["id"],
        )
    if tag == "filter":
        return f.Filter(_decode_value(c) for c in obj["constraints"])
    if tag == "subscription":
        return Subscription(
            sub_id=obj["sub_id"],
            filter=_decode_value(obj["filter"]),
            subscriber=obj["subscriber"],
            location_dependent=obj["location_dependent"],
            meta={k: _decode_value(v) for k, v in obj["meta"].items()},
        )
    if tag == "message":
        return Message(
            kind=obj["kind"],
            payload=_decode_value(obj["payload"]),
            sender=obj["sender"],
            msg_id=obj["msg_id"],
            meta={k: _decode_value(v) for k, v in obj["meta"].items()},
        )
    if tag == "c:exists":
        return f.Exists(obj["attr"])
    if tag == "c:eq":
        return f.Equals(obj["attr"], _decode_value(obj["value"]))
    if tag == "c:ne":
        return f.NotEquals(obj["attr"], _decode_value(obj["value"]))
    if tag == "c:in":
        return f.InSet(obj["attr"], (_decode_value(v) for v in obj["values"]))
    if tag == "c:range":
        return f.Range(
            obj["attr"],
            low=obj["low"],
            high=obj["high"],
            include_low=obj["include_low"],
            include_high=obj["include_high"],
        )
    if tag == "c:prefix":
        return f.Prefix(obj["attr"], obj["prefix"])
    raise WireError(f"unknown wire tag {tag!r}")


# ------------------------------------------------------------------- messages


def encode_message(message: Message) -> bytes:
    """Serialize a message to its canonical (deterministic) byte body."""
    body = _encode_message_value(message)
    return json.dumps(body, sort_keys=True, separators=(",", ":"), allow_nan=True).encode("utf-8")


def decode_message(data: bytes) -> Message:
    """Parse a byte body produced by :func:`encode_message`."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed wire body: {exc}") from exc
    decoded = _decode_value(obj)
    if not isinstance(decoded, Message):
        raise WireError(f"wire body is not a message: {decoded!r}")
    return decoded


def encode_control(obj: Any) -> bytes:
    """Serialize a non-message control payload (handshakes, diagnostics)."""
    return json.dumps(_encode_value(obj), sort_keys=True, separators=(",", ":"), allow_nan=True).encode("utf-8")


def decode_control(data: bytes) -> Any:
    try:
        return _decode_value(json.loads(data.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed control body: {exc}") from exc


# -------------------------------------------------------------------- framing


def frame(body: bytes) -> bytes:
    """Wrap a body in the 4-byte big-endian length prefix."""
    if len(body) > MAX_FRAME_SIZE:
        raise WireError(f"frame body of {len(body)} bytes exceeds MAX_FRAME_SIZE")
    return _LENGTH.pack(len(body)) + body


def frame_message(message: Message) -> bytes:
    """Encode and frame a message in one step (the sender hot path)."""
    return frame(encode_message(message))


class FrameDecoder:
    """Incremental splitter of a TCP byte stream into frame bodies.

    Feed arbitrary chunks in the order they arrive; complete bodies come out
    in order.  Partial frames are buffered until their remainder shows up.

    Completed frames are scanned with a moving offset and the buffer is
    compacted once per :meth:`feed` call, so a burst of many frames costs one
    memmove instead of one per frame (``del buffer[:end]`` inside the loop
    made long-lived connections pay O(bytes x frames) per read).
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        """Add received bytes; return every frame body completed by them."""
        self._buffer.extend(data)
        bodies: List[bytes] = []
        buffer = self._buffer
        offset = 0
        available = len(buffer)
        while available - offset >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(buffer, offset)
            if length > MAX_FRAME_SIZE:
                raise WireError(f"incoming frame of {length} bytes exceeds MAX_FRAME_SIZE")
            end = offset + _LENGTH.size + length
            if available < end:
                break
            bodies.append(bytes(buffer[offset + _LENGTH.size:end]))
            offset = end
        if offset:
            # single compaction: the consumed prefix goes away, the partial
            # tail (if any) stays buffered for the next feed
            del buffer[:offset]
        return bodies

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


def iter_frames(data: bytes) -> Iterator[bytes]:
    """Split a complete byte string into frame bodies (test/diagnostic helper)."""
    decoder = FrameDecoder()
    for body in decoder.feed(data):
        yield body
    if decoder.pending_bytes:
        raise WireError(f"{decoder.pending_bytes} trailing bytes after the last frame")
