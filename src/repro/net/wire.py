"""Wire serialization for the asyncio transport backend.

The deterministic simulator hands :class:`~repro.net.process.Message` objects
between processes as plain Python references; real sockets need bytes.  This
module is the codec between the two worlds: every message the pub/sub layer
exchanges — ``publish``/``notify`` carrying a
:class:`~repro.pubsub.notification.Notification`, ``subscribe`` carrying a
:class:`~repro.pubsub.subscription.Subscription`, ``unsubscribe``/``detach``
control payloads carrying :class:`~repro.pubsub.filters.Filter` objects — can
be encoded to a length-prefixed frame and decoded back to an equal object.
The mobility layer's replicated-handover protocol is covered too:
``client_hello`` profiles, location templates
(:class:`~repro.core.location_filter.LocationDependentFilter`, including ones
riding on a location-dependent :class:`Subscription`), the
``handover_request``/``handover_reply`` relocation exchange and replicator
stats snapshots all round-trip, which is what lets ``MobilePubSub`` run on
real sockets.

Design notes
------------
* **Framing** is a 4-byte big-endian length prefix followed by the body
  (:func:`frame`/:class:`FrameDecoder`), the standard way to delimit messages
  on a TCP stream.
* **Encoding** is tagged JSON: domain objects become ``{"__t__": tag, ...}``
  dictionaries, containers recurse, and the final body is emitted with sorted
  keys and no whitespace so that *the same message always encodes to the same
  bytes*.  That determinism is what the ``SimTransport`` cross-check tests
  hash.
* Non-finite floats (``Range`` uses ``±inf`` bounds) rely on Python's JSON
  ``Infinity`` extension, which is symmetric between ``dumps`` and ``loads``.
* The codec is deliberately closed: encoding an object it does not know about
  raises :class:`WireError` instead of silently pickling arbitrary state.
  (``pickle`` would accept everything but turn every broker into a remote
  code execution endpoint; a closed codec is the safe default for sockets.)
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, Tuple

from .process import Message

_LENGTH = struct.Struct(">I")

#: frames larger than this are rejected as corrupt (16 MiB)
MAX_FRAME_SIZE = 16 * 1024 * 1024

_TAG = "__t__"


class WireError(ValueError):
    """Raised when a value cannot be encoded, or a frame cannot be decoded."""


# --------------------------------------------------------------------- values


def _encode_value(obj: Any) -> Any:
    """Transform ``obj`` into a JSON-serialisable structure with type tags."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [_encode_value(item) for item in obj]
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "items": [_encode_value(item) for item in obj]}
    if isinstance(obj, (set, frozenset)):
        # distinct tags so mutability round-trips: a receiver must see the
        # same type the sim backend would have handed over by reference
        tag = "frozenset" if isinstance(obj, frozenset) else "set"
        items = sorted((_encode_value(item) for item in obj), key=repr)
        return {_TAG: tag, "items": items}
    if isinstance(obj, dict):
        if any(not isinstance(key, str) for key in obj):
            raise WireError(f"only string dict keys are encodable, got {obj!r}")
        if _TAG in obj:
            raise WireError(f"dict key {_TAG!r} is reserved for the codec")
        return {key: _encode_value(value) for key, value in obj.items()}

    # domain objects — imported lazily to keep net/ free of a pubsub dependency
    from ..pubsub.filters import Constraint, Filter
    from ..pubsub.notification import Notification
    from ..pubsub.subscription import Subscription

    if isinstance(obj, Notification):
        return {
            _TAG: "notification",
            # through _encode_value so non-string keys raise WireError
            # instead of being silently stringified by json.dumps
            "attrs": _encode_value(obj.attributes),
            "id": obj.notification_id,
            "published_at": obj.published_at,
            "publisher": obj.publisher,
        }
    if isinstance(obj, Filter):
        return {
            _TAG: "filter",
            "constraints": [_encode_constraint(c) for c in obj.constraints],
        }
    if isinstance(obj, Constraint):
        return _encode_constraint(obj)
    if isinstance(obj, Subscription):
        encoded = {
            _TAG: "subscription",
            "sub_id": obj.sub_id,
            "filter": _encode_value(obj.filter),
            "subscriber": obj.subscriber,
            "location_dependent": obj.location_dependent,
            "meta": _encode_value(obj.meta),
        }
        if obj.template is not None:
            # location templates are wire-encodable payloads; anything else
            # (an opaque application object) still fails the closed-set check
            # below.  The key is omitted when absent so plain subscriptions
            # keep their pre-mobility byte encoding (golden traces).
            encoded["template"] = _encode_value(obj.template)
        return encoded
    if isinstance(obj, Message):
        return _encode_message_value(obj)

    # mobility-layer control payloads (the replicated-handover protocol)
    from ..core.location_filter import LocationDependentFilter
    from ..core.physical_mobility import HandoverReply, HandoverRequest
    from ..core.replicator import ClientHello, ReplicatorStats

    if isinstance(obj, LocationDependentFilter):
        return {
            _TAG: "loctemplate",
            "static": _encode_value(obj.static_filter),
            "attr": obj.location_attribute,
            "scope": obj.scope,
        }
    if isinstance(obj, ClientHello):
        return {
            _TAG: "client_hello",
            "client_id": obj.client_id,
            "location": obj.location,
            "templates": _encode_value(obj.templates),
            "plain_filters": _encode_value(obj.plain_filters),
            "previous_broker": obj.previous_broker,
            "reissue": obj.reissue,
        }
    if isinstance(obj, HandoverRequest):
        return {
            _TAG: "handover_request",
            "client_id": obj.client_id,
            "new_broker": obj.new_broker,
            "new_replicator": obj.new_replicator,
        }
    if isinstance(obj, HandoverReply):
        return {
            _TAG: "handover_reply",
            "client_id": obj.client_id,
            "old_broker": obj.old_broker,
            "plain_filters": _encode_value(obj.plain_filters),
            "buffered_plain": [_encode_value(n) for n in obj.buffered_plain],
            "buffered_location": [_encode_value(n) for n in obj.buffered_location],
            "found": obj.found,
        }
    if isinstance(obj, ReplicatorStats):
        from dataclasses import fields

        stats = {f.name: getattr(obj, f.name) for f in fields(obj)}
        return {_TAG: "replicator_stats", "stats": stats}
    raise WireError(f"cannot encode {type(obj).__name__} value {obj!r}")


def _encode_constraint(constraint: Any) -> Dict[str, Any]:
    from ..pubsub import filters as f

    if isinstance(constraint, f.Exists):
        return {_TAG: "c:exists", "attr": constraint.attribute}
    if isinstance(constraint, f.Equals):
        return {_TAG: "c:eq", "attr": constraint.attribute, "value": _encode_value(constraint.value)}
    if isinstance(constraint, f.NotEquals):
        return {_TAG: "c:ne", "attr": constraint.attribute, "value": _encode_value(constraint.value)}
    if isinstance(constraint, f.InSet):
        values = sorted((_encode_value(v) for v in constraint.values), key=repr)
        return {_TAG: "c:in", "attr": constraint.attribute, "values": values}
    if isinstance(constraint, f.Range):
        return {
            _TAG: "c:range",
            "attr": constraint.attribute,
            "low": constraint.low,
            "high": constraint.high,
            "include_low": constraint.include_low,
            "include_high": constraint.include_high,
        }
    if isinstance(constraint, f.Prefix):
        return {_TAG: "c:prefix", "attr": constraint.attribute, "prefix": constraint.prefix}
    raise WireError(f"cannot encode constraint type {type(constraint).__name__}")


def _encode_message_value(message: Message) -> Dict[str, Any]:
    return {
        _TAG: "message",
        "kind": message.kind,
        "payload": _encode_value(message.payload),
        "sender": message.sender,
        "msg_id": message.msg_id,
        # through _encode_value so non-string meta keys raise WireError
        "meta": _encode_value(message.meta),
    }


def _decode_value(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [_decode_value(item) for item in obj]
    if not isinstance(obj, dict):  # pragma: no cover - json only yields the above
        raise WireError(f"unexpected decoded value {obj!r}")
    tag = obj.get(_TAG)
    if tag is None:
        return {key: _decode_value(value) for key, value in obj.items()}
    if tag == "tuple":
        return tuple(_decode_value(item) for item in obj["items"])
    if tag == "set":
        return set(_decode_value(item) for item in obj["items"])
    if tag == "frozenset":
        return frozenset(_decode_value(item) for item in obj["items"])

    from ..pubsub import filters as f
    from ..pubsub.notification import Notification
    from ..pubsub.subscription import Subscription

    if tag == "notification":
        return Notification(
            {k: _decode_value(v) for k, v in obj["attrs"].items()},
            published_at=obj["published_at"],
            publisher=obj["publisher"],
            notification_id=obj["id"],
        )
    if tag == "filter":
        return f.Filter(_decode_value(c) for c in obj["constraints"])
    if tag == "subscription":
        template = obj.get("template")
        return Subscription(
            sub_id=obj["sub_id"],
            filter=_decode_value(obj["filter"]),
            subscriber=obj["subscriber"],
            location_dependent=obj["location_dependent"],
            template=_decode_value(template) if template is not None else None,
            meta={k: _decode_value(v) for k, v in obj["meta"].items()},
        )
    if tag == "message":
        return Message(
            kind=obj["kind"],
            payload=_decode_value(obj["payload"]),
            sender=obj["sender"],
            msg_id=obj["msg_id"],
            meta={k: _decode_value(v) for k, v in obj["meta"].items()},
        )
    if tag == "c:exists":
        return f.Exists(obj["attr"])
    if tag == "c:eq":
        return f.Equals(obj["attr"], _decode_value(obj["value"]))
    if tag == "c:ne":
        return f.NotEquals(obj["attr"], _decode_value(obj["value"]))
    if tag == "c:in":
        return f.InSet(obj["attr"], (_decode_value(v) for v in obj["values"]))
    if tag == "c:range":
        return f.Range(
            obj["attr"],
            low=obj["low"],
            high=obj["high"],
            include_low=obj["include_low"],
            include_high=obj["include_high"],
        )
    if tag == "c:prefix":
        return f.Prefix(obj["attr"], obj["prefix"])

    from ..core.location_filter import LocationDependentFilter
    from ..core.physical_mobility import HandoverReply, HandoverRequest
    from ..core.replicator import ClientHello, ReplicatorStats

    if tag == "loctemplate":
        return LocationDependentFilter(
            static_filter=_decode_value(obj["static"]),
            location_attribute=obj["attr"],
            scope=obj["scope"],
        )
    if tag == "client_hello":
        return ClientHello(
            client_id=obj["client_id"],
            location=obj["location"],
            templates={k: _decode_value(v) for k, v in obj["templates"].items()},
            plain_filters={k: _decode_value(v) for k, v in obj["plain_filters"].items()},
            previous_broker=obj["previous_broker"],
            reissue=obj["reissue"],
        )
    if tag == "handover_request":
        return HandoverRequest(
            client_id=obj["client_id"],
            new_broker=obj["new_broker"],
            new_replicator=obj["new_replicator"],
        )
    if tag == "handover_reply":
        return HandoverReply(
            client_id=obj["client_id"],
            old_broker=obj["old_broker"],
            plain_filters={k: _decode_value(v) for k, v in obj["plain_filters"].items()},
            buffered_plain=[_decode_value(n) for n in obj["buffered_plain"]],
            buffered_location=[_decode_value(n) for n in obj["buffered_location"]],
            found=obj["found"],
        )
    if tag == "replicator_stats":
        return ReplicatorStats(**obj["stats"])
    raise WireError(f"unknown wire tag {tag!r}")


# ------------------------------------------------------------------- messages


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=True)


def _notification_fragment(notification: Any) -> str:
    """The canonical JSON fragment of a notification, cached on the object.

    Notifications are immutable, so the fragment computed on the first
    encode (or primed by :func:`decode_message`) is reused by every later
    encode of the same object — a broker fanning one notification out to K
    links serializes the payload once instead of K times, and a hop that
    just decoded a payload never re-walks it to forward it.
    ``Message.copy()`` shares the (immutable) payload, so forwarded copies
    share the cache; any mutation path (``with_attributes``/``stamped``)
    builds a new object with an empty cache.
    """
    fragment = notification._wire
    if fragment is None:
        fragment = _dumps(_encode_value(notification))
        notification._wire = fragment
    return fragment


def encode_message(message: Message) -> bytes:
    """Serialize a message to its canonical (deterministic) byte body."""
    payload = message.payload
    from ..pubsub.notification import Notification  # lazy, as in _encode_value

    if isinstance(payload, Notification):
        # splice the cached payload fragment into the canonical body; key
        # order of the hand-built JSON matches sort_keys=True
        # ("__t__" < "kind" < "meta" < "msg_id" < "payload" < "sender")
        head = _dumps(
            {
                _TAG: "message",
                "kind": message.kind,
                "meta": _encode_value(message.meta),
                "msg_id": message.msg_id,
            }
        )
        tail = _dumps({"sender": message.sender})
        return f'{head[:-1]},"payload":{_notification_fragment(payload)},{tail[1:]}'.encode("utf-8")
    return _dumps(_encode_message_value(message)).encode("utf-8")


def decode_message(data: bytes) -> Message:
    """Parse a byte body produced by :func:`encode_message`."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed wire body: {exc}") from exc
    decoded = _decode_value(obj)
    if not isinstance(decoded, Message):
        raise WireError(f"wire body is not a message: {decoded!r}")
    payload = decoded.payload
    from ..pubsub.notification import Notification

    if isinstance(payload, Notification) and payload._wire is None:
        # prime the fragment cache from the parsed body: re-dumping the
        # already-canonical payload sub-structure is byte-identical to the
        # sender's encoding, so the next hop forwards without re-encoding
        payload._wire = _dumps(obj["payload"])
    return decoded


def encode_control(obj: Any) -> bytes:
    """Serialize a non-message control payload (handshakes, diagnostics)."""
    return _dumps(_encode_value(obj)).encode("utf-8")


def decode_control(data: bytes) -> Any:
    try:
        return _decode_value(json.loads(data.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed control body: {exc}") from exc


# -------------------------------------------------------------------- framing


def frame(body: bytes) -> bytes:
    """Wrap a body in the 4-byte big-endian length prefix."""
    if len(body) > MAX_FRAME_SIZE:
        raise WireError(f"frame body of {len(body)} bytes exceeds MAX_FRAME_SIZE")
    return _LENGTH.pack(len(body)) + body


def frame_message(message: Message) -> bytes:
    """Encode and frame a message in one step (the sender hot path)."""
    return frame(encode_message(message))


class FrameDecoder:
    """Incremental splitter of a TCP byte stream into frame bodies.

    Feed arbitrary chunks in the order they arrive; complete bodies come out
    in order.  Partial frames are buffered until their remainder shows up.

    Completed frames are scanned with a moving offset and the buffer is
    compacted once per :meth:`feed` call, so a burst of many frames costs one
    memmove instead of one per frame (``del buffer[:end]`` inside the loop
    made long-lived connections pay O(bytes x frames) per read).
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        """Add received bytes; return every frame body completed by them."""
        self._buffer.extend(data)
        bodies: List[bytes] = []
        buffer = self._buffer
        offset = 0
        available = len(buffer)
        while available - offset >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(buffer, offset)
            if length > MAX_FRAME_SIZE:
                raise WireError(f"incoming frame of {length} bytes exceeds MAX_FRAME_SIZE")
            end = offset + _LENGTH.size + length
            if available < end:
                break
            bodies.append(bytes(buffer[offset + _LENGTH.size:end]))
            offset = end
        if offset:
            # single compaction: the consumed prefix goes away, the partial
            # tail (if any) stays buffered for the next feed
            del buffer[:offset]
        return bodies

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


def iter_frames(data: bytes) -> Iterator[bytes]:
    """Split a complete byte string into frame bodies (test/diagnostic helper)."""
    decoder = FrameDecoder()
    for body in decoder.feed(data):
        yield body
    if decoder.pending_bytes:
        raise WireError(f"{decoder.pending_bytes} trailing bytes after the last frame")
