"""Discrete-event simulation substrate.

This package replaces the physical deployment of the original REBECA
middleware (TCP links between Java broker processes, wireless access links to
mobile devices) with a deterministic, laptop-scale simulation that preserves
the properties the paper's algorithms rely on: per-link FIFO delivery, known
latencies and explicit connection awareness.
"""

from .faults import FaultEvent, FaultInjector, FaultLog
from .link import Link, LinkStats, Network
from .process import LinkEndpoint, Message, Process
from .simulator import EventHandle, PeriodicTask, SimulationError, Simulator, drain
from .wireless import CoverageMap, WirelessChannel, WirelessStats

__all__ = [
    "CoverageMap",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "EventHandle",
    "Link",
    "LinkEndpoint",
    "LinkStats",
    "Message",
    "Network",
    "PeriodicTask",
    "Process",
    "SimulationError",
    "Simulator",
    "WirelessChannel",
    "WirelessStats",
    "drain",
]
