"""Discrete-event simulation substrate.

This package replaces the physical deployment of the original REBECA
middleware (TCP links between Java broker processes, wireless access links to
mobile devices) with a deterministic, laptop-scale simulation that preserves
the properties the paper's algorithms rely on: per-link FIFO delivery, known
latencies and explicit connection awareness.
"""

from .cluster import ClusterError, ClusterTransport, RemoteBroker
from .faults import FaultEvent, FaultInjector, FaultLog
from .link import Link, LinkStats, Network
from .process import LinkEndpoint, Message, Process
from .registry import RegistryError, RegistryServer
from .simulator import EventHandle, PeriodicTask, SimulationError, Simulator, drain
from .transport import (
    TRANSPORT_NAMES,
    AsyncioTransport,
    SimTransport,
    Transport,
    TransportError,
    make_transport,
)
from .wire import FrameDecoder, WireError, decode_message, encode_message, frame_message
from .wireless import CoverageMap, WirelessChannel, WirelessStats

__all__ = [
    "AsyncioTransport",
    "ClusterError",
    "ClusterTransport",
    "CoverageMap",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "EventHandle",
    "FrameDecoder",
    "Link",
    "LinkEndpoint",
    "LinkStats",
    "Message",
    "Network",
    "PeriodicTask",
    "Process",
    "RegistryError",
    "RegistryServer",
    "RemoteBroker",
    "SimTransport",
    "SimulationError",
    "Simulator",
    "TRANSPORT_NAMES",
    "Transport",
    "TransportError",
    "WireError",
    "WirelessChannel",
    "WirelessStats",
    "decode_message",
    "drain",
    "encode_message",
    "frame_message",
    "make_transport",
]
