"""Broker discovery and coordination for the multi-process cluster runner.

When the broker graph is sharded across OS processes
(:mod:`repro.net.cluster`), somebody has to answer three questions that the
single-process backends never had to ask:

* **discovery** — broker ``B2`` lives at which ``host:port``?  Every broker
  node binds an ephemeral port, so addresses are only known at runtime;
* **readiness** — when are *all* brokers up with *all* their links dialled,
  so that publishing cannot race the topology coming up?
* **control** — how does the parent ask a node for its counters, tell it to
  shut down in an orderly way, or notice that it crashed?

The :class:`RegistryServer` answers all three over one tiny TCP protocol:
length-prefixed wire frames (:mod:`repro.net.wire`) carrying JSON control
payloads.  It runs inside the *parent* process on the cluster transport's
event loop; broker nodes keep one long-lived "control channel" connection to
it (register -> ready -> serve requests), while lookups use short-lived
connections.

Protocol summary (every payload is one wire frame)::

    node  -> registry   {"op": "register", "name", "host", "port"}
    registry -> node    {"ok": true}            # or {"ok": false, "error"}
    node  -> registry   {"op": "ready", "name"}
    registry -> node    {"ok": true}
    # ... from here the direction inverts: the parent drives the channel ...
    registry -> node    {"op": "stats", "rid": 7}
    node  -> registry   {"re": 7, "ok": true, "stats": {...}}
    registry -> node    {"op": "shutdown", "rid": 8}
    node  -> registry   {"re": 8, "ok": true}   # then the node exits 0

    anyone -> registry  {"op": "lookup", "name", "timeout"}   # fresh conn
    registry -> anyone  {"ok": true, "host", "port"}          # waits for
                                                              # registration

A node whose control channel hits EOF (parent died) is expected to exit, so
a crashed parent never leaves orphan broker processes behind.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from .wire import FrameDecoder, decode_control, encode_control, frame


class RegistryError(RuntimeError):
    """Raised on registry protocol violations, duplicates and timeouts."""


class FrameChannel:
    """A bidirectional stream of wire-framed control payloads.

    Wraps an asyncio stream pair: :meth:`send` is synchronous (bytes buffer
    onto the writer), :meth:`recv` returns the next decoded payload or
    ``None`` on EOF.  Shared by the registry server, the broker nodes and
    the cluster transport's client attachments.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self._decoder = FrameDecoder()
        self._pending: deque = deque()

    def send(self, payload: Any) -> None:
        self.writer.write(frame(encode_control(payload)))

    async def drain(self) -> None:
        await self.writer.drain()

    async def recv(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Next decoded payload, or ``None`` once the peer closed the stream."""
        while not self._pending:
            read = self.reader.read(65536)
            data = await (asyncio.wait_for(read, timeout) if timeout else read)
            if not data:
                return None
            self._pending.extend(self._decoder.feed(data))
        return decode_control(self._pending.popleft())

    def close(self) -> None:
        self.writer.close()


class RegistryServer:
    """Name -> address registry plus readiness barrier and node control.

    Parameters
    ----------
    host:
        Interface to bind (default localhost).
    port:
        ``None`` (default) binds an ephemeral port.  An explicit port is
        tried first and, on collision (``EADDRINUSE``), the next
        ``port_retries`` consecutive ports are attempted before giving up —
        deployments that pin a well-known registry port keep working when a
        stale process still holds it.
    port_retries:
        How many consecutive ports to try after an explicit ``port``.
    """

    def __init__(self, host: str = "127.0.0.1", port: Optional[int] = None, port_retries: int = 16):
        self.host = host
        self.preferred_port = port
        self.port_retries = port_retries
        self.address: Optional[Tuple[str, int]] = None
        #: broker name -> advertised (host, port)
        self.registered: Dict[str, Tuple[str, int]] = {}
        #: names that completed their link setup and reported ready
        self.ready: Set[str] = set()
        #: names whose control channel has gone away (crash or shutdown)
        self.disconnected: Set[str] = set()
        self._controls: Dict[str, FrameChannel] = {}
        self._rid = itertools.count(1)
        #: rid -> (reply future, owning node name); the owner lets a dying
        #: control channel fail its in-flight calls immediately instead of
        #: leaving the caller to wait out the timeout
        self._replies: Dict[int, Tuple[asyncio.Future, Optional[str]]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()

    # ------------------------------------------------------------------ server
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self.preferred_port is None:
            candidates: Iterable[int] = (0,)
        else:
            candidates = range(self.preferred_port, self.preferred_port + self.port_retries + 1)
        last_error: Optional[OSError] = None
        for candidate in candidates:
            try:
                self._server = await asyncio.start_server(
                    self._serve_connection, host=self.host, port=candidate
                )
            except OSError as exc:
                last_error = exc
                continue
            self.address = self._server.sockets[0].getsockname()[:2]
            return self.address
        raise RegistryError(
            f"could not bind the registry on {self.host}:{self.preferred_port} "
            f"(+{self.port_retries} retries): {last_error}"
        )

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_tasks.add(asyncio.current_task())
        channel = FrameChannel(reader, writer)
        registered_name: Optional[str] = None
        try:
            while True:
                payload = await channel.recv()
                if payload is None:
                    break
                if isinstance(payload, dict) and "re" in payload:
                    future, _owner = self._replies.pop(payload["re"], (None, None))
                    if future is not None and not future.done():
                        future.set_result(payload)
                    continue
                op = payload.get("op") if isinstance(payload, dict) else None
                if op == "register":
                    registered_name = await self._handle_register(channel, payload)
                elif op == "ready":
                    self.ready.add(payload.get("name"))
                    channel.send({"ok": True})
                elif op == "lookup":
                    await self._handle_lookup(channel, payload)
                else:
                    channel.send({"ok": False, "error": f"unknown registry op {op!r}"})
                await channel.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # close() cancels live connection tasks; returning normally keeps
            # the stream protocol's done-callback from logging the cancel
            pass
        finally:
            # Only the channel that currently owns the name may tear its
            # registration down: after a crash + re-register, the *old*
            # connection's EOF arrives late and must not clobber the
            # restarted node's fresh control channel.
            if registered_name is not None and self._controls.get(registered_name) is channel:
                self.disconnected.add(registered_name)
                self._controls.pop(registered_name, None)
                for rid, (future, owner) in list(self._replies.items()):
                    if owner == registered_name:
                        self._replies.pop(rid, None)
                        if not future.done():
                            future.set_exception(
                                RegistryError(f"control channel to {owner!r} closed")
                            )
            writer.close()
            self._conn_tasks.discard(asyncio.current_task())

    async def _handle_register(self, channel: FrameChannel, payload: dict) -> Optional[str]:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            channel.send({"ok": False, "error": f"invalid broker name {name!r}"})
            return None
        if name in self._controls:
            # a *live* holder of the name is a genuine duplicate; a stale
            # address left behind by a crashed node is not — supervised
            # restart re-registers under the same name with a new port
            channel.send({"ok": False, "error": f"duplicate broker name {name!r}"})
            return None
        self.registered[name] = (payload["host"], payload["port"])
        self._controls[name] = channel
        self.ready.discard(name)
        self.disconnected.discard(name)
        channel.send({"ok": True})
        return name

    async def _handle_lookup(self, channel: FrameChannel, payload: dict) -> None:
        name = payload.get("name")
        timeout = float(payload.get("timeout", 10.0))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while name not in self.registered and loop.time() < deadline:
            await asyncio.sleep(0.01)
        address = self.registered.get(name)
        if address is None:
            error = f"unknown broker {name!r} (not registered after {timeout}s)"
            channel.send({"ok": False, "error": error})
        else:
            channel.send({"ok": True, "host": address[0], "port": address[1]})

    def forget(self, name: str) -> None:
        """Erase a node's registration (used after a deliberate ``kill -9``).

        Clears the address, readiness and control-channel state so a
        supervised restart can re-register the name, and so a concurrent
        ``lookup`` cannot resolve to the dead node's stale port.
        """
        self.registered.pop(name, None)
        self.ready.discard(name)
        channel = self._controls.pop(name, None)
        if channel is not None:
            channel.close()
        self.disconnected.add(name)
        for rid, (future, owner) in list(self._replies.items()):
            if owner == name:
                self._replies.pop(rid, None)
                if not future.done():
                    future.set_exception(RegistryError(f"control channel to {owner!r} closed"))

    # ----------------------------------------------------------- coordination
    async def wait_ready(
        self,
        names: Iterable[str],
        timeout: float,
        liveness: Optional[Callable[[], None]] = None,
    ) -> None:
        """Block until every name reported ready (the cluster boot barrier).

        ``liveness`` is called on every poll tick; the cluster runner passes
        a callback that raises when a spawned broker process has died, so a
        crash during boot surfaces immediately instead of as a bare timeout.
        """
        wanted = set(names)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not wanted <= self.ready:
            if liveness is not None:
                liveness()
            if loop.time() > deadline:
                missing = sorted(wanted - self.ready)
                raise RegistryError(f"brokers never became ready within {timeout}s: {missing}")
            await asyncio.sleep(0.02)

    async def call(self, name: str, payload: dict, timeout: float = 10.0) -> dict:
        """Send a control request to a registered node and await its reply."""
        channel = self._controls.get(name)
        if channel is None:
            raise RegistryError(f"no live control channel for {name!r}")
        rid = next(self._rid)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._replies[rid] = (future, name)
        channel.send({**payload, "rid": rid})
        try:
            # the drain is bounded too: a hung child with a full socket
            # buffer must not wedge the parent's control loop
            await asyncio.wait_for(channel.drain(), timeout)
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._replies.pop(rid, None)
            raise RegistryError(f"node {name!r} did not answer {payload.get('op')!r} in {timeout}s")

    async def request(self, name: str, op: str, timeout: float = 10.0, **fields: Any) -> dict:
        """One control round-trip with the ``ok`` convention enforced.

        The single request-id + timeout + error-check path behind every
        control op the parent issues (``stats``, ``metrics``, ``configure``,
        ``link_down``/``link_up``, ``shutdown``) — each used to re-implement
        its own slice of this dance.  Raises :class:`RegistryError` when the
        node has no live control channel, does not answer in time, or
        answers ``ok: false`` (the node's error message is surfaced).
        """
        reply = await self.call(name, {"op": op, **fields}, timeout=timeout)
        if not reply.get("ok"):
            raise RegistryError(
                f"node {name!r} rejected {op!r}: {reply.get('error', 'no error given')}"
            )
        return reply

    async def close(self) -> None:
        for channel in list(self._controls.values()):
            channel.close()
        self._controls.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)


# ------------------------------------------------------------- node-side API


async def _connect(registry_address: Tuple[str, int], timeout: float) -> FrameChannel:
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(*registry_address), timeout
        )
    except asyncio.TimeoutError:
        raise RegistryError(f"registry at {registry_address} did not accept within {timeout}s")
    return FrameChannel(reader, writer)


async def roundtrip(
    channel: FrameChannel,
    payload: dict,
    what: str,
    timeout: float = 10.0,
    recv_timeout: Optional[float] = None,
) -> dict:
    """One node-side control exchange: send, drain, await the ``ok`` reply.

    The shared send/drain/recv/error-check sequence behind
    :func:`register_node`, :func:`report_ready` and :func:`lookup`, which
    used to carry three private copies of it.  ``what`` names the exchange
    in the :class:`RegistryError` raised on rejection or EOF.
    """
    channel.send(payload)
    await asyncio.wait_for(channel.drain(), timeout)
    reply = await channel.recv(timeout=recv_timeout if recv_timeout is not None else timeout)
    if not reply or not reply.get("ok"):
        raise RegistryError(
            f"{what} rejected: {(reply or {}).get('error', 'connection closed')}"
        )
    return reply


async def register_node(
    registry_address: Tuple[str, int],
    name: str,
    advertise_host: str,
    advertise_port: int,
    timeout: float = 10.0,
) -> FrameChannel:
    """Open a node's control channel: connect, register, return the channel.

    Raises :class:`RegistryError` when the registry refuses the name
    (duplicate registration) or does not answer in time.
    """
    channel = await _connect(registry_address, timeout)
    payload = {"op": "register", "name": name, "host": advertise_host, "port": advertise_port}
    try:
        await roundtrip(channel, payload, f"registration of {name!r}", timeout=timeout)
    except RegistryError:
        channel.close()
        raise
    return channel


async def report_ready(channel: FrameChannel, name: str, timeout: float = 10.0) -> None:
    """Tell the registry this node's links are all up (boot barrier)."""
    await roundtrip(
        channel, {"op": "ready", "name": name}, f"ready report for {name!r}", timeout=timeout
    )


async def lookup(
    registry_address: Tuple[str, int], name: str, timeout: float = 10.0
) -> Tuple[str, int]:
    """Resolve a broker name to its address, waiting for it to register."""
    channel = await _connect(registry_address, timeout)
    try:
        # the registry itself waits up to ``timeout`` for the name to appear,
        # so the reply read gets a little headroom on top
        reply = await roundtrip(
            channel,
            {"op": "lookup", "name": name, "timeout": timeout},
            f"lookup of {name!r}",
            timeout=timeout,
            recv_timeout=timeout + 5.0,
        )
    finally:
        channel.close()
    return reply["host"], reply["port"]
