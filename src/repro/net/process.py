"""Simulated processes and messages.

Every active component of the reproduced system — inner brokers, border
brokers, replicators, virtual clients, mobile devices — is a
:class:`Process` registered with a :class:`~repro.net.simulator.Simulator`.
Processes communicate exclusively by sending :class:`Message` objects over
:class:`~repro.net.link.Link` objects, mirroring the paper's model of broker
processes connected by point-to-point FIFO links (Sect. 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .simulator import Simulator

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A message exchanged between processes.

    Attributes
    ----------
    kind:
        A short string tag identifying the message type (``"publish"``,
        ``"subscribe"``, ``"shadow_create"``, ...).  Routing of control
        messages dispatches on this tag.
    payload:
        Arbitrary message body (a notification, a filter, a dict of fields).
    sender:
        Name of the originating process; filled in by :meth:`Process.send`.
    msg_id:
        Globally unique id, useful for duplicate detection in tests.
    meta:
        Free-form metadata (e.g. the subscription id a publish matched).
    """

    kind: str
    payload: Any = None
    sender: Optional[str] = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    meta: Dict[str, Any] = field(default_factory=dict)
    _size: Optional[int] = field(default=None, init=False, repr=False, compare=False)
    # per-codec encoded-frame caches, populated by the wire layer so one
    # message fanned out to many socket links is framed exactly once; they
    # are keyed on the sender baked into the frame, so ``send`` drops them
    # whenever the sender changes (e.g. a broker forwarding a peer's frame)
    _frame_json: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)
    _frame_bin: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def size(self) -> int:
        """A crude size estimate in abstract bytes, used for bandwidth metrics.

        Memoized: ``send`` and per-link stats both ask for it, and payload
        and meta are not mutated once a message is in flight.
        """
        size = self._size
        if size is None:
            payload = self.payload
            # fast path for domain payloads: ask the (memoized) hook directly
            # instead of walking _estimate_size's isinstance ladder
            hook = getattr(payload, "estimated_size", None)
            payload_size = int(hook()) if callable(hook) else _estimate_size(payload)
            meta = self.meta
            meta_size = 8 if meta == {} else _estimate_size(meta)
            size = self._size = 16 + payload_size + meta_size
        return size

    def copy(self) -> "Message":
        """Return a copy with a fresh message id (used when forwarding).

        ``meta`` is always copied.  A mutable container payload (dict/list)
        is shallow-copied too, so adding/removing/replacing its *top-level*
        entries on the forwarded copy cannot corrupt the original in flight
        (values nested inside those entries remain shared — don't mutate
        them).  Domain payloads (:class:`~repro.pubsub.notification.
        Notification`, ``Filter``, ``Subscription``) are immutable by
        contract and stay shared.
        """
        payload = self.payload
        if isinstance(payload, dict):
            payload = dict(payload)
        elif isinstance(payload, list):
            payload = list(payload)
        return Message(kind=self.kind, payload=payload, sender=self.sender, meta=dict(self.meta))


def _estimate_size(obj: Any) -> int:
    if obj is None:
        return 0
    if isinstance(obj, (int, float, bool)):
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(_estimate_size(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(_estimate_size(k) + _estimate_size(v) for k, v in obj.items())
    size_hook = getattr(obj, "estimated_size", None)
    if callable(size_hook):
        return int(size_hook())
    return 32


class Process:
    """Base class for all simulated processes.

    Subclasses override :meth:`on_message` to handle incoming traffic and may
    use :meth:`send` to emit messages over attached links.  Links are attached
    by the network wiring code (see :mod:`repro.pubsub.broker_network`), not
    by the process itself.
    """

    def __init__(self, sim: "Simulator | object", name: str):
        # ``sim`` is the transport backend's clock: the Simulator itself on
        # the default backend, an AsyncioClock on real sockets.  Both expose
        # now/schedule/schedule_at/call_now/run/run_until_idle.
        self.sim = sim
        self.name = name
        self.links: Dict[str, "LinkEndpoint"] = {}
        self.messages_received = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.alive = True

    # ----------------------------------------------------------------- wiring
    def attach_link(self, peer_name: str, endpoint: "LinkEndpoint") -> None:
        """Register the local endpoint of a link towards ``peer_name``."""
        self.links[peer_name] = endpoint

    def detach_link(self, peer_name: str) -> None:
        """Remove the link towards ``peer_name`` (e.g. on disconnection)."""
        self.links.pop(peer_name, None)

    def has_link(self, peer_name: str) -> bool:
        return peer_name in self.links

    @property
    def neighbors(self) -> list[str]:
        """Names of processes this process currently has a link to."""
        return list(self.links.keys())

    # -------------------------------------------------------------- messaging
    def send(self, peer_name: str, message: Message) -> None:
        """Send ``message`` to ``peer_name`` over the attached link.

        Raises ``KeyError`` if no link to the peer exists — callers that can
        tolerate missing links (e.g. during handover races) should check
        :meth:`has_link` first.
        """
        endpoint = self.links[peer_name]
        if message.sender != self.name:
            message.sender = self.name
            message._frame_json = None
            message._frame_bin = None
        self.messages_sent += 1
        self.bytes_sent += message.size()
        endpoint.transmit(message)

    def send_many(self, peer_name: str, messages: "list[Message]") -> None:
        """Send a burst of messages to ``peer_name`` as one batched link event.

        All messages share a single delivery event on the simulator (they
        arrive at the same time, in list order), so a burst of per-entry
        control messages — e.g. re-issuing every subscription on reconnect —
        costs one heap entry per link instead of one per message.  Per-message
        stats are recorded exactly as with :meth:`send`.
        """
        if not messages:
            return
        endpoint = self.links[peer_name]
        for message in messages:
            if message.sender != self.name:
                message.sender = self.name
                message._frame_json = None
                message._frame_bin = None
            self.messages_sent += 1
            self.bytes_sent += message.size()
        endpoint.transmit_many(messages)

    def deliver(self, message: Message) -> None:
        """Entry point used by links to hand a message to this process."""
        if not self.alive:
            return
        self.messages_received += 1
        self.on_message(message)

    # ------------------------------------------------------------------ hooks
    def on_message(self, message: Message) -> None:
        """Handle an incoming message.  Subclasses override this."""
        raise NotImplementedError(f"{type(self).__name__} does not handle messages")

    def shutdown(self) -> None:
        """Stop accepting messages; used for client removal and fault injection."""
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class LinkEndpoint:
    """One side of a bidirectional link; defined here to avoid an import cycle.

    Concrete behaviour (latency, FIFO queueing, connectivity) lives in
    :mod:`repro.net.link`.
    """

    #: True when this endpoint serialises messages to the wire, so a broker
    #: fanning one notification out to many such endpoints may hand them the
    #: *same* Message object and amortise encoding via its frame caches.
    #: In-memory endpoints keep this False: their Message objects are the
    #: delivered artifacts and must stay distinct per destination.
    shares_fanout = False

    def transmit(self, message: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def transmit_many(self, messages: "list[Message]") -> None:
        """Transmit a burst; endpoints that can batch override this."""
        for message in messages:
            self.transmit(message)
