"""Fault injection for dynamic environments.

The paper's research agenda (Sect. 4, "Scalability and dynamic environments")
points out that pervasive deployments are not static: links fail, brokers
disappear and come back, the infrastructure itself changes while clients
roam.  The tooling below injects exactly those events into a running
simulation so tests and experiments can observe how the mobility layer
degrades and recovers:

* :class:`FaultInjector` — schedule link outages, broker crashes/restarts and
  (acyclic-graph) partitions at chosen simulated times, or fire them
  immediately with the ``*_now`` variants;
* :class:`FaultLog` — a record of every injected event for post-hoc analysis.

Faults are deliberately *mechanical*: every injection goes through
:meth:`~repro.net.transport.Transport.inject_fault`, the same seam
operational tooling would use, so no component gets magical knowledge that a
fault happened.  On the simulator that flips :meth:`Link.set_up` /
``Process.alive`` with byte-identical scheduling; on the cluster backend the
very same calls become a real ``kill -9`` + supervised respawn and TCP-level
link severing (see :mod:`repro.net.cluster`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .link import Link, Network
from .process import Process
from .simulator import Simulator


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or repair), as recorded by the :class:`FaultLog`."""

    time: float
    kind: str
    target: str


class FaultLog:
    """Chronological record of injected faults and repairs."""

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    def record(self, time: float, kind: str, target: str) -> None:
        self.events.append(FaultEvent(time=time, kind=kind, target=target))

    def of_kind(self, kind: str) -> List[FaultEvent]:
        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class FaultInjector:
    """Schedules faults against a :class:`~repro.net.link.Network`.

    All methods accept absolute simulated times; scheduling in the past
    raises (through the simulator), which keeps experiment scripts honest.

    Randomized fault decisions (the chaos fuzzer's flap repetitions, jittered
    schedules) draw from :attr:`rng`, a *private* ``random.Random(seed)`` —
    never the module-level ``random`` — so two injectors with the same seed
    make bit-identical draws regardless of what the rest of the process does
    with the global RNG.  :meth:`snapshot`/:meth:`restore` expose the RNG
    state so a shrinking run can replay a schedule suffix exactly as the
    original run drew it.
    """

    def __init__(self, sim: Simulator, network: Network, seed: Optional[int] = None):
        self.sim = sim
        self.network = network
        self.transport = network.transport
        self.log = FaultLog()
        #: private seeded RNG; all randomized fault decisions come from here
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------- rng
    def snapshot(self) -> object:
        """Capture the private RNG state (for deterministic suffix replay)."""
        return self.rng.getstate()

    def restore(self, state: object) -> None:
        """Rewind the private RNG to a state from :meth:`snapshot`."""
        self.rng.setstate(state)

    # ------------------------------------------------------------------ links
    def link_outage(self, a: str, b: str, start: float, duration: float) -> None:
        """Take the link between ``a`` and ``b`` down for ``duration`` seconds."""
        link = self._require_link(a, b)
        self.sim.schedule_at(start, self._set_link, link, False, f"{a}<->{b}")
        self.sim.schedule_at(start + duration, self._set_link, link, True, f"{a}<->{b}")

    def cut_link(self, a: str, b: str, at: float) -> None:
        """Permanently cut the link between ``a`` and ``b``."""
        link = self._require_link(a, b)
        self.sim.schedule_at(at, self._set_link, link, False, f"{a}<->{b}")

    def link_down_now(self, a: str, b: str) -> None:
        """Sever the link between ``a`` and ``b`` immediately (any backend)."""
        self._set_link(self._require_link(a, b), False, f"{a}<->{b}")

    def link_up_now(self, a: str, b: str) -> None:
        """Restore the link between ``a`` and ``b`` immediately (any backend)."""
        self._set_link(self._require_link(a, b), True, f"{a}<->{b}")

    def _set_link(self, link: Link, up: bool, label: str) -> None:
        self.transport.inject_fault("link_up" if up else "link_down", link=link)
        self.log.record(self.sim.now, "link_up" if up else "link_down", label)

    def _require_link(self, a: str, b: str) -> Link:
        link = self.network.link_between(a, b)
        if link is None:
            raise KeyError(f"no link between {a!r} and {b!r}")
        return link

    # ---------------------------------------------------------------- brokers
    def crash_process(self, name: str, at: float) -> None:
        """Crash a process (it stops handling messages) at time ``at``."""
        process = self._require_process(name)
        self.sim.schedule_at(at, self._set_process_alive, process, False)

    def restart_process(self, name: str, at: float) -> None:
        """Restart a previously crashed process at time ``at``.

        State held by the process (routing tables, buffers) is preserved —
        this models a transient freeze/restart, not a cold reboot; cold-start
        recovery is an explicit non-goal of the paper's algorithms.
        """
        process = self._require_process(name)
        self.sim.schedule_at(at, self._set_process_alive, process, True)

    def crash_for(self, name: str, start: float, duration: float) -> None:
        """Crash a process for ``duration`` seconds, then bring it back."""
        self.crash_process(name, start)
        self.restart_process(name, start + duration)

    def crash_now(self, name: str) -> None:
        """Crash a process immediately (``kill -9`` on the cluster backend)."""
        self._set_process_alive(self._require_process(name), False)

    def restart_now(self, name: str) -> None:
        """Restart a crashed process immediately (supervised respawn on cluster)."""
        self._set_process_alive(self._require_process(name), True)

    def _set_process_alive(self, process: Process, alive: bool) -> None:
        self.transport.inject_fault("restart" if alive else "crash", process=process)
        self.log.record(self.sim.now, "process_up" if alive else "process_down", process.name)

    def _require_process(self, name: str) -> Process:
        if name not in self.network.processes:
            raise KeyError(f"unknown process {name!r}")
        return self.network.processes[name]

    # -------------------------------------------------------------- partitions
    def partition(self, side_a: List[str], side_b: List[str], start: float, duration: float) -> int:
        """Disable every link that crosses the two process groups for ``duration`` seconds.

        Returns the number of links affected.  In an acyclic broker network a
        partition of the broker graph corresponds to taking down the (single)
        tree edge between the two sides, but the helper works for any split,
        including replicator-to-replicator links.

        Raises :class:`ValueError` when either side is empty or the sides
        overlap — a process cannot be on both sides of a partition.
        """
        group_a, group_b = set(side_a), set(side_b)
        if not group_a or not group_b:
            raise ValueError("both sides of a partition must be non-empty")
        overlap = group_a & group_b
        if overlap:
            raise ValueError(
                f"partition sides must be disjoint; both contain: {sorted(overlap)}"
            )
        affected = 0
        for link in self.network.links:
            names = {link.a.name, link.b.name}
            if names & group_a and names & group_b:
                label = f"{link.a.name}<->{link.b.name}"
                self.sim.schedule_at(start, self._set_link, link, False, label)
                self.sim.schedule_at(start + duration, self._set_link, link, True, label)
                affected += 1
        return affected

    # ------------------------------------------------------------------ stats
    def downtime_events(self) -> Tuple[int, int]:
        """Return ``(link_down_events, process_down_events)`` injected so far."""
        return len(self.log.of_kind("link_down")), len(self.log.of_kind("process_down"))
