"""Command-line interface.

Three subcommands mirror what a user of the library typically wants to do
without writing code:

* ``repro experiments`` — run (a subset of) the E1..E12 experiment suite and
  print the result tables, optionally writing a markdown report;
* ``repro demo`` — run one of the bundled example scenarios (quickstart,
  office floor, highway, commuter) and print its output;
* ``repro net-demo`` — boot a small broker graph on a transport backend
  (real asyncio localhost sockets by default, or the deterministic
  simulator), publish, and verify end-to-end deliveries;
* ``repro cluster-demo`` — boot one OS process per broker (the
  multi-process cluster backend with TCP registry discovery), publish, and
  verify end-to-end deliveries plus child exit codes;
* ``repro mobility-demo`` — run the roaming-handover workload (replicators,
  shadows, exception mode) on real asyncio sockets AND on the simulator,
  and verify both backends delivered identical notification multisets;
* ``repro chaos-demo`` — run the covering-churn chaos scenario (broker
  ``kill -9`` + supervised restart, link sever/restore, replay) on a real
  backend and verify its delivered sets against the simulator baseline;
* ``repro chaos-fuzz`` — draw seeded randomized fault schedules from the
  property-based chaos engine, execute them with invariant checking, and
  shrink any failing schedule to a minimal repro;
* ``repro soak`` — loop seeded chaos scenarios under a time budget and
  assert that fds, RSS and every routing/transport resource plateau;
* ``repro metrics`` — run the line workload and dump the control-plane
  metrics snapshot (per-broker counters, histograms and gauges plus the
  transport's own instruments), human-readable or ``--json``;
* ``repro top`` — drive a live broker fabric and render a refreshing
  per-broker rates table (matches/s, forwards/s, deliveries/s, mean
  delivery age, routing table and duplicate-buffer gauges) for a bounded
  number of frames;
* ``repro profile`` — cProfile the seeded handover workload with the
  subscription-churn knob forced up and print the hottest functions;
* ``repro info`` — show the system inventory: packages, experiments,
  scenarios, and the paper-to-module map.

Invoke as ``python -m repro ...`` (or ``python -m repro.cli ...``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .experiments import EXPERIMENTS
from .experiments.report import QUICK_OVERRIDES, render_markdown, run_experiments

_EXAMPLES = {
    "quickstart": "quickstart.py",
    "office-floor": "office_floor_tour.py",
    "highway": "highway_restaurants.py",
    "commuter": "commuter_stock_ticker.py",
}


def _add_fabric_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared fabric knobs, resolved via ``SystemConfig.from_args``.

    Every subcommand that boots brokers takes the same flags and folds them
    into one validated :class:`~repro.config.SystemConfig` instead of
    hand-assembling a knob tuple per command.
    """
    parser.add_argument(
        "--codec",
        choices=("json", "binary"),
        default=None,
        help="wire codec of the socket backends: tagged-JSON reference or the "
        "compact binary codec with hop-level write batching; the simulator "
        "moves object references and ignores the choice (default: json)",
    )
    parser.add_argument(
        "--matcher",
        choices=("brute", "indexed", "interval"),
        default=None,
        help="routing-table matching strategy: brute scan, segment-indexed, or the "
        "churn-oriented incremental interval index (default: indexed)",
    )
    parser.add_argument(
        "--advertising",
        choices=("scan", "incremental"),
        default=None,
        help="subscription-control implementation (default: incremental)",
    )
    parser.add_argument(
        "--set",
        metavar="KEY=VALUE",
        action="append",
        default=[],
        help="override any SystemConfig field (repeatable), e.g. "
        "--set flush_cap=4096 --set metrics=off; the chaos family consumes "
        "only the codec and matcher fields for now",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Dealing with Uncertainty in Mobile Publish/Subscribe "
            "Middleware' (Fiege et al., Middleware 2003)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command")

    experiments = subparsers.add_parser(
        "experiments", help="run the experiment suite and print the result tables"
    )
    experiments.add_argument(
        "ids", nargs="*", metavar="EXPERIMENT", help="experiment ids (default: all of E1..E12)"
    )
    experiments.add_argument(
        "--quick", action="store_true", help="use reduced parameters (fast smoke run)"
    )
    experiments.add_argument(
        "--report", metavar="PATH", default=None, help="also write a markdown report to PATH"
    )

    demo = subparsers.add_parser("demo", help="run one of the bundled example scenarios")
    demo.add_argument("name", choices=sorted(_EXAMPLES), help="which example to run")

    net_demo = subparsers.add_parser(
        "net-demo",
        help="boot a small broker graph on a transport backend, publish, verify deliveries",
    )
    net_demo.add_argument(
        "--backend",
        choices=("sim", "asyncio"),
        default="asyncio",
        help="transport backend: deterministic simulator or real localhost TCP sockets "
        "(default: asyncio)",
    )
    net_demo.add_argument(
        "--brokers", type=int, default=3, help="brokers in the line topology (default: 3)"
    )
    net_demo.add_argument(
        "--publishes", type=int, default=20, help="notifications to publish (default: 20)"
    )
    _add_fabric_arguments(net_demo)

    cluster_demo = subparsers.add_parser(
        "cluster-demo",
        help="boot one OS process per broker, publish through the cluster, verify deliveries",
    )
    cluster_demo.add_argument(
        "--brokers", type=int, default=3, help="broker processes in the line topology (default: 3)"
    )
    cluster_demo.add_argument(
        "--publishes", type=int, default=40, help="notifications to publish (default: 40)"
    )
    _add_fabric_arguments(cluster_demo)

    mobility_demo = subparsers.add_parser(
        "mobility-demo",
        help="run the roaming-handover workload on sim + asyncio and cross-check deliveries",
    )
    mobility_demo.add_argument(
        "--backend",
        choices=("both", "sim", "asyncio"),
        default="both",
        help="run on one backend, or on both with a delivered-set cross-check (default: both)",
    )
    mobility_demo.add_argument(
        "--brokers", type=int, default=3, help="brokers in the line topology (default: 3)"
    )
    mobility_demo.add_argument(
        "--publishes",
        type=int,
        default=4,
        help="notifications per location per movement phase (default: 4)",
    )
    mobility_demo.add_argument(
        "--predictor",
        default="nlb",
        help='shadow-placement policy: "nlb", "nlb-<k>", "flooding", "none", "markov" '
        "(default: nlb)",
    )
    _add_fabric_arguments(mobility_demo)

    chaos_demo = subparsers.add_parser(
        "chaos-demo",
        help="kill/partition brokers mid-workload and verify recovery against the sim baseline",
    )
    chaos_demo.add_argument(
        "--backend",
        choices=("cluster", "asyncio", "sim"),
        default="cluster",
        help="backend to put under chaos; its delivered sets are checked against a "
        "simulator run of the same scenario (default: cluster)",
    )
    chaos_demo.add_argument(
        "--temps", type=int, default=8, help="temperature publications per burst (default: 8)"
    )
    chaos_demo.add_argument(
        "--deep", type=int, default=4, help="publications into each fault window (default: 4)"
    )
    chaos_demo.add_argument(
        "--no-kill", action="store_true", help="skip the broker kill/restart phases"
    )
    chaos_demo.add_argument(
        "--no-sever", action="store_true", help="skip the link sever/restore phases"
    )
    chaos_demo.add_argument(
        "--seed",
        type=int,
        default=None,
        help="draw the publication values from this seed instead of the pinned "
        "storyline (the seed is printed on success and on divergence)",
    )
    _add_fabric_arguments(chaos_demo)

    chaos_fuzz = subparsers.add_parser(
        "chaos-fuzz",
        help="execute seeded randomized fault schedules with invariant checking and shrinking",
    )
    chaos_fuzz.add_argument(
        "--seed", type=int, default=0, help="first (or only) schedule seed (default: 0)"
    )
    chaos_fuzz.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of consecutive seeds to sweep starting at --seed (default: 1)",
    )
    chaos_fuzz.add_argument(
        "--backend",
        choices=("sim", "asyncio", "cluster"),
        default="sim",
        help="backend to fuzz; non-sim backends are also converged against the "
        "simulator oracle under the identical schedule (default: sim)",
    )
    chaos_fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without shrinking the schedule first",
    )
    _add_fabric_arguments(chaos_fuzz)

    soak = subparsers.add_parser(
        "soak",
        help="loop seeded chaos scenarios under a time budget, gating resource plateaus",
    )
    soak.add_argument(
        "--backend",
        choices=("sim", "asyncio", "cluster"),
        default="asyncio",
        help="backend to soak (default: asyncio — real sockets, real fds)",
    )
    soak.add_argument(
        "--budget-sec",
        type=float,
        default=10.0,
        help="time budget in seconds; at least two iterations always run (default: 10)",
    )
    soak.add_argument(
        "--seed", type=int, default=0, help="seed of the first iteration (default: 0)"
    )
    _add_fabric_arguments(soak)

    metrics = subparsers.add_parser(
        "metrics",
        help="run the line workload and dump the control-plane metrics snapshot",
    )
    metrics.add_argument(
        "--backend",
        choices=("sim", "asyncio", "cluster"),
        default="sim",
        help="transport backend to instrument (default: sim)",
    )
    metrics.add_argument(
        "--brokers", type=int, default=3, help="brokers in the line topology (default: 3)"
    )
    metrics.add_argument(
        "--publishes", type=int, default=20, help="notifications to publish (default: 20)"
    )
    metrics.add_argument(
        "--json", action="store_true", help="print the raw snapshot as JSON (machine-readable)"
    )
    _add_fabric_arguments(metrics)

    top = subparsers.add_parser(
        "top",
        help="drive a live fabric and render a refreshing per-broker rates table",
    )
    top.add_argument(
        "--backend",
        choices=("sim", "asyncio", "cluster"),
        default="cluster",
        help="transport backend to watch (default: cluster — one OS process per broker)",
    )
    top.add_argument(
        "--brokers", type=int, default=3, help="brokers in the line topology (default: 3)"
    )
    top.add_argument(
        "--frames",
        type=int,
        default=3,
        help="refresh frames to render before exiting (bounded so CI can run it; default: 3)",
    )
    top.add_argument(
        "--batch",
        type=int,
        default=50,
        help="notifications published per frame (default: 50)",
    )
    _add_fabric_arguments(top)

    profile = subparsers.add_parser(
        "profile",
        help="profile the replicator handover workload under churn with cProfile",
    )
    profile.add_argument(
        "--backend",
        choices=("sim", "asyncio", "cluster"),
        default="sim",
        help="transport backend to profile (default: sim — pure routing/matching cost, "
        "no socket noise in the profile)",
    )
    profile.add_argument(
        "--brokers", type=int, default=4, help="brokers in the handover line (default: 4)"
    )
    profile.add_argument(
        "--publishes", type=int, default=6, help="publishes per mobility phase (default: 6)"
    )
    profile.add_argument(
        "--churn",
        type=float,
        default=0.5,
        help="per-phase probability each walker toggles its covering 'alerts' "
        "subscription (default: 0.5 — the churn-heavy regime)",
    )
    profile.add_argument(
        "--seed", type=int, default=0, help="workload-family seed to replay (default: 0)"
    )
    profile.add_argument(
        "--top", type=int, default=15, help="profile rows to print (default: 15)"
    )
    profile.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    _add_fabric_arguments(profile)

    subparsers.add_parser("info", help="show the system inventory")
    return parser


def _fabric_config(args: argparse.Namespace, command: str, transport: Optional[str] = None):
    """Resolve the shared fabric flags into one validated ``SystemConfig``.

    Returns ``None`` after printing a usage error (unknown ``--set`` key,
    malformed value, ...) so the caller can exit 2 without a traceback.
    """
    from .config import SystemConfig

    try:
        return SystemConfig.from_args(args, transport=transport)
    except ValueError as exc:
        print(f"{command}: {exc}", file=sys.stderr)
        return None


def _command_experiments(args: argparse.Namespace) -> int:
    requested = [identifier.upper() for identifier in args.ids] or list(EXPERIMENTS)
    unknown = [identifier for identifier in requested if identifier not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}", file=sys.stderr)
        return 2
    overrides = (
        {key: value for key, value in QUICK_OVERRIDES.items() if key in requested}
        if args.quick
        else {}
    )
    results = run_experiments(requested, overrides)
    for experiment_id, (title, table) in results.items():
        print(f"\n=== {experiment_id}: {title} ===\n")
        print(table.formatted())
    if args.report:
        Path(args.report).write_text(render_markdown(results), encoding="utf-8")
        print(f"\nreport written to {args.report}")
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    import runpy

    examples_dir = Path(__file__).resolve().parent.parent.parent / "examples"
    script = examples_dir / _EXAMPLES[args.name]
    if not script.exists():
        print(f"example script not found: {script}", file=sys.stderr)
        return 2
    runpy.run_path(str(script), run_name="__main__")
    return 0


def _command_net_demo(args: argparse.Namespace) -> int:
    """Boot brokers on the chosen transport, publish, and verify deliveries.

    On the ``asyncio`` backend this is a real deployment in miniature: every
    broker and client is a TCP server on localhost, subscriptions and
    notifications cross actual sockets as length-prefixed wire frames, and
    the delivered sets are checked against what the filters promise.
    """
    from .pubsub.testing import run_line_workload

    if args.brokers < 2:
        print("net-demo needs at least 2 brokers", file=sys.stderr)
        return 2
    if args.publishes < 1:
        print("net-demo needs at least 1 publish", file=sys.stderr)
        return 2

    backend = args.backend
    config = _fabric_config(args, "net-demo")
    if config is None:
        return 2
    print(
        f"net-demo: {args.brokers} brokers in a line on the {backend!r} backend"
        + (" (localhost TCP sockets, wire-framed messages)" if backend == "asyncio" else
           " (deterministic discrete-event simulator)")
    )
    result = run_line_workload(backend, args.brokers, args.publishes, config=config)
    print(f"published {args.publishes} notifications from B1 ({result.codec} codec)")
    for outcome in result.subscribers:
        latencies = sorted(outcome.latencies)
        if latencies:
            p50 = latencies[len(latencies) // 2] * 1000
            latency_note = f"p50={p50:.2f}ms max={latencies[-1] * 1000:.2f}ms"
        else:
            latency_note = "no deliveries"
        status = "ok" if outcome.ok else "MISMATCH"
        print(
            f"  {outcome.name:<10} value>={outcome.threshold:<4} "
            f"received {outcome.received}/{outcome.expected}  {latency_note}  [{status}]"
        )
    if result.mismatches:
        print(
            f"net-demo FAILED: {result.mismatches} subscriber(s) missed notifications",
            file=sys.stderr,
        )
        return 1
    print("deliveries verified: OK")
    return 0


def _command_cluster_demo(args: argparse.Namespace) -> int:
    """Boot one OS process per broker, publish, verify, report exit codes.

    Runs the same line workload as ``net-demo``, but on the multi-process
    ``cluster`` backend: every broker is a spawned child process hosting a
    TCP server, discovered through the parent's registry.  Exits non-zero
    if any subscriber misses a notification *or* any broker process failed
    (crashed mid-run, or exited non-zero at shutdown).
    """
    from .pubsub.testing import run_line_workload

    if args.brokers < 2:
        print("cluster-demo needs at least 2 brokers", file=sys.stderr)
        return 2
    if args.publishes < 1:
        print("cluster-demo needs at least 1 publish", file=sys.stderr)
        return 2

    config = _fabric_config(args, "cluster-demo", transport="cluster")
    if config is None:
        return 2
    print(
        f"cluster-demo: {args.brokers} broker processes in a line "
        "(one OS process per broker, TCP registry discovery, wire-framed links)"
    )
    captured = {}

    def observer(net):
        transport = net.transport
        captured["transport"] = transport
        pids = transport.broker_pids
        print("broker processes: " + ", ".join(f"{n}={pid}" for n, pid in sorted(pids.items())))

    result = run_line_workload(
        "cluster", args.brokers, args.publishes, observer=observer, config=config
    )
    print(f"published {args.publishes} notifications from B1")
    for outcome in result.subscribers:
        latencies = sorted(outcome.latencies)
        if latencies:
            p50 = latencies[len(latencies) // 2] * 1000
            latency_note = f"p50={p50:.2f}ms max={latencies[-1] * 1000:.2f}ms"
        else:
            latency_note = "no deliveries"
        status = "ok" if outcome.ok else "MISMATCH"
        print(
            f"  {outcome.name:<10} value>={outcome.threshold:<4} "
            f"received {outcome.received}/{outcome.expected}  {latency_note}  [{status}]"
        )
    status = 0
    transport = captured.get("transport")
    if transport is not None:
        for name, code in sorted(transport.exit_codes.items()):
            print(f"  broker {name:<8} exit code {code}")
        if transport.failures:
            print(f"cluster-demo FAILED: broker process failures {transport.failures}",
                  file=sys.stderr)
            status = 1
    if result.mismatches:
        print(
            f"cluster-demo FAILED: {result.mismatches} subscriber(s) missed notifications",
            file=sys.stderr,
        )
        status = 1
    if status == 0:
        print("deliveries verified across broker processes: OK")
    return status


def _command_mobility_demo(args: argparse.Namespace) -> int:
    """Run the handover workload per backend and cross-check delivered sets.

    This is the mobility layer's answer to ``net-demo``: mobile clients roam
    across a line of border brokers with replicators, shadow virtual clients
    and the exception mode fully engaged.  With ``--backend both`` (the
    default) the scenario runs on the deterministic simulator and on real
    asyncio sockets, and exits non-zero unless both backends delivered the
    exact same ``(notification, replayed)`` multiset to every mobile client.
    """
    from .mobility.handover_workload import cross_check_backends

    if args.brokers < 3:
        print("mobility-demo needs at least 3 brokers", file=sys.stderr)
        return 2
    if args.publishes < 1:
        print("mobility-demo needs at least 1 publish per phase", file=sys.stderr)
        return 2

    backends = ("sim", "asyncio") if args.backend == "both" else (args.backend,)
    # --backend may be "both", which is not a transport name; the workload
    # re-anchors config.transport per backend it actually runs
    config = _fabric_config(args, "mobility-demo", transport="sim")
    if config is None:
        return 2
    print(
        f"mobility-demo: {args.brokers} border brokers + replicators, "
        f"predictor={args.predictor!r}, backends: {', '.join(backends)}"
    )
    try:
        results, mismatches = cross_check_backends(
            backends=backends,
            brokers=args.brokers,
            publishes_per_phase=args.publishes,
            predictor=args.predictor,
            config=config,
        )
    except ValueError as exc:
        # e.g. an unknown --predictor spec: a clean usage error, not a traceback
        print(f"mobility-demo: {exc}", file=sys.stderr)
        return 2
    for backend in backends:
        result = results[backend]
        latencies = result.all_handover_latencies()
        p50 = latencies[len(latencies) // 2] * 1000 if latencies else 0.0
        print(
            f"  {backend:<8} wall={result.wall_sec:6.2f}s published={result.published:<4} "
            f"delivered={result.delivered_total():<4} handovers={result.handovers} "
            f"shadows={result.shadows_created} exception={result.exception_activations} "
            f"handover-p50={p50:.2f}ms"
        )
        for outcome in result.clients:
            print(
                f"    {outcome.name:<10} live={outcome.live:<4} replayed={outcome.replayed:<3} "
                f"duplicates={outcome.duplicates}"
            )
    if mismatches:
        for mismatch in mismatches:
            print(f"mobility-demo MISMATCH: {mismatch}", file=sys.stderr)
        return 1
    if len(backends) > 1:
        print("delivered multisets identical across backends: OK")
    return 0


def _command_chaos_demo(args: argparse.Namespace) -> int:
    """Run the chaos scenario on a real backend and diff it against sim.

    The scenario kills a broker mid-workload (a true ``kill -9`` plus
    supervised restart on the cluster backend), severs and restores a link,
    replays the publications lost in each fault window, and churns the
    covering subscription set across the recovered state.  The run fails if
    any in-scenario invariant breaks or if the backend's delivered sets
    differ from the simulator baseline.
    """
    from .pubsub.chaos import ChaosError, run_chaos_scenario

    # the chaos family consumes only the codec field of the config for now
    config = _fabric_config(args, "chaos-demo")
    if config is None:
        return 2
    kill, sever = not args.no_kill, not args.no_sever
    backends = ("sim",) if args.backend == "sim" else ("sim", args.backend)
    seed_note = "pinned storyline" if args.seed is None else f"seed={args.seed}"
    print(
        f"chaos-demo: 3-broker covering line under chaos on {args.backend!r} "
        f"(kill={'on' if kill else 'off'}, sever={'on' if sever else 'off'}, {seed_note})"
    )
    results = {}
    for backend in backends:
        try:
            result = run_chaos_scenario(
                backend, temps=args.temps, deep=args.deep, kill=kill, sever=sever,
                seed=args.seed, codec=config.codec,
            )
        except ValueError as exc:
            # degenerate burst sizes (e.g. an empty fault window) are usage errors
            print(f"chaos-demo: {exc}", file=sys.stderr)
            return 2
        except ChaosError as exc:
            print(f"chaos-demo FAILED ({seed_note}): {exc}", file=sys.stderr)
            return 1
        results[backend] = result
        wall = sum(result.phase_sec.values())
        print(
            f"  {backend:<8} wall={wall:6.2f}s delivered={result.delivered_total():<3} "
            f"lost={result.lost} replayed={result.replayed} duplicates={result.duplicates} "
            f"resyncs={result.resync_markers}"
        )
        if result.recovery:
            actions = ", ".join(f"{k}={v}" for k, v in sorted(result.recovery.items()))
            print(f"           recovery: {actions}")
    baseline = results["sim"]
    chaotic = results[backends[-1]]
    if chaotic.delivered != baseline.delivered:
        for name in sorted(baseline.delivered):
            if chaotic.delivered[name] != baseline.delivered[name]:
                print(
                    f"chaos-demo MISMATCH ({seed_note}): {name} delivered "
                    f"{chaotic.delivered[name]} on {backends[-1]!r}, "
                    f"{baseline.delivered[name]} on sim",
                    file=sys.stderr,
                )
        return 1
    if len(backends) > 1:
        print(f"post-recovery delivered sets identical to the sim baseline: OK ({seed_note})")
    else:
        print(f"chaos scenario invariants held: OK ({seed_note})")
    return 0


def _command_chaos_fuzz(args: argparse.Namespace) -> int:
    """Sweep seeded fault schedules through the property-based chaos engine.

    Each seed deterministically draws a topology, traffic shape and fault
    schedule; the engine executes it with invariant checking (plus a
    sim-oracle convergence check on real backends) and shrinks any failing
    schedule to a minimal repro.  The printed repro command replays a
    failure byte-identically on any machine.
    """
    from .pubsub.chaosgen import run_chaos_fuzz

    if args.seeds < 1:
        print("chaos-fuzz needs at least 1 seed", file=sys.stderr)
        return 2
    config = _fabric_config(args, "chaos-fuzz")
    if config is None:
        return 2
    print(
        f"chaos-fuzz: {args.seeds} seed(s) starting at {args.seed} "
        f"on {args.backend!r}"
    )
    failures = 0
    for seed in range(args.seed, args.seed + args.seeds):
        report = run_chaos_fuzz(
            seed,
            backend=args.backend,
            shrink=not args.no_shrink,
            codec=config.codec,
            matcher=config.matcher,
        )
        print("  " + report.summary())
        if not report.ok:
            failures += 1
            for violation in report.violations:
                print(f"    {violation}", file=sys.stderr)
            if report.shrunk is not None:
                shrunk = " ".join(e.describe() for e in report.shrunk.events) or "(empty)"
                print(f"    minimal failing schedule: {shrunk}", file=sys.stderr)
    if failures:
        print(f"chaos-fuzz FAILED: {failures}/{args.seeds} seed(s)", file=sys.stderr)
        return 1
    print(f"all {args.seeds} seed(s) held every invariant: OK")
    return 0


def _command_soak(args: argparse.Namespace) -> int:
    """Loop seeded chaos scenarios until the budget expires, gating plateaus.

    After a warmup iteration the process-level resources (open fds, RSS) and
    every per-scenario resource (routing tables, registries, links, timers)
    must return to their baseline on each subsequent iteration — the soak
    fails fast on the first leak or invariant violation, printing the seed
    that exposed it.
    """
    from .pubsub.chaosgen import run_soak

    if args.budget_sec <= 0:
        print("soak needs a positive --budget-sec", file=sys.stderr)
        return 2
    config = _fabric_config(args, "soak")
    if config is None:
        return 2
    print(f"soak: {args.backend!r} backend for ~{args.budget_sec:.0f}s, seed {args.seed}+")
    result = run_soak(
        backend=args.backend, budget_sec=args.budget_sec, seed=args.seed, codec=config.codec
    )
    plateau = ", ".join(
        f"{key}={value}" for key, value in sorted(result.plateau_final.items())
    )
    print(
        f"  {result.iterations} iteration(s) in {result.wall_sec:.1f}s "
        f"(seeds {result.seeds[0]}..{result.seeds[-1]}); plateau: {plateau or 'n/a'}"
    )
    if not result.ok:
        for violation in result.violations:
            print(f"  {violation}", file=sys.stderr)
        failing = result.seeds[-1]
        print(
            f"soak FAILED at seed {failing}; repro: repro chaos-fuzz --seed {failing} "
            f"--backend {args.backend}",
            file=sys.stderr,
        )
        return 1
    print("resource plateaus held across all iterations: OK")
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    """One-shot control-plane dump: run the line workload, print the snapshot.

    The snapshot is gathered through ``Transport.metrics_snapshot()`` just
    before teardown — in-process for sim/asyncio, over the registry control
    channel for the cluster backend — so ``--json`` against ``--backend
    cluster`` exercises the full remote metrics path.
    """
    import json

    from .pubsub.testing import run_line_workload

    if args.brokers < 2:
        print("metrics needs at least 2 brokers", file=sys.stderr)
        return 2
    if args.publishes < 1:
        print("metrics needs at least 1 publish", file=sys.stderr)
        return 2
    config = _fabric_config(args, "metrics")
    if config is None:
        return 2

    captured = {}

    def observer(net):
        captured["snapshot"] = net.transport.metrics_snapshot()

    result = run_line_workload(
        args.backend, args.brokers, args.publishes, observer=observer, config=config
    )
    snapshot = captured["snapshot"]
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 1 if result.mismatches else 0
    print(
        f"metrics: {args.brokers} brokers on {args.backend!r} after "
        f"{args.publishes} publishes\n  fabric: {config.describe()}"
    )
    transport_gauges = snapshot["transport"].get("gauges", {})
    transport_counters = snapshot["transport"].get("counters", {})
    if transport_counters or transport_gauges:
        print("  transport:")
        for key, value in sorted(transport_counters.items()):
            print(f"    {key:<36} {value}")
        for key, value in sorted(transport_gauges.items()):
            print(f"    {key:<36} {value}  (gauge)")
    for name, broker in sorted(snapshot["brokers"].items()):
        print(f"  {name}:")
        for key, value in sorted(broker["counters"].items()):
            if value:
                print(f"    {key:<36} {value}")
        for key, stats in sorted(broker["histograms"].items()):
            if stats.get("count"):
                mean = stats["sum"] / stats["count"]
                print(f"    {key:<36} count={stats['count']} mean={mean:.6g} sum={round(stats['sum'], 6)}")
        for key, value in sorted(broker["gauges"].items()):
            print(f"    {key:<36} {value}  (gauge)")
    if result.mismatches:
        print(
            f"metrics FAILED: {result.mismatches} subscriber(s) missed notifications",
            file=sys.stderr,
        )
        return 1
    return 0


def _command_top(args: argparse.Namespace) -> int:
    """Drive a live fabric and render per-broker rates, one frame at a time.

    Each frame publishes a batch, drains to quiescence, snapshots the
    control plane and prints the per-broker counter *deltas* as rates over
    the frame's wall time, next to the point-in-time gauges.  ``--frames``
    bounds the loop so CI (and impatient humans) get a clean exit.
    """
    import time

    from .pubsub.broker_network import line_topology
    from .pubsub.filters import AtLeast, Equals, Filter
    from .pubsub.notification import Notification

    if args.brokers < 2:
        print("top needs at least 2 brokers", file=sys.stderr)
        return 2
    if args.frames < 1 or args.batch < 1:
        print("top needs at least 1 frame and a positive --batch", file=sys.stderr)
        return 2
    config = _fabric_config(args, "top", transport=args.backend)
    if config is None:
        return 2

    print(f"top: {args.brokers} brokers on {args.backend!r} — {config.describe()}")
    net = line_topology(
        n_brokers=args.brokers,
        link_latency=0.001 if args.backend == "sim" else 0.0,
        config=config,
    )
    try:
        for i, broker_name in enumerate(net.broker_names()):
            client = net.add_client(f"sub@{broker_name}", broker_name)
            client.subscribe(
                Filter([Equals("topic", "top"), AtLeast("value", i * args.batch // 2)]),
                sub_id=f"top-{broker_name}",
            )
        net.run_until_idle()
        publisher = net.add_client("publisher", net.broker_names()[0])

        previous: dict = {}
        previous_ages: dict = {}
        published = 0
        for frame in range(args.frames):
            start = time.perf_counter()
            for _ in range(args.batch):
                publisher.publish(Notification({"topic": "top", "value": published}))
                published += 1
            net.run_until_idle()
            elapsed = max(time.perf_counter() - start, 1e-9)
            snapshot = net.transport.metrics_snapshot()
            print(
                f"-- frame {frame + 1}/{args.frames}: {args.batch} publishes "
                f"in {elapsed * 1000:.1f}ms"
            )
            print(
                f"   {'broker':<8} {'match/s':>9} {'fwd/s':>9} {'deliver/s':>9} "
                f"{'age-ms':>8} {'routes':>7} {'dups':>6} {'fwd-subs':>8}"
            )
            for name, broker in sorted(snapshot["brokers"].items()):
                counters, gauges = broker["counters"], broker["gauges"]
                prev = previous.get(name, {})

                def rate(key, _c=counters, _p=prev):
                    return (_c.get(key, 0) - _p.get(key, 0)) / elapsed

                # mean publish-to-deliver age over this frame's deliveries,
                # from the delivery_age histogram's sum/count deltas
                age_stats = broker["histograms"].get("broker.delivery_age", {})
                prev_age = previous_ages.get(name, {})
                age_count = age_stats.get("count", 0) - prev_age.get("count", 0)
                age_sum = age_stats.get("sum", 0.0) - prev_age.get("sum", 0.0)
                age_ms = f"{age_sum / age_count * 1000:.2f}" if age_count > 0 else "-"

                print(
                    f"   {name:<8} {rate('broker.matches'):>9.0f} "
                    f"{rate('broker.forwards'):>9.0f} "
                    f"{rate('broker.delivered_locally'):>9.0f} "
                    f"{age_ms:>8} "
                    f"{gauges.get('broker.routing_table_size', 0):>7} "
                    f"{gauges.get('broker.duplicates_remembered', 0):>6} "
                    f"{gauges.get('broker.forwarded_subscriptions', 0):>8}"
                )
                previous[name] = dict(counters)
                previous_ages[name] = dict(age_stats)
        print(f"top: published {published} notifications over {args.frames} frame(s)")
        return 0
    finally:
        net.close()


def _command_profile(args: argparse.Namespace) -> int:
    """cProfile the handover workload under churn and print the hotspots.

    The workload is the seeded handover-scenario family with the churn knob
    forced up, which is exactly the interleaved subscribe/unsubscribe +
    publish regime the matching engine is tuned for.  Only the workload run
    itself is inside the profiler — topology setup and teardown stay out.
    """
    import cProfile
    import dataclasses
    import io
    import pstats

    from .mobility.handover_workload import WorkloadSpec, run_handover_workload

    if args.brokers < 3:
        print("profile needs at least 3 brokers (handover line)", file=sys.stderr)
        return 2
    if not 0.0 <= args.churn <= 1.0:
        print("profile needs --churn in [0, 1]", file=sys.stderr)
        return 2
    config = _fabric_config(args, "profile", transport=args.backend)
    if config is None:
        return 2
    spec = dataclasses.replace(
        WorkloadSpec.draw(args.seed),
        brokers=args.brokers,
        publishes_per_phase=args.publishes,
        churn_rate=args.churn,
    )
    print(
        f"profile: handover workload on {args.backend!r} — seed={args.seed} "
        f"brokers={spec.brokers} publishes/phase={spec.publishes_per_phase} "
        f"churn={spec.churn_rate:g} walkers={spec.walkers} commuters={spec.commuters}"
    )
    print(f"  fabric: {config.describe()}")
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_handover_workload(args.backend, spec=spec, config=config)
    profiler.disable()
    print(
        f"  done: published={result.published} delivered={result.delivered_total()} "
        f"handovers={result.handovers} wall={result.wall_sec:.3f}s"
    )
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue().rstrip())
    return 0


def _command_info() -> int:
    print("repro — mobile publish/subscribe middleware reproduction")
    print()
    print("Packages:")
    print("  repro.net          transport substrates: deterministic simulator + asyncio TCP")
    print("  repro.pubsub       REBECA-style content-based pub/sub")
    print("  repro.core         mobility support (physical, logical, extended logical)")
    print("  repro.mobility     mobility models, workloads, scenarios")
    print("  repro.experiments  experiment suite (E1..E12)")
    print()
    print("Experiments:")
    for experiment_id, (title, _run) in EXPERIMENTS.items():
        print(f"  {experiment_id:4s} {title}")
    print()
    print("Demos:", ", ".join(sorted(_EXAMPLES)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "experiments":
        return _command_experiments(args)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "net-demo":
        return _command_net_demo(args)
    if args.command == "cluster-demo":
        return _command_cluster_demo(args)
    if args.command == "mobility-demo":
        return _command_mobility_demo(args)
    if args.command == "chaos-demo":
        return _command_chaos_demo(args)
    if args.command == "chaos-fuzz":
        return _command_chaos_fuzz(args)
    if args.command == "soak":
        return _command_soak(args)
    if args.command == "metrics":
        return _command_metrics(args)
    if args.command == "top":
        return _command_top(args)
    if args.command == "profile":
        return _command_profile(args)
    if args.command == "info":
        return _command_info()
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro.cli
    raise SystemExit(main())
