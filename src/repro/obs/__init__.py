"""Live observability layer: counters, histograms, per-broker registries."""

from repro.obs.metrics import (
    DEFAULT_SIZE_BOUNDS,
    NULL_COUNTER,
    NULL_HISTOGRAM,
    Counter,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "DEFAULT_SIZE_BOUNDS",
]
