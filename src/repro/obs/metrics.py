"""Live metrics primitives for the broker control plane.

This module is deliberately tiny and allocation-light: the instruments are
incremented on pub/sub hot paths (every routed notification, every wire
frame), so an observation must stay within a few attribute touches.  The
design mirrors the usual counter/histogram split:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Histogram` — fixed, pre-sorted bucket bounds with cumulative-free
  per-bucket counts (bucket *i* holds observations ``<= bounds[i]``, the
  final overflow bucket holds the rest);
* :class:`MetricsRegistry` — the per-broker/per-transport owner that
  memoizes instruments by name and renders everything into a plain dict via
  :meth:`MetricsRegistry.snapshot` so snapshots can cross process
  boundaries as JSON (the cluster control channel carries them next to the
  ``stats`` op).

A registry constructed with ``enabled=False`` hands out shared no-op
instruments instead, which is the A/B used by ``bench_controlplane.py`` to
prove the instrumentation overhead stays within budget.  Unlike the
post-hoc QoS aggregation in :mod:`repro.core.metrics`, everything here is
updated live while traffic flows.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "DEFAULT_SIZE_BOUNDS",
    "DEFAULT_LATENCY_BOUNDS",
]

# Byte-size oriented bounds (frame sizes, flush sizes): powers of four from
# 64 B to 1 MiB, which brackets everything from one tiny control frame to a
# full flush-cap burst.
DEFAULT_SIZE_BOUNDS: Tuple[int, ...] = tuple(64 * 4**i for i in range(8))

# Latency oriented bounds (delivery age in seconds): powers of five from
# 1 ms to ~78 s, spanning sim-clock hops and real socket round-trips.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = tuple(0.001 * 5**i for i in range(8))


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """A histogram with fixed bucket bounds.

    ``bounds`` must be sorted ascending; observation ``v`` lands in the
    first bucket with ``v <= bound``, or in the trailing overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if ordered != sorted(ordered):
            raise ValueError(f"histogram bounds must be sorted ascending, got {bounds!r}")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(ordered)
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum})"


class _NullCounter:
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullHistogram:
    """Shared no-op histogram handed out by disabled registries."""

    __slots__ = ()
    name = "null"
    bounds: Tuple[float, ...] = ()
    counts: List[int] = []
    count = 0
    sum = 0

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Owner of a named instrument set, snapshottable as a plain dict.

    Instruments are memoized by name, so every caller asking for
    ``counter("transport.frames_sent")`` shares the same object — endpoints
    created at different times all feed one instrument.  A disabled
    registry returns shared no-op instruments and snapshots empty, making
    "metrics off" a true zero-bookkeeping mode.
    """

    __slots__ = ("enabled", "_counters", "_histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def histogram(self, name: str, bounds: Iterable[float] = DEFAULT_SIZE_BOUNDS) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, tuple(bounds))
        return instrument

    def snapshot(self) -> Dict[str, Dict]:
        """Render every instrument into a JSON-safe plain dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for name, h in sorted(self._histograms.items())
            },
        }
