"""E8 — Shared digest buffer vs per-virtual-client buffers (Sect. 4).

"If virtual clients buffer notifications individually, they may consume
memory redundantly by keeping the same data.  A shared buffer at the border
broker can be used and virtual clients can keep only the digest (e.g., IDs or
hash) of the events."

This experiment co-locates ``k`` shadow virtual clients with overlapping
location-dependent subscriptions at one border broker, feeds them the same
notification stream, and compares the memory footprint of individual
:class:`~repro.core.buffering.NotificationBuffer` instances against digest
buffers backed by one :class:`~repro.core.buffering.SharedNotificationStore`.

Expected shape: individual memory grows ~linearly with ``k`` while the shared
store stays ~flat (every notification stored once) plus a small per-client
digest cost.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..core.buffering import (
    CountBasedPolicy,
    DigestBuffer,
    NotificationBuffer,
    SharedNotificationStore,
)
from ..pubsub.notification import Notification
from .harness import Table


def run(
    client_counts: Sequence[int] = (1, 2, 4, 8, 16),
    stream_length: int = 200,
    overlap: float = 0.8,
    max_entries: int = 100,
    seed: int = 8,
) -> Table:
    """Run the memory comparison and return the result table."""
    table = Table(
        "E8: individual buffers vs shared digest buffer",
        columns=[
            "clients",
            "individual_bytes",
            "shared_bytes",
            "saving_ratio",
            "stored_once",
            "digests_held",
        ],
        description=f"{stream_length} buffered notifications, {int(overlap * 100)}% subscription overlap.",
    )
    for k in client_counts:
        row = _run_once(k, stream_length, overlap, max_entries, seed)
        table.add_row(clients=k, **row)
    return table


def _stream(length: int, seed: int) -> List[Notification]:
    rng = random.Random(seed)
    stream = []
    for index in range(length):
        stream.append(
            Notification(
                {
                    "service": "weather",
                    "location": f"cell-{index % 5}-0",
                    "forecast": rng.choice(["sunny", "rain", "fog"]),
                    "detail": "y" * rng.randint(20, 60),
                },
                published_at=float(index),
            )
        )
    return stream


def _run_once(
    k: int, stream_length: int, overlap: float, max_entries: int, seed: int
) -> Dict[str, object]:
    rng = random.Random(seed + k)
    stream = _stream(stream_length, seed)

    # Which clients buffer which notification: the first client buffers all,
    # the others buffer an `overlap` fraction (overlapping subscriptions).
    interest: List[List[bool]] = []
    for client in range(k):
        if client == 0:
            interest.append([True] * len(stream))
        else:
            interest.append([rng.random() < overlap for _ in stream])

    # Individual buffers.
    individual = [NotificationBuffer(CountBasedPolicy(max_entries)) for _ in range(k)]
    for index, notification in enumerate(stream):
        for client in range(k):
            if interest[client][index]:
                individual[client].add(notification, now=notification.published_at)
    individual_bytes = sum(buffer.memory_bytes() for buffer in individual)

    # Shared store + digest buffers.
    store = SharedNotificationStore()
    shared = [DigestBuffer(store, CountBasedPolicy(max_entries)) for _ in range(k)]
    for index, notification in enumerate(stream):
        for client in range(k):
            if interest[client][index]:
                shared[client].add(notification, now=notification.published_at)
    shared_bytes = store.memory_bytes() + sum(buffer.memory_bytes() for buffer in shared)

    return {
        "individual_bytes": individual_bytes,
        "shared_bytes": shared_bytes,
        "saving_ratio": round(individual_bytes / shared_bytes, 2) if shared_bytes else 0.0,
        "stored_once": len(store),
        "digests_held": sum(len(buffer) for buffer in shared),
    }
