"""E6 — Coverage vs overhead as ``nlb`` grows (Sect. 4, "Dealing with further uncertainty").

The paper frames the central tension of the design: ``nlb`` instances must be
"as 'large' as necessary (to cater for a lot of different forms of user
movement) but ... as 'small' as possible (to not waste too much bandwidth)",
and the extreme of covering every broker "would degenerate to flooding, a
very unpleasant situation".

This experiment replays broker-level movement traces through the whole
predictor spectrum and reports both axes of the trade-off:

* ``coverage`` — fraction of handovers whose target broker already hosted a
  shadow when the move happened (no setup gap, no missed notifications);
* ``mean_shadows`` — average number of shadow virtual clients that had to be
  maintained to achieve it (bandwidth/memory proxy).

Two movement workloads are used: a neighbourhood-respecting random walk (the
paper's assumption) and a teleporting power-off workload (its stated failure
mode).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..core.location import cell_grid_space, cell_name
from ..core.movement_graph import grid_graph
from ..core.uncertainty import (
    FloodingPredictor,
    MarkovPredictor,
    MovementPredictor,
    NeighbourhoodPredictor,
    NoPredictionPredictor,
    coverage_and_cost,
)
from ..mobility.models import RandomWalkMobility, TeleportMobility
from ..mobility.trace import trace_from_model
from .harness import Table

PREDICTORS = ("none", "nlb-1", "nlb-2", "nlb-3", "markov", "flooding")
WORKLOADS = ("random-walk", "teleport")


def run(
    predictors: Sequence[str] = PREDICTORS,
    workloads: Sequence[str] = WORKLOADS,
    rows: int = 5,
    cols: int = 5,
    duration: float = 2000.0,
    dwell_time: float = 10.0,
    seed: int = 6,
) -> Table:
    """Run the predictor sweep and return the result table."""
    table = Table(
        "E6: shadow-set coverage vs cost across the nlb spectrum",
        columns=["workload", "predictor", "handovers", "coverage", "mean_shadows", "broker_count"],
        description="Coverage of the next attachment vs number of shadows maintained.",
    )
    space = cell_grid_space(rows, cols)
    graph = grid_graph(rows, cols)
    broker_names = graph.brokers

    for workload in workloads:
        trace = _workload_trace(workload, space, duration, dwell_time, seed)
        brokers = trace.brokers()
        for predictor_name in predictors:
            predictor = _make_predictor(predictor_name, graph, broker_names)
            coverage, mean_shadows = coverage_and_cost(predictor, brokers)
            table.add_row(
                workload=workload,
                predictor=predictor_name,
                handovers=trace.handover_count(),
                coverage=round(coverage, 4),
                mean_shadows=round(mean_shadows, 2),
                broker_count=len(broker_names),
            )
    return table


def _workload_trace(workload: str, space, duration: float, dwell_time: float, seed: int):
    start = cell_name(0, 0)
    if workload == "random-walk":
        model = RandomWalkMobility(space, start=start, dwell_time=dwell_time)
    elif workload == "teleport":
        model = TeleportMobility(space, start=start, on_time=dwell_time * 2, off_time=dwell_time)
    else:
        raise ValueError(f"unknown workload {workload!r}")
    return trace_from_model(model, space, duration, seed=seed)


def _make_predictor(name: str, graph, broker_names: List[str]) -> MovementPredictor:
    if name == "none":
        return NoPredictionPredictor()
    if name.startswith("nlb-"):
        return NeighbourhoodPredictor(graph, hops=int(name.split("-")[1]))
    if name == "markov":
        return MarkovPredictor(graph, threshold=0.1)
    if name == "flooding":
        return FloodingPredictor(broker_names)
    raise ValueError(f"unknown predictor {name!r}")
