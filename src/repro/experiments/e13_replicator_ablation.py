"""E13 (ablation) — design choices inside the replicator layer.

DESIGN.md calls out three implementation choices the paper leaves open; this
ablation measures each of them in the full system on the same car-on-a-route
workload as E4:

* **replay filtering** — on activation, replay only the buffered
  notifications that match the client's precise (newly bound) ``myloc``
  filters (``filter_replay=True``, the default) vs replaying the whole
  broker-scope buffer;
* **buffer policy** — unbounded shadow buffers vs the combined
  time+count policy of Sect. 4;
* **shared digest store** — per-virtual-client buffers vs one shared store
  per border broker.

Measured per configuration: delivery rate for location-relevant
notifications, notifications replayed to the device, replay discarded by the
filter, and peak buffer memory across the system.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.buffering import CombinedPolicy, CountBasedPolicy, TimeBasedPolicy
from ..core.location_filter import location_dependent
from ..core.middleware import MobilitySystemConfig
from ..core.replicator import ReplicatorConfig
from ..mobility.models import RoutePathMobility
from ..mobility.scenario import build_route_scenario
from ..mobility.workload import restaurant_workload
from .harness import Table

CONFIGURATIONS = (
    "baseline",
    "unfiltered-replay",
    "combined-buffer-policy",
    "shared-store",
)


def run(
    configurations: Sequence[str] = CONFIGURATIONS,
    n_segments: int = 18,
    segments_per_broker: int = 3,
    publish_period: float = 1.0,
    dwell_time: float = 4.0,
    duration: float = 60.0,
    handover_gap: float = 1.0,
) -> Table:
    """Run the replicator design-choice ablation and return the result table."""
    table = Table(
        "E13: replicator design-choice ablation",
        columns=[
            "configuration",
            "delivery_rate",
            "replayed",
            "replay_discarded",
            "buffer_memory",
            "control_msgs",
        ],
        description="Same workload and movement as E4; only internal replicator choices vary.",
    )
    for configuration in configurations:
        row = _run_once(
            configuration,
            n_segments,
            segments_per_broker,
            publish_period,
            dwell_time,
            duration,
            handover_gap,
        )
        table.add_row(configuration=configuration, **row)
    return table


def _replicator_config(configuration: str) -> ReplicatorConfig:
    if configuration == "baseline":
        return ReplicatorConfig()
    if configuration == "unfiltered-replay":
        return ReplicatorConfig(filter_replay=False)
    if configuration == "combined-buffer-policy":
        return ReplicatorConfig(
            buffer_policy_factory=lambda: CombinedPolicy(
                [TimeBasedPolicy(ttl=20.0), CountBasedPolicy(max_entries=25)]
            )
        )
    if configuration == "shared-store":
        return ReplicatorConfig(use_shared_store=True)
    raise ValueError(f"unknown configuration {configuration!r}")


def _run_once(
    configuration: str,
    n_segments: int,
    segments_per_broker: int,
    publish_period: float,
    dwell_time: float,
    duration: float,
    handover_gap: float,
) -> Dict[str, object]:
    config = MobilitySystemConfig(replicator=_replicator_config(configuration), predictor="nlb")
    scenario = build_route_scenario(
        n_segments=n_segments, segments_per_broker=segments_per_broker, config=config
    )
    publishers, recorder = restaurant_workload(
        scenario.system, period=publish_period, recorder=scenario.recorder, until=duration
    )
    template = location_dependent({"service": "restaurant-menu"})
    model = RoutePathMobility(scenario.space.locations, dwell_time=dwell_time, loop=True)
    subscriber = scenario.add_roaming_subscriber(
        "car", template, model, duration=duration, handover_gap=handover_gap
    )

    memory_samples: List[int] = []
    for sample_time in range(5, int(duration), 5):
        scenario.sim.schedule_at(
            float(sample_time), lambda: memory_samples.append(scenario.system.total_buffer_memory())
        )

    scenario.run(duration)
    publishers.stop()

    outcome = scenario.evaluate(subscriber)
    discarded = sum(r.stats.replay_discarded for r in scenario.system.replicators.values())
    return {
        "delivery_rate": round(outcome.delivery_rate, 4),
        "replayed": outcome.replayed,
        "replay_discarded": discarded,
        "buffer_memory": max(memory_samples) if memory_samples else 0,
        "control_msgs": scenario.system.control_message_count(),
    }
