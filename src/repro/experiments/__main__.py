"""Run every experiment and print its result table.

Usage::

    python -m repro.experiments            # all experiments
    python -m repro.experiments E4 E6      # a subset
"""

from __future__ import annotations

import sys

from . import EXPERIMENTS


def main(argv: list[str]) -> int:
    requested = [arg.upper() for arg in argv] or list(EXPERIMENTS.keys())
    unknown = [exp for exp in requested if exp not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    for experiment_id in requested:
        title, run = EXPERIMENTS[experiment_id]
        print(f"\n=== {experiment_id}: {title} ===\n")
        table = run()
        print(table.formatted())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
