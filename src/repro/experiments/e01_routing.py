"""E1 — Routing in the broker network (paper Fig. 2, Sect. 2).

The paper's substrate is a content-based router network where "each broker
maintains a routing table" and forwards notifications only towards interested
parties (simple routing), as opposed to flooding every notification through
the acyclic graph.  This experiment verifies that both strategies deliver the
same notifications to the same subscribers and quantifies the traffic saving
of filter-based routing, which is what makes the mobility extensions worth
running on top of it.

Measured per (broker count, routing strategy):

* ``publish_msgs`` — publish messages crossing broker-to-broker links;
* ``deliveries`` — notifications handed to subscribers (must be identical
  across strategies);
* ``table_size`` — total routing-table entries in the network.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..net.simulator import Simulator
from ..pubsub.broker_network import random_tree_topology
from ..pubsub.filters import Equals, Filter
from .harness import Table

SERVICES = ["temperature", "stock", "news", "traffic", "weather"]


def run(
    broker_counts: Sequence[int] = (5, 15, 30),
    strategies: Sequence[str] = ("flooding", "simple"),
    subscribers_per_broker: int = 1,
    publications_per_broker: int = 5,
    seed: int = 1,
) -> Table:
    """Run the routing comparison and return the result table."""
    table = Table(
        "E1: flooding vs content-based (simple) routing",
        columns=["brokers", "strategy", "publish_msgs", "deliveries", "table_size", "subscriptions"],
        description="Traffic on broker links per strategy; deliveries must match across strategies.",
    )
    for n_brokers in broker_counts:
        reference_deliveries: Dict[str, int] = {}
        for strategy in strategies:
            stats = _run_once(
                n_brokers, strategy, subscribers_per_broker, publications_per_broker, seed
            )
            table.add_row(
                brokers=n_brokers,
                strategy=strategy,
                publish_msgs=stats["publish_msgs"],
                deliveries=stats["deliveries"],
                table_size=stats["table_size"],
                subscriptions=stats["subscriptions"],
            )
            reference_deliveries[strategy] = stats["deliveries"]
    return table


def _run_once(
    n_brokers: int,
    strategy: str,
    subscribers_per_broker: int,
    publications_per_broker: int,
    seed: int,
) -> Dict[str, int]:
    rng = random.Random(seed)
    sim = Simulator()
    network = random_tree_topology(sim, n_brokers, routing=strategy, seed=seed)
    brokers = network.broker_names()

    subscribers = []
    for broker in brokers:
        for index in range(subscribers_per_broker):
            client = network.add_client(f"sub-{broker}-{index}", broker)
            service = rng.choice(SERVICES)
            client.subscribe(Filter([Equals("service", service)]))
            subscribers.append((client, service))
    sim.run_until_idle()

    publishers = {broker: network.add_client(f"pub-{broker}", broker) for broker in brokers}
    sim.run_until_idle()

    published = 0
    for broker in brokers:
        for _ in range(publications_per_broker):
            service = rng.choice(SERVICES)
            publishers[broker].publish({"service": service, "origin": broker, "value": rng.random()})
            published += 1
    sim.run_until_idle()

    deliveries = sum(len(client.deliveries) for client, _service in subscribers)
    return {
        "publish_msgs": network.broker_link_messages("publish"),
        "deliveries": deliveries,
        "table_size": network.total_routing_table_size(),
        "subscriptions": len(subscribers),
    }
