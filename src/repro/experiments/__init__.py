"""Experiment harness and the E1..E12 experiment definitions.

Each experiment module exposes a ``run(...)`` function returning a
:class:`~repro.experiments.harness.Table`; the benchmark suite under
``benchmarks/`` wraps those functions with ``pytest-benchmark`` and asserts
the qualitative result shapes documented in EXPERIMENTS.md.  Run everything
and print the tables with::

    python -m repro.experiments
"""

from . import (
    e01_routing,
    e02_physical,
    e03_logical,
    e04_replicator,
    e05_handover,
    e06_nlb_sweep,
    e07_buffering,
    e08_shared_buffer,
    e09_exception,
    e10_scalability,
    e11_context,
    e12_routing_ablation,
    e13_replicator_ablation,
)
from .harness import ExperimentResult, Table, geometric_sizes

#: Registry of all experiments: id -> (title, run callable).
EXPERIMENTS = {
    "E1": ("Routing: flooding vs simple", e01_routing.run),
    "E2": ("Physical mobility support levels", e02_physical.run),
    "E3": ("Logical mobility precision", e03_logical.run),
    "E4": ("Extended logical mobility (pre-subscriptions)", e04_replicator.run),
    "E5": ("Handover overhead vs movement-graph degree", e05_handover.run),
    "E6": ("nlb coverage/cost sweep", e06_nlb_sweep.run),
    "E7": ("Buffering policies", e07_buffering.run),
    "E8": ("Shared digest buffer", e08_shared_buffer.run),
    "E9": ("Exception mode after power-off", e09_exception.run),
    "E10": ("Scalability sweep", e10_scalability.run),
    "E11": ("Context-dependent subscriptions", e11_context.run),
    "E12": ("Routing-strategy ablation", e12_routing_ablation.run),
    "E13": ("Replicator design-choice ablation", e13_replicator_ablation.run),
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "Table",
    "geometric_sizes",
    "e01_routing",
    "e02_physical",
    "e03_logical",
    "e04_replicator",
    "e05_handover",
    "e06_nlb_sweep",
    "e07_buffering",
    "e08_shared_buffer",
    "e09_exception",
    "e10_scalability",
    "e11_context",
    "e12_routing_ablation",
    "e13_replicator_ablation",
]
