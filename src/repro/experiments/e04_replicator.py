"""E4 — Extended logical mobility: pre-subscriptions vs reactive re-subscription.

This is the paper's headline mechanism (Sect. 3, Fig. 4).  A car drives along
a route and wants the restaurant menus for the road segments around it; menus
are published at arbitrary times, so "the client cannot rely on the fact that
notifications ... happen to be published just as the client enters the new
broker's range" (Sect. 1).  Compared variants:

* ``reactive`` — no pre-subscriptions: location-dependent subscriptions are
  (re-)issued only after the client arrives at the new broker; everything
  published before that is lost;
* ``replicator`` — the paper's replicator layer with shadows on ``nlb`` of
  the current broker: buffered notifications are replayed on arrival;
* ``replicator-flooding`` — shadows everywhere (maximal coverage, the
  degenerate overhead case).

Measured per variant: missed location-relevant notifications, delivery rate,
replayed notifications, mean first-delivery latency after a handover, and the
control-message overhead of the replication protocol.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..core.location_filter import location_dependent
from ..core.metrics import handover_latencies, mean
from ..core.middleware import MobilitySystemConfig
from ..core.replicator import ReplicatorConfig
from ..mobility.models import RoutePathMobility
from ..mobility.scenario import build_route_scenario
from ..mobility.workload import restaurant_workload
from .harness import Table

VARIANTS = ("reactive", "replicator", "replicator-flooding")


def run(
    variants: Sequence[str] = VARIANTS,
    n_segments: int = 18,
    segments_per_broker: int = 3,
    publish_period: float = 1.0,
    dwell_time: float = 4.0,
    duration: float = 80.0,
    handover_gap: float = 1.0,
) -> Table:
    """Run the pre-subscription comparison and return the result table."""
    table = Table(
        "E4: reactive re-subscription vs replicator pre-subscriptions",
        columns=[
            "variant",
            "relevant",
            "delivered",
            "missed",
            "delivery_rate",
            "replayed",
            "first_delivery_latency",
            "control_msgs",
            "shadows",
        ],
        description="Car-on-a-route restaurant menus; the replicator should not miss notifications after handover.",
    )
    for variant in variants:
        row = _run_variant(
            variant,
            n_segments,
            segments_per_broker,
            publish_period,
            dwell_time,
            duration,
            handover_gap,
        )
        table.add_row(variant=variant, **row)
    return table


def _variant_config(variant: str) -> MobilitySystemConfig:
    if variant == "reactive":
        return MobilitySystemConfig(
            replicator=ReplicatorConfig(pre_subscription=False, physical_relocation=False, exception_mode=False),
            predictor="none",
        )
    if variant == "replicator":
        return MobilitySystemConfig(replicator=ReplicatorConfig(), predictor="nlb")
    if variant == "replicator-flooding":
        return MobilitySystemConfig(replicator=ReplicatorConfig(), predictor="flooding")
    raise ValueError(f"unknown variant {variant!r}")


def _run_variant(
    variant: str,
    n_segments: int,
    segments_per_broker: int,
    publish_period: float,
    dwell_time: float,
    duration: float,
    handover_gap: float,
) -> Dict[str, object]:
    scenario = build_route_scenario(
        n_segments=n_segments,
        segments_per_broker=segments_per_broker,
        config=_variant_config(variant),
    )
    publishers, recorder = restaurant_workload(
        scenario.system, period=publish_period, recorder=scenario.recorder, until=duration
    )

    template = location_dependent({"service": "restaurant-menu"})
    path = scenario.space.locations  # drive the route from start to end
    model = RoutePathMobility(path, dwell_time=dwell_time, loop=True)
    subscriber = scenario.add_roaming_subscriber(
        "car", template, model, duration=duration, handover_gap=handover_gap
    )

    scenario.run(duration)
    publishers.stop()

    outcome = scenario.evaluate(subscriber)
    latencies = [
        h.first_delivery_latency
        for h in handover_latencies(subscriber.client)
        if h.first_delivery_latency is not None
    ]
    return {
        "relevant": outcome.relevant,
        "delivered": outcome.delivered_relevant,
        "missed": outcome.missed,
        "delivery_rate": round(outcome.delivery_rate, 4),
        "replayed": outcome.replayed,
        "first_delivery_latency": round(mean(latencies), 4),
        "control_msgs": scenario.system.control_message_count(),
        "shadows": scenario.system.total_shadow_count(),
    }
