"""E5 — Handover control overhead vs movement-graph degree (Sect. 3.2.3, Sect. 4).

Every handover makes the new replicator reconcile the shadow set: create
virtual clients on ``newset \\ oldset``, delete them on ``oldset \\ newset``.
The size of those sets — and therefore the number of control messages and the
number of standing shadows — grows with the degree of the movement graph.
This experiment drives the same client trajectory over the same cellular grid
while only the movement graph changes:

* ``line`` — a 1-D corridor of cells (degree ≤ 2);
* ``grid-4`` — the 4-neighbourhood of the grid (degree ≤ 4);
* ``grid-8`` — the 8-neighbourhood (degree ≤ 8);
* ``complete`` — every broker neighbours every other (the flooding
  degeneration the paper warns about).

Measured per graph: average degree, shadow create/delete messages per
handover, subscription messages per handover, and the mean number of standing
shadow virtual clients.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.location import cell_name
from ..core.location_filter import location_dependent
from ..core.middleware import MobilitySystemConfig
from ..core.movement_graph import MovementGraph, complete_graph, grid_graph, line_graph
from ..core.replicator import SHADOW_CREATE, SHADOW_DELETE
from ..mobility.models import RandomWalkMobility
from ..mobility.scenario import build_grid_scenario
from ..mobility.workload import temperature_workload
from .harness import Table

GRAPHS = ("line", "grid-4", "grid-8", "complete")


def run(
    graphs: Sequence[str] = GRAPHS,
    rows: int = 3,
    cols: int = 3,
    dwell_time: float = 4.0,
    publish_period: float = 2.0,
    duration: float = 60.0,
    seed: int = 5,
) -> Table:
    """Run the degree sweep and return the result table."""
    table = Table(
        "E5: handover overhead vs movement-graph degree",
        columns=[
            "graph",
            "avg_degree",
            "handovers",
            "shadow_msgs_per_handover",
            "sub_msgs",
            "mean_shadows",
            "shadow_deliveries",
            "delivery_rate",
        ],
        description="Same client trajectory, increasingly permissive movement graphs.",
    )
    for graph_name in graphs:
        row = _run_once(graph_name, rows, cols, dwell_time, publish_period, duration, seed)
        table.add_row(graph=graph_name, **row)
    return table


def _movement_graph(name: str, rows: int, cols: int, broker_names: List[str]) -> MovementGraph:
    if name == "line":
        return line_graph(broker_names)
    if name == "grid-4":
        return grid_graph(rows, cols, name_of=_grid_names(rows, cols, broker_names), diagonal=False)
    if name == "grid-8":
        return grid_graph(rows, cols, name_of=_grid_names(rows, cols, broker_names), diagonal=True)
    if name == "complete":
        return complete_graph(broker_names)
    raise ValueError(f"unknown movement graph {name!r}")


def _grid_names(rows: int, cols: int, broker_names: List[str]) -> Dict:
    mapping = {}
    index = 0
    for r in range(rows):
        for c in range(cols):
            mapping[(r, c)] = f"B_{r}_{c}"
            index += 1
    return mapping


def _run_once(
    graph_name: str,
    rows: int,
    cols: int,
    dwell_time: float,
    publish_period: float,
    duration: float,
    seed: int,
) -> Dict[str, object]:
    scenario = build_grid_scenario(rows=rows, cols=cols, config=MobilitySystemConfig())
    broker_names = scenario.network.broker_names()
    graph = _movement_graph(graph_name, rows, cols, broker_names)

    # Rebuild the system's predictor around the chosen movement graph.
    from ..core.uncertainty import NeighbourhoodPredictor

    predictor = NeighbourhoodPredictor(graph, hops=1)
    scenario.system.movement_graph = graph
    scenario.system.predictor = predictor
    for replicator in scenario.system.replicators.values():
        replicator.predictor = predictor

    publishers, recorder = temperature_workload(
        scenario.system, period=publish_period, recorder=scenario.recorder, until=duration
    )

    template = location_dependent({"service": "temperature"})
    start = cell_name(0, 0)
    model = RandomWalkMobility(scenario.space, start=start, dwell_time=dwell_time)
    subscriber = scenario.add_roaming_subscriber("walker", template, model, duration=duration, seed=seed)

    shadow_samples: List[int] = []
    sample_period = max(dwell_time, 1.0)
    sample_times = [t * sample_period for t in range(1, int(duration / sample_period))]
    for t in sample_times:
        scenario.sim.schedule_at(t, lambda: shadow_samples.append(scenario.system.total_shadow_count()))

    scenario.run(duration)
    publishers.stop()

    handovers = max(1, len(subscriber.client.attachments) - 1)
    shadow_msgs = scenario.network.total_messages(SHADOW_CREATE) + scenario.network.total_messages(
        SHADOW_DELETE
    )
    outcome = scenario.evaluate(subscriber)
    return {
        "avg_degree": round(graph.average_degree(), 2),
        "handovers": handovers,
        "shadow_msgs_per_handover": round(shadow_msgs / handovers, 3),
        "sub_msgs": scenario.system.subscription_message_count(),
        "mean_shadows": round(sum(shadow_samples) / len(shadow_samples), 2) if shadow_samples else 0.0,
        "shadow_deliveries": scenario.system.total_shadow_deliveries(),
        "delivery_rate": round(outcome.delivery_rate, 4),
    }
