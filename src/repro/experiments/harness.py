"""Experiment harness: result tables and common helpers.

Every experiment module produces a :class:`Table` — named columns plus rows —
so that the benchmark suite can assert the qualitative shape of the results
and ``python -m repro.experiments`` can print the full set the way a paper
appendix would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


class Table:
    """A small result table with stable column order and pretty printing."""

    def __init__(self, title: str, columns: Sequence[str], description: str = ""):
        self.title = title
        self.columns = list(columns)
        self.description = description
        self.rows: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------ build
    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"row has columns not declared for table {self.title!r}: {sorted(unknown)}")
        self.rows.append({column: values.get(column) for column in self.columns})

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        for row in rows:
            self.add_row(**dict(row))

    # ------------------------------------------------------------------ query
    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def rows_where(self, **conditions: Any) -> List[Dict[str, Any]]:
        selected = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in conditions.items()):
                selected.append(row)
        return selected

    def value(self, column: str, **conditions: Any) -> Any:
        """The single value of ``column`` in the unique row matching ``conditions``."""
        rows = self.rows_where(**conditions)
        if len(rows) != 1:
            raise LookupError(
                f"expected exactly one row matching {conditions} in {self.title!r}, found {len(rows)}"
            )
        return rows[0][column]

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------ output
    def formatted(self) -> str:
        """Render the table as aligned ASCII text."""
        headers = self.columns
        body = [[_fmt(row.get(column)) for column in headers] for row in self.rows]
        widths = [len(header) for header in headers]
        for line in body:
            for index, cell in enumerate(line):
                widths[index] = max(widths[index], len(cell))
        separator = "-+-".join("-" * width for width in widths)
        lines = [self.title]
        if self.description:
            lines.append(self.description)
        lines.append(" | ".join(header.ljust(width) for header, width in zip(headers, widths)))
        lines.append(separator)
        for line in body:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        if self.description:
            lines += [self.description, ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(row.get(column)) for column in self.columns) + " |")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.title!r}, {len(self.rows)} rows)"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class ExperimentResult:
    """Everything an experiment produces: its id, tables and free-form notes."""

    experiment_id: str
    title: str
    tables: List[Table] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def formatted(self) -> str:
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            parts.append(table.formatted())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)


def geometric_sizes(smallest: int, largest: int, steps: int) -> List[int]:
    """A small geometric sweep of integer sizes, endpoints included."""
    if steps < 2 or smallest >= largest:
        return [smallest]
    sizes = []
    ratio = (largest / smallest) ** (1 / (steps - 1))
    value = float(smallest)
    for _ in range(steps):
        sizes.append(int(round(value)))
        value *= ratio
    deduped: List[int] = []
    for size in sizes:
        if not deduped or size > deduped[-1]:
            deduped.append(size)
    return deduped
