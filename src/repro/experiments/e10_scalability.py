"""E10 — Scalability of the mobility layer (Sect. 4, "Scalability and dynamic environments").

"Pervasive environments ... pose greater challenges both in the number of
clients to support as well as in the dynamics of their behavior.  How
scalable are implementations of logical and physical mobility?"

The experiment sweeps the system size (grid side length → number of border
brokers) and the number of simultaneously roaming clients, with the
replicator layer on and off, and reports:

* ``events`` — simulator events processed (a machine-independent cost proxy);
* ``broker_msgs`` — messages crossing broker-to-broker links;
* ``control_msgs`` — replication control messages;
* ``mean_latency`` — mean end-to-end delivery latency of live notifications;
* ``delivery_rate`` — location-relevant delivery rate averaged over clients.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.location import cell_name
from ..core.location_filter import location_dependent
from ..core.metrics import mean
from ..core.middleware import MobilitySystemConfig
from ..core.replicator import ReplicatorConfig
from ..mobility.models import RandomWalkMobility
from ..mobility.scenario import build_grid_scenario
from ..mobility.workload import temperature_workload
from .harness import Table

VARIANTS = ("reactive", "replicator")


def run(
    grid_sides: Sequence[int] = (2, 3, 4),
    client_counts: Sequence[int] = (2, 6),
    variants: Sequence[str] = VARIANTS,
    dwell_time: float = 6.0,
    publish_period: float = 3.0,
    duration: float = 60.0,
    seed: int = 10,
) -> Table:
    """Run the scalability sweep and return the result table."""
    table = Table(
        "E10: scalability with brokers and roaming clients",
        columns=[
            "brokers",
            "clients",
            "variant",
            "events",
            "broker_msgs",
            "control_msgs",
            "mean_latency",
            "delivery_rate",
        ],
        description="Cost and quality of service as the deployment grows.",
    )
    for side in grid_sides:
        for n_clients in client_counts:
            for variant in variants:
                row = _run_once(side, n_clients, variant, dwell_time, publish_period, duration, seed)
                table.add_row(brokers=side * side, clients=n_clients, variant=variant, **row)
    return table


def _variant_config(variant: str) -> MobilitySystemConfig:
    if variant == "reactive":
        return MobilitySystemConfig(
            replicator=ReplicatorConfig(pre_subscription=False, physical_relocation=False, exception_mode=False),
            predictor="none",
        )
    return MobilitySystemConfig(replicator=ReplicatorConfig(), predictor="nlb")


def _run_once(
    side: int,
    n_clients: int,
    variant: str,
    dwell_time: float,
    publish_period: float,
    duration: float,
    seed: int,
) -> Dict[str, object]:
    scenario = build_grid_scenario(rows=side, cols=side, config=_variant_config(variant))
    publishers, recorder = temperature_workload(
        scenario.system, period=publish_period, recorder=scenario.recorder, until=duration
    )
    template = location_dependent({"service": "temperature"})

    subscribers = []
    for index in range(n_clients):
        start = cell_name(index % side, (index // side) % side)
        model = RandomWalkMobility(scenario.space, start=start, dwell_time=dwell_time)
        subscribers.append(
            scenario.add_roaming_subscriber(
                f"walker-{index}", template, model, duration=duration, seed=seed + index
            )
        )

    scenario.run(duration)
    publishers.stop()

    latencies: List[float] = []
    rates: List[float] = []
    for subscriber in subscribers:
        latencies.extend(
            d.latency for d in subscriber.client.live_deliveries() if d.latency is not None
        )
        rates.append(scenario.evaluate(subscriber).delivery_rate)

    return {
        "events": scenario.sim.events_processed,
        "broker_msgs": scenario.network.broker_link_messages(),
        "control_msgs": scenario.system.control_message_count(),
        "mean_latency": round(mean(latencies), 5),
        "delivery_rate": round(mean(rates), 4),
    }
