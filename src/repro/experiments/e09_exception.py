"""E9 — The exception mode: popping up outside the shadow set (Sect. 4).

"One reason for disconnecting from the network is to save power by shutting
down the device.  Combined with client movement, this implies that a client
may always 'pop up' at any place in the broker network, i.e., places which
are not covered by nlb and hence where no virtual client is running."  The
paper proposes an exception mode: start a virtual client on the fly and
retrieve buffered notifications from some other virtual client, accepting
"some form of degraded service".

The experiment runs a teleporting client (power-off, reappear anywhere) on a
cellular grid with the replicator layer enabled and compares exception mode
on vs off, reporting how many of the client's reconnections were uncovered by
the shadow set, how many notifications the exception fetch salvaged, and the
overall delivery rate for location-relevant notifications.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..core.location import cell_name
from ..core.location_filter import location_dependent
from ..core.middleware import MobilitySystemConfig
from ..core.replicator import ReplicatorConfig
from ..mobility.models import TeleportMobility
from ..mobility.scenario import build_grid_scenario
from ..mobility.workload import weather_workload
from .harness import Table

VARIANTS = ("exception-off", "exception-on")


def run(
    variants: Sequence[str] = VARIANTS,
    rows: int = 3,
    cols: int = 3,
    on_time: float = 12.0,
    off_time: float = 6.0,
    publish_period: float = 2.0,
    duration: float = 90.0,
    seed: int = 9,
) -> Table:
    """Run the exception-mode comparison and return the result table."""
    table = Table(
        "E9: exception mode after power-off teleports",
        columns=[
            "variant",
            "reconnections",
            "uncovered_arrivals",
            "exception_recoveries",
            "relevant",
            "delivered",
            "delivery_rate",
            "replayed",
        ],
        description="Client powers off and pops up at arbitrary cells; the shadow set often does not cover the arrival broker.",
    )
    for variant in variants:
        row = _run_variant(variant, rows, cols, on_time, off_time, publish_period, duration, seed)
        table.add_row(variant=variant, **row)
    return table


def _variant_config(variant: str) -> MobilitySystemConfig:
    exception = variant == "exception-on"
    return MobilitySystemConfig(
        replicator=ReplicatorConfig(
            pre_subscription=True, physical_relocation=True, exception_mode=exception
        ),
        predictor="nlb",
    )


def _run_variant(
    variant: str,
    rows: int,
    cols: int,
    on_time: float,
    off_time: float,
    publish_period: float,
    duration: float,
    seed: int,
) -> Dict[str, object]:
    scenario = build_grid_scenario(
        rows=rows, cols=cols, config=_variant_config(variant), myloc_scope="region", region_rows=1
    )
    publishers, recorder = weather_workload(
        scenario.system, period=publish_period, recorder=scenario.recorder, until=duration
    )

    template = location_dependent({"service": "weather"}, scope="region")
    model = TeleportMobility(scenario.space, start=cell_name(0, 0), on_time=on_time, off_time=off_time)
    subscriber = scenario.add_roaming_subscriber("nomad", template, model, duration=duration, seed=seed)

    scenario.run(duration)
    publishers.stop()

    outcome = scenario.evaluate(subscriber)
    uncovered = sum(r.stats.exception_activations for r in scenario.system.replicators.values())
    recoveries = sum(r.relocation.stats.exception_recoveries for r in scenario.system.replicators.values())
    reconnections = max(0, len(subscriber.client.attachments) - 1)
    return {
        "reconnections": reconnections,
        "uncovered_arrivals": uncovered,
        "exception_recoveries": recoveries,
        "relevant": outcome.relevant,
        "delivered": outcome.delivered_relevant,
        "delivery_rate": round(outcome.delivery_rate, 4),
        "replayed": outcome.replayed,
    }
