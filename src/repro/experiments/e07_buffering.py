"""E7 — Buffering policies for shadow virtual clients (Sect. 4, "Embedding event histories").

A shadow buffers the location-relevant notifications that arrive before the
client does.  The paper lists the policy space — time-based, history(count)-
based, their combination, and semantic nullification — and asks "what are the
best buffering schemes for certain applications?".

The experiment feeds every policy the same bursty notification stream (menus
and sensor readings arriving in bursts with quiet periods) and then lets the
client "arrive" at a configurable time, measuring:

* ``replayed`` — how many notifications the arriving client receives;
* ``useful_replayed`` — how many of those are still current (published within
  the freshness horizon the application cares about);
* ``stale_replayed`` — replayed but outdated;
* ``peak_memory`` — the largest buffer footprint during the wait;
* ``evicted`` — notifications the policy dropped.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..core.buffering import (
    BufferPolicy,
    CombinedPolicy,
    CountBasedPolicy,
    NotificationBuffer,
    SemanticPolicy,
    TimeBasedPolicy,
    UnboundedPolicy,
)
from ..pubsub.notification import Notification
from .harness import Table

POLICIES = ("unbounded", "time", "count", "combined", "semantic")


def run(
    policies: Sequence[str] = POLICIES,
    wait_time: float = 120.0,
    burst_period: float = 10.0,
    burst_size: int = 6,
    freshness_horizon: float = 30.0,
    ttl: float = 30.0,
    max_entries: int = 12,
    n_sources: int = 4,
    seed: int = 7,
) -> Table:
    """Run the buffering-policy comparison and return the result table."""
    table = Table(
        "E7: buffering policies at shadow virtual clients",
        columns=[
            "policy",
            "buffered",
            "evicted",
            "replayed",
            "useful_replayed",
            "stale_replayed",
            "peak_memory",
        ],
        description=f"Bursty stream for {wait_time}s before the client arrives; useful = newer than {freshness_horizon}s.",
    )
    stream = _bursty_stream(wait_time, burst_period, burst_size, n_sources, seed)
    for policy_name in policies:
        row = _run_policy(policy_name, stream, wait_time, freshness_horizon, ttl, max_entries)
        table.add_row(policy=policy_name, **row)
    return table


def _make_policy(name: str, ttl: float, max_entries: int) -> BufferPolicy:
    if name == "unbounded":
        return UnboundedPolicy()
    if name == "time":
        return TimeBasedPolicy(ttl=ttl)
    if name == "count":
        return CountBasedPolicy(max_entries=max_entries)
    if name == "combined":
        return CombinedPolicy([TimeBasedPolicy(ttl=ttl), CountBasedPolicy(max_entries=max_entries)])
    if name == "semantic":
        return SemanticPolicy(lambda n: (n.get("service"), n.get("location"), n.get("source")))
    raise ValueError(f"unknown policy {name!r}")


def _bursty_stream(
    wait_time: float, burst_period: float, burst_size: int, n_sources: int, seed: int
) -> List[Notification]:
    """A deterministic bursty stream of (time-stamped) notifications."""
    rng = random.Random(seed)
    stream: List[Notification] = []
    time = 0.0
    while time < wait_time:
        for source in range(n_sources):
            if rng.random() < 0.7:  # not every source fires in every burst
                for index in range(burst_size):
                    published_at = time + index * 0.05
                    stream.append(
                        Notification(
                            {
                                "service": "restaurant-menu",
                                "location": "km-05",
                                "source": f"src-{source}",
                                "index": index,
                                "payload": "x" * rng.randint(10, 40),
                            },
                            published_at=published_at,
                        )
                    )
        time += burst_period
    stream.sort(key=lambda n: n.published_at)
    return stream


def _run_policy(
    policy_name: str,
    stream: List[Notification],
    wait_time: float,
    freshness_horizon: float,
    ttl: float,
    max_entries: int,
) -> Dict[str, object]:
    policy = _make_policy(policy_name, ttl, max_entries)
    buffer = NotificationBuffer(policy)
    peak_memory = 0
    for notification in stream:
        buffer.add(notification, now=notification.published_at)
        peak_memory = max(peak_memory, buffer.memory_bytes())
    replay = buffer.drain(now=wait_time)
    useful = sum(1 for n in replay if wait_time - n.published_at <= freshness_horizon)
    return {
        "buffered": buffer.added,
        "evicted": buffer.evicted,
        "replayed": len(replay),
        "useful_replayed": useful,
        "stale_replayed": len(replay) - useful,
        "peak_memory": peak_memory,
    }
