"""E12 — Routing-strategy ablation of the substrate (Sect. 2).

The paper assumes simple routing "for the sake of simplicity" while noting
that REBECA also provides covering and merging optimisations.  This ablation
quantifies what that substrate choice costs: for an increasing number of
overlapping subscriptions, it reports routing-table state and control/data
traffic for flooding, simple, identity, covering and merging routing.

Expected shape: identity/covering/merging keep routing tables and
subscription traffic smaller when subscriptions overlap, at identical
delivery; flooding needs no subscription traffic at all but pays with maximal
notification traffic.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence

from ..net.simulator import Simulator
from ..pubsub.broker_network import line_topology
from ..pubsub.filters import AtLeast, AtMost, Equals, Filter
from .harness import Table

STRATEGIES = ("flooding", "simple", "identity", "covering", "merging")


def run(
    strategies: Sequence[str] = STRATEGIES,
    n_brokers: int = 8,
    subscriber_counts: Sequence[int] = (8, 24),
    publications: int = 40,
    seed: int = 12,
    advertising: str = "incremental",
) -> Table:
    """Run the routing ablation and return the result table.

    ``advertising`` selects the subscription-control implementation
    (``"incremental"`` index vs ``"scan"`` baseline); the ablation numbers
    are identical under both, which this experiment relies on.
    """
    table = Table(
        "E12: routing strategies under overlapping subscriptions",
        columns=[
            "subscribers",
            "strategy",
            "table_size",
            "sub_msgs",
            "publish_msgs",
            "deliveries",
        ],
        description="Line of brokers, overlapping temperature-range subscriptions at one end, publishers at the other.",
    )
    for n_subscribers in subscriber_counts:
        for strategy in strategies:
            row = _run_once(strategy, n_brokers, n_subscribers, publications, seed, advertising)
            table.add_row(subscribers=n_subscribers, strategy=strategy, **row)
    return table


def _subscription_filter(index: int, rng: random.Random) -> Filter:
    """Overlapping range subscriptions: every filter covers a band of temperatures."""
    if index % 3 == 0:
        return Filter([Equals("service", "temperature"), AtLeast("value", 10 * (index % 4))])
    if index % 3 == 1:
        return Filter([Equals("service", "temperature"), AtMost("value", 40 + 10 * (index % 3))])
    return Filter([Equals("service", "temperature")])


def _run_once(
    strategy: str,
    n_brokers: int,
    n_subscribers: int,
    publications: int,
    seed: int,
    advertising: str = "incremental",
) -> Dict[str, object]:
    rng = random.Random(seed)
    sim = Simulator()
    network = line_topology(sim, n_brokers, routing=strategy, advertising=advertising)
    brokers = network.broker_names()

    subscribers = []
    for index in range(n_subscribers):
        broker = brokers[index % 2]  # cluster subscribers at one end of the line
        client = network.add_client(f"sub-{index}", broker)
        client.subscribe(_subscription_filter(index, rng))
        subscribers.append(client)
    sim.run_until_idle()

    publisher = network.add_client("publisher", brokers[-1])
    sim.run_until_idle()
    for _ in range(publications):
        publisher.publish({"service": "temperature", "value": rng.uniform(0, 80)})
    sim.run_until_idle()

    return {
        "table_size": network.total_routing_table_size(),
        "sub_msgs": network.broker_link_messages("subscribe") + network.broker_link_messages("unsubscribe"),
        "publish_msgs": network.broker_link_messages("publish"),
        "deliveries": sum(len(client.deliveries) for client in subscribers),
    }
