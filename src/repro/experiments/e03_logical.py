"""E3 — Logical mobility: location-dependent subscriptions (Fig. 1 right).

A user walks between offices on a floor and wants "all temperature readings
referring to his current location (i.e., the particular office)".  The
experiment compares a location-aware client whose ``myloc`` subscription is
re-bound on every move (the mechanism of [5]) against a location-unaware
client that can only subscribe to the whole temperature service.

Measured per client type:

* ``deliveries`` — total notifications received;
* ``relevant_deliveries`` — deliveries matching the room the client was in
  when it received them;
* ``precision`` — the fraction of deliveries that were relevant;
* ``rebinds`` — how many times the subscription had to be adapted.

The location-aware client should reach precision ~1.0 while the unaware one
receives every room's readings (precision ~ 1 / rooms-per-broker-coverage).
"""

from __future__ import annotations

import random
from typing import Dict

from ..core.location import office_floor_space
from ..core.location_filter import location_dependent
from ..core.logical_mobility import LocationAwareClient
from ..net.simulator import PeriodicTask, Simulator
from ..pubsub.broker_network import line_topology
from ..pubsub.filters import Equals, Filter
from .harness import Table


def run(
    n_rooms: int = 8,
    rooms_per_broker: int = 8,
    publish_period: float = 0.5,
    move_period: float = 4.0,
    duration: float = 60.0,
    seed: int = 3,
) -> Table:
    """Run the logical-mobility precision experiment and return the result table."""
    table = Table(
        "E3: location-dependent vs static subscriptions",
        columns=["client", "deliveries", "relevant_deliveries", "precision", "rebinds"],
        description="Office-floor temperature readings; myloc subscriptions deliver only the current room.",
    )
    results = _run_once(n_rooms, rooms_per_broker, publish_period, move_period, duration, seed)
    for client_name, row in results.items():
        table.add_row(client=client_name, **row)
    return table


def _run_once(
    n_rooms: int,
    rooms_per_broker: int,
    publish_period: float,
    move_period: float,
    duration: float,
    seed: int,
) -> Dict[str, Dict[str, object]]:
    rng = random.Random(seed)
    sim = Simulator()
    space = office_floor_space(n_rooms, rooms_per_broker)
    network = line_topology(sim, len(space.brokers()))
    broker = space.brokers()[0]

    # Per-room temperature sensors attached to the covering broker.
    sensors = {}
    for room in space.locations:
        sensor = network.add_client(f"sensor-{room}", space.broker_of(room))
        sensors[room] = sensor

    published = []

    def publish_all() -> None:
        for room, sensor in sensors.items():
            published.append(
                sensor.publish({"service": "temperature", "location": room, "value": 20 + rng.random()})
            )

    PeriodicTask(sim, period=publish_period, callback=publish_all, start_delay=publish_period / 2, until=duration)

    # The location-aware user and the naive (service-wide) user.
    aware = LocationAwareClient(sim, "aware-user", space)
    network.attach_client(aware, broker)
    unaware_deliver_log = []
    unaware = network.add_client("unaware-user", broker)
    unaware.subscribe(Filter([Equals("service", "temperature")]))

    template = location_dependent({"service": "temperature"})
    rooms = space.locations
    aware.set_location(rooms[0])
    aware.subscribe_location(template)

    def move() -> None:
        current = aware.location
        index = rooms.index(current)
        neighbours = [i for i in (index - 1, index + 1) if 0 <= i < len(rooms)]
        aware.set_location(rooms[rng.choice(neighbours)])

    PeriodicTask(sim, period=move_period, callback=move, start_delay=move_period, until=duration)

    sim.run(until=duration)
    sim.run_until_idle()

    aware_relevant = aware.relevant_deliveries()
    aware_total = len(aware.deliveries)

    # For the unaware client, "relevant" means: matches the room the *aware* user's
    # walk would consider current — it has no location, so we measure against the
    # aware client's location trace to keep the comparison meaningful.
    unaware_total = len(unaware.deliveries)
    unaware_relevant = 0
    for delivery in unaware.deliveries:
        location = _location_at(aware.location_trace, delivery.received_at)
        if location is not None and delivery.notification.get("location") in space.myloc(location):
            unaware_relevant += 1

    return {
        "location-aware (myloc)": {
            "deliveries": aware_total,
            "relevant_deliveries": aware_relevant,
            "precision": round(aware_relevant / aware_total, 4) if aware_total else 0.0,
            "rebinds": aware.rebinds,
        },
        "location-unaware (service-wide)": {
            "deliveries": unaware_total,
            "relevant_deliveries": unaware_relevant,
            "precision": round(unaware_relevant / unaware_total, 4) if unaware_total else 0.0,
            "rebinds": 0,
        },
    }


def _location_at(trace, time):
    location = None
    for timestamp, loc in trace:
        if timestamp <= time:
            location = loc
        else:
            break
    return location
