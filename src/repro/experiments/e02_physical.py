"""E2 — Physical mobility: location transparency for roaming clients (Fig. 1 left).

A roaming user monitors stock quotes — a subscription that has nothing to do
with location and therefore must survive every handover untouched ("stock
quote monitoring can be seamlessly transferred from PCs to PDAs", Sect. 1).
Three levels of middleware support are compared:

* ``none`` — the client reconnects but never re-announces its subscriptions
  (no mobility support at all);
* ``resubscribe`` — the client re-issues its subscriptions at every new
  broker (the naive application-level workaround): notifications published
  during the disconnection and setup window are lost;
* ``relocation`` — the physical-mobility relocation of [8]: the old border
  broker buffers for the disconnected client and forwards the buffered
  notifications on reconnection — no loss.

Measured per variant: delivered / missed stock notifications, duplicates, and
the resulting miss rate.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..core.location import office_floor_space
from ..core.metrics import evaluate_plain_delivery
from ..core.middleware import MobilitySystemConfig
from ..core.replicator import ReplicatorConfig
from ..mobility.models import RoutePathMobility
from ..mobility.scenario import build_office_scenario
from ..mobility.workload import stock_workload
from ..pubsub.filters import Equals, Filter
from .harness import Table

VARIANTS = ("none", "resubscribe", "relocation")


def run(
    variants: Sequence[str] = VARIANTS,
    n_rooms: int = 12,
    rooms_per_broker: int = 3,
    publish_period: float = 0.25,
    dwell_time: float = 5.0,
    handover_gap: float = 1.0,
    duration: float = 60.0,
) -> Table:
    """Run the physical-mobility comparison and return the result table."""
    table = Table(
        "E2: physical mobility support levels",
        columns=["variant", "published", "delivered", "missed", "miss_rate", "duplicates", "handovers"],
        description="Roaming stock-quote subscriber; relocation should not lose notifications.",
    )
    for variant in variants:
        row = _run_variant(
            variant, n_rooms, rooms_per_broker, publish_period, dwell_time, handover_gap, duration
        )
        table.add_row(variant=variant, **row)
    return table


def _variant_config(variant: str) -> MobilitySystemConfig:
    if variant == "relocation":
        replicator = ReplicatorConfig(
            pre_subscription=False, physical_relocation=True, exception_mode=False
        )
    else:
        replicator = ReplicatorConfig(
            pre_subscription=False, physical_relocation=False, exception_mode=False
        )
    return MobilitySystemConfig(replicator=replicator, predictor="none")


def _run_variant(
    variant: str,
    n_rooms: int,
    rooms_per_broker: int,
    publish_period: float,
    dwell_time: float,
    handover_gap: float,
    duration: float,
) -> Dict[str, object]:
    scenario = build_office_scenario(
        n_rooms=n_rooms, rooms_per_broker=rooms_per_broker, config=_variant_config(variant)
    )
    publisher, recorder = stock_workload(
        scenario.system, period=publish_period, recorder=scenario.recorder, until=duration
    )

    # The roaming user walks the corridor from end to end and back.
    rooms = scenario.space.locations
    path = rooms + list(reversed(rooms))
    model = RoutePathMobility(path, dwell_time=dwell_time, loop=True)
    client = scenario.system.add_mobile_client("roamer", reissue_on_attach=(variant != "none"))
    stock_filter = Filter([Equals("service", "stock")])
    client.subscribe(stock_filter)

    from ..mobility.models import MobilityDriver  # local import to avoid cycle at module load

    driver = MobilityDriver(scenario.system, client, model, duration=duration, handover_gap=handover_gap)
    driver.start()

    scenario.run(duration)
    publisher.stop()

    outcome = evaluate_plain_delivery(client.received_ids(), recorder.published, stock_filter)
    handovers = max(0, len(client.attachments) - 1)
    return {
        "published": len(recorder.published),
        "delivered": outcome.delivered_relevant,
        "missed": outcome.missed,
        "miss_rate": round(outcome.miss_rate, 4),
        "duplicates": client.duplicate_deliveries(),
        "handovers": handovers,
    }
