"""E11 — From location-awareness to context-awareness (Sect. 4).

The paper's final research question generalises ``myloc`` to state-dependent
subscriptions: "dynamic filters, which depend on a function of the local
state of the client (not only its current location)".

The experiment models a notification application on a battery-powered device:
reminders carry a ``priority`` (1 = low ... 3 = urgent) and the device only
wants priorities at or above a threshold that depends on its battery level
(full battery: everything; low battery: urgent only).  A context-aware client
re-binds its subscription as the battery drains; a static client keeps the
subscription it started with.  Measured: precision (deliveries that match the
client's state at reception time) and recall (state-relevant notifications
actually delivered).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..core.context import ContextAwareClient, ContextMarker, context_dependent
from ..net.simulator import PeriodicTask, Simulator
from ..pubsub.broker_network import line_topology
from ..pubsub.filters import AtLeast, Equals, Filter
from .harness import Table


def _min_priority_for_battery(battery: int) -> frozenset:
    """The priorities the device wants to see at a given battery level."""
    if battery > 60:
        return frozenset({1, 2, 3})
    if battery > 30:
        return frozenset({2, 3})
    return frozenset({3})


def run(
    publish_period: float = 0.5,
    battery_step_period: float = 10.0,
    duration: float = 90.0,
    seed: int = 11,
) -> Table:
    """Run the context-awareness experiment and return the result table."""
    table = Table(
        "E11: context-dependent (state-dependent) subscriptions",
        columns=["client", "deliveries", "state_relevant", "precision", "recall", "rebinds"],
        description="Reminder priorities filtered by battery state; the context-aware client re-binds as the battery drains.",
    )
    rows = _run_once(publish_period, battery_step_period, duration, seed)
    for client_name, row in rows.items():
        table.add_row(client=client_name, **row)
    return table


def _run_once(
    publish_period: float, battery_step_period: float, duration: float, seed: int
) -> Dict[str, Dict[str, object]]:
    rng = random.Random(seed)
    sim = Simulator()
    network = line_topology(sim, 3)

    publisher = network.add_client("reminder-service", "B1")
    published = []

    def publish() -> None:
        priority = rng.choice([1, 1, 2, 2, 3])
        published.append(
            publisher.publish({"service": "reminder", "priority": priority, "text": f"todo-{len(published)}"})
        )

    PeriodicTask(sim, period=publish_period, callback=publish, until=duration)

    # Context-aware client: wanted priorities depend on the battery level.
    aware = ContextAwareClient(sim, "context-aware", initial_context={"battery": 100})
    network.attach_client(aware, "B3")
    template = context_dependent(
        {"service": "reminder"},
        {"priority": ContextMarker("battery", transform=_min_priority_for_battery)},
    )
    aware.subscribe_context(template)

    # Static client: subscribes once for everything and never adapts.
    static = network.add_client("static", "B3")
    static.subscribe(Filter([Equals("service", "reminder"), AtLeast("priority", 1)]))

    battery_levels: List[tuple] = [(0.0, 100)]

    def drain_battery() -> None:
        current = battery_levels[-1][1]
        new_level = max(5, current - 15)
        battery_levels.append((sim.now, new_level))
        aware.update_context(battery=new_level)

    PeriodicTask(sim, period=battery_step_period, callback=drain_battery, start_delay=battery_step_period, until=duration)

    sim.run(until=duration)
    sim.run_until_idle()

    def battery_at(time: float) -> int:
        level = battery_levels[0][1]
        for timestamp, value in battery_levels:
            if timestamp <= time:
                level = value
            else:
                break
        return level

    def wanted(priority: int, time: float) -> bool:
        return priority in _min_priority_for_battery(battery_at(time))

    state_relevant_ids = {
        n.notification_id for n in published if wanted(n["priority"], n.published_at)
    }

    results = {}
    for client, label in ((aware, "context-aware"), (static, "static (subscribe-everything)")):
        delivered = client.deliveries
        relevant_delivered = sum(
            1 for d in delivered if wanted(d.notification["priority"], d.received_at)
        )
        delivered_ids = {d.notification.notification_id for d in delivered}
        recall = (
            len(delivered_ids & state_relevant_ids) / len(state_relevant_ids)
            if state_relevant_ids
            else 1.0
        )
        results[label] = {
            "deliveries": len(delivered),
            "state_relevant": relevant_delivered,
            "precision": round(relevant_delivered / len(delivered), 4) if delivered else 0.0,
            "recall": round(recall, 4),
            "rebinds": getattr(client, "rebinds", 0),
        }
    return results
