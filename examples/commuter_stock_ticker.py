#!/usr/bin/env python3
"""Physical mobility: a stock ticker that follows a commuter (Fig. 1, left side).

The paper's first motivating example is location *transparency*: "stock quote
monitoring can be seamlessly transferred from PCs to PDAs".  The subscription
``service == "stock" AND symbol == "ACME"`` has nothing to do with location —
it must simply keep working while its owner commutes between the broker at
home and the broker at the office, disconnecting in between.

This example runs one simulated week of commuting (two handovers per day with
a coverage gap on the train) and compares:

* ``resubscribe`` — the PDA re-issues the subscription after every reconnect;
  the quotes published while it was on the train are gone;
* ``relocation``  — the physical-mobility support: the old border broker
  buffers the quotes for the disconnected client and forwards them after the
  reconnection, so the ticker shows an uninterrupted sequence.

It also feeds the observed handovers to a Markov movement predictor and shows
that after a couple of days it has learned the home<->office pattern —
exactly the kind of refined ``nlb`` the paper's research agenda asks for.

Run with::

    python examples/commuter_stock_ticker.py
"""

from __future__ import annotations

from repro.core import (
    MarkovPredictor,
    MobilitySystemConfig,
    ReplicatorConfig,
    evaluate_plain_delivery,
    from_location_space,
    office_floor_space,
)
from repro.mobility import build_office_scenario, stock_workload
from repro.pubsub import Equals, Filter


DAY = 40.0  # simulated seconds per commuting day
TRAIN_RIDE = 3.0  # out-of-coverage gap between home and office


def commute_once(variant: str, days: int = 5) -> dict:
    duration = days * DAY
    if variant == "relocation":
        replicator = ReplicatorConfig(pre_subscription=False, physical_relocation=True, exception_mode=False)
    else:
        replicator = ReplicatorConfig(pre_subscription=False, physical_relocation=False, exception_mode=False)
    config = MobilitySystemConfig(replicator=replicator, predictor="none")

    # Two "rooms": home and office, covered by different border brokers.
    scenario = build_office_scenario(n_rooms=2, rooms_per_broker=1, config=config)
    home, office = scenario.space.locations
    ticker, recorder = stock_workload(scenario.system, period=0.5, recorder=scenario.recorder, until=duration)

    pda = scenario.system.add_mobile_client("pda")
    stock_filter = Filter([Equals("service", "stock"), Equals("symbol", "ACME")])
    pda.subscribe(stock_filter)
    scenario.system.attach(pda, location=home)

    # Morning and evening commute, every day.
    predictor = MarkovPredictor(from_location_space(scenario.space))
    for day in range(days):
        morning = day * DAY + DAY * 0.25
        evening = day * DAY + DAY * 0.75
        scenario.sim.schedule_at(morning, _commute, scenario, pda, office, predictor)
        scenario.sim.schedule_at(evening, _commute, scenario, pda, home, predictor)

    scenario.run(duration)
    ticker.stop()

    outcome = evaluate_plain_delivery(pda.received_ids(), recorder.published, stock_filter)
    home_broker = scenario.space.broker_of(home)
    learned = predictor.predict(home_broker)
    return {
        "variant": variant,
        "quotes published": outcome.relevant,
        "quotes delivered": outcome.delivered_relevant,
        "quotes missed": outcome.missed,
        "duplicates": pda.duplicate_deliveries(),
        "handovers": max(0, len(pda.attachments) - 1),
        "markov prediction from home": sorted(learned),
    }


def _commute(scenario, pda, destination, predictor) -> None:
    previous = pda.current_broker
    scenario.system.move(pda, destination, gap=TRAIN_RIDE)
    new_broker = scenario.space.broker_of(destination)
    if previous is not None and previous != new_broker:
        predictor.observe_handover(previous, new_broker)


def main() -> None:
    print("One simulated work week of commuting with an ACME stock ticker...\n")
    for variant in ("resubscribe", "relocation"):
        result = commute_once(variant)
        print(f"--- {variant} ---")
        for key, value in result.items():
            if key != "variant":
                print(f"  {key:28s} {value}")
        print()
    print(
        "With relocation the old border broker buffers the quotes published during\n"
        "the train ride and forwards them on reconnection: the ticker never has a gap.\n"
        "The Markov predictor has also learned where the commuter goes next, so the\n"
        "extended-logical-mobility layer could place its shadows only there instead of\n"
        "on the full movement-graph neighbourhood."
    )


if __name__ == "__main__":
    main()
