#!/usr/bin/env python3
"""Quickstart: a tiny mobile publish/subscribe deployment.

This example builds the smallest interesting system:

* a line of three border brokers (the acyclic REBECA router network),
* an office floor of six rooms mapped onto those brokers,
* a temperature sensor per room (wired publishers),
* one mobile user with a location-dependent subscription
  ``service == "temperature" AND location in myloc``,

then walks the user across a broker boundary and shows that the replicator
layer keeps delivering the readings for the room the user is currently in —
including the buffered reading that was published at the new location
*before* the user arrived ("subscribed in the past").

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    MobilePubSub,
    MobilitySystemConfig,
    evaluate_mobile_delivery,
    location_dependent,
    office_floor_space,
)
from repro.net import Simulator
from repro.pubsub import line_topology


def main() -> None:
    # 1. Simulation substrate and broker network (Fig. 2 of the paper).
    sim = Simulator()
    space = office_floor_space(n_rooms=6, rooms_per_broker=2)  # rooms room-00..room-05 on B1..B3
    network = line_topology(sim, n_brokers=len(space.brokers()))

    # 2. The mobility middleware: one replicator per border broker,
    #    shadows placed on the movement-graph neighbourhood (nlb).
    system = MobilePubSub(sim, network, space, config=MobilitySystemConfig())

    # 3. Wired publishers: a temperature sensor in every room.
    sensors = {room: system.add_publisher(f"sensor-{room}", room) for room in space.locations}

    def publish_round() -> None:
        for room, sensor in sensors.items():
            sensor.publish({"service": "temperature", "location": room, "value": 21.0})

    # 4. A mobile user subscribing to the temperature of wherever they are.
    alice = system.add_mobile_client("alice")
    template = location_dependent({"service": "temperature"})
    alice.subscribe_location(template)

    system.attach(alice, location="room-00")
    sim.run_until_idle()
    print(f"alice attached at broker {alice.current_broker}, connected={alice.connected}")
    print(f"shadow virtual clients: {system.shadow_map()}")

    # 5. Publish while alice is in room-00.
    publish_round()
    sim.run_until_idle()
    print(f"deliveries after first round: {[d.notification['location'] for d in alice.deliveries]}")

    # 6. Publish again, then move alice across the broker boundary to room-02.
    publish_round()
    sim.run_until_idle()
    system.move(alice, "room-02")
    sim.run_until_idle()
    print(f"alice now at broker {alice.current_broker}")
    replayed = [d.notification["location"] for d in alice.deliveries if d.replayed]
    print(f"replayed on arrival (buffered by the shadow before alice got there): {replayed}")

    # 7. One more round at the new location.
    publish_round()
    sim.run_until_idle()

    outcome = evaluate_mobile_delivery(alice, _all_published(sensors), template, space)
    print("\ndelivery outcome:", outcome.as_row())
    print("control messages of the replication layer:", system.control_message_count())


def _all_published(sensors) -> list:
    published = []
    for sensor in sensors.values():
        published.extend(sensor.published)
    return published


if __name__ == "__main__":
    main()
