#!/usr/bin/env python3
"""Logical mobility on an office floor (Fig. 1, right side of the paper).

A facility manager walks along the corridor of an office floor.  Every room
has a temperature sensor; the manager's tablet subscribes to
``(service = "temperature"), (location in myloc)`` so it always shows the
reading of the room she is standing in — never the whole building's sensor
firehose.

The example contrasts the tablet (a location-aware ``myloc`` subscription
that is re-bound on every room change) with a wall display that subscribed to
the entire temperature service, and prints the precision of what each of them
received.  It exercises pure *logical* mobility: the manager stays within one
border broker's range, so no physical handover is involved.

Run with::

    python examples/office_floor_tour.py
"""

from __future__ import annotations

import random

from repro.core import LocationAwareClient, location_dependent, office_floor_space
from repro.net import PeriodicTask, Simulator
from repro.pubsub import Equals, Filter, line_topology


def main(duration: float = 120.0) -> None:
    rng = random.Random(42)
    sim = Simulator()
    space = office_floor_space(n_rooms=10, rooms_per_broker=10)  # one broker covers the floor
    network = line_topology(sim, n_brokers=1)
    broker = space.brokers()[0]
    rooms = space.locations

    # Sensors: one per room, a reading every 2 simulated seconds.
    sensors = {room: network.add_client(f"sensor-{room}", broker) for room in rooms}

    def publish_all() -> None:
        for room, sensor in sensors.items():
            sensor.publish(
                {"service": "temperature", "location": room, "value": round(19 + 4 * rng.random(), 1)}
            )

    PeriodicTask(sim, period=2.0, callback=publish_all, until=duration)

    # The manager's tablet: location-aware myloc subscription.
    manager = LocationAwareClient(sim, "manager-tablet", space)
    network.attach_client(manager, broker)
    manager.set_location(rooms[0])
    manager.subscribe_location(location_dependent({"service": "temperature"}))

    # The lobby wall display: subscribes to every temperature reading.
    wall_display = network.add_client("wall-display", broker)
    wall_display.subscribe(Filter([Equals("service", "temperature")]))

    # Walk the corridor: one room every 6 seconds.
    def walk() -> None:
        index = rooms.index(manager.location)
        next_index = min(index + 1, len(rooms) - 1)
        if next_index != index:
            manager.set_location(rooms[next_index])
            print(f"[t={sim.now:6.1f}s] manager enters {rooms[next_index]}")

    PeriodicTask(sim, period=6.0, callback=walk, start_delay=6.0, until=duration)

    sim.run(until=duration)
    sim.run_until_idle()

    relevant = manager.relevant_deliveries()
    total = len(manager.deliveries)
    print("\n--- results ---")
    print(f"manager tablet:  {total} deliveries, {relevant} for the current room "
          f"(precision {relevant / total:.2f}), {manager.rebinds} myloc re-bindings")
    print(f"wall display:    {len(wall_display.deliveries)} deliveries "
          f"(every sensor in the building, precision {1 / len(rooms):.2f} w.r.t. any single room)")
    latest = manager.deliveries[-1].notification if manager.deliveries else None
    if latest is not None:
        print(f"last reading shown on the tablet: {latest['location']} at {latest['value']} °C")


if __name__ == "__main__":
    main()
