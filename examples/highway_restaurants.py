#!/usr/bin/env python3
"""The paper's motivating scenario: restaurant menus along the route of a car.

A car drives along a highway divided into km segments, each covered by a
roadside border broker.  Restaurants publish their menus at arbitrary times;
the driver wants "the menus of restaurants along the route" — a
location-dependent subscription whose ``myloc`` binds to the current segment
and its neighbours.

The example runs the same trip twice:

* **reactive** — subscriptions are re-issued only after the car reaches a new
  broker, so menus published before arrival (or during the coverage gap) are
  lost;
* **replicator** — the paper's pre-subscriptions: shadow virtual clients at
  the next roadside brokers buffer the menus and replay them the moment the
  car arrives.

Run with::

    python examples/highway_restaurants.py
"""

from __future__ import annotations

from repro.core import MobilitySystemConfig, ReplicatorConfig, handover_latencies, location_dependent, mean
from repro.mobility import RoutePathMobility, build_route_scenario, restaurant_workload


def drive_once(variant: str, duration: float = 90.0) -> dict:
    if variant == "reactive":
        config = MobilitySystemConfig(
            replicator=ReplicatorConfig(
                pre_subscription=False, physical_relocation=False, exception_mode=False
            ),
            predictor="none",
        )
    else:
        config = MobilitySystemConfig()  # full replicator support, nlb shadows

    scenario = build_route_scenario(n_segments=18, segments_per_broker=3, config=config)
    publishers, recorder = restaurant_workload(
        scenario.system, period=1.5, recorder=scenario.recorder, until=duration
    )

    # Drive the route end to end, spending 4 simulated seconds per km segment,
    # with a 1-second out-of-coverage gap at every broker handover.
    menu_template = location_dependent({"service": "restaurant-menu"})
    trip = RoutePathMobility(scenario.space.locations, dwell_time=4.0, loop=True)
    car = scenario.add_roaming_subscriber(
        "car", menu_template, trip, duration=duration, handover_gap=1.0
    )

    scenario.run(duration)
    publishers.stop()

    outcome = scenario.evaluate(car)
    first_latencies = [
        h.first_delivery_latency
        for h in handover_latencies(car.client)
        if h.first_delivery_latency is not None
    ]
    return {
        "variant": variant,
        "relevant menus": outcome.relevant,
        "delivered": outcome.delivered_relevant,
        "missed": outcome.missed,
        "replayed from shadow buffers": outcome.replayed,
        "mean first-delivery latency after handover (s)": round(mean(first_latencies), 3),
        "replication control messages": scenario.system.control_message_count(),
        "standing shadow virtual clients": scenario.system.total_shadow_count(),
    }


def main() -> None:
    print("Driving the highway twice with identical publications and movement...\n")
    for variant in ("reactive", "replicator"):
        result = drive_once(variant)
        print(f"--- {variant} ---")
        for key, value in result.items():
            if key != "variant":
                print(f"  {key:48s} {value}")
        print()
    print(
        "The replicator variant misses (almost) nothing after each handover and\n"
        "additionally replays the menus that were published before the car arrived\n"
        "— the 'everything, everywhere, all the time' illusion the paper aims for."
    )


if __name__ == "__main__":
    main()
