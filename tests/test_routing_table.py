"""Unit tests for the (filter, link) routing table."""

from repro.pubsub.filters import Equals, Filter, filter_from_dict
from repro.pubsub.routing_table import RoutingTable
from repro.pubsub.subscription import subscription


def temperature(sub_id, link="L1"):
    return filter_from_dict({"service": "temperature"}), link, sub_id


class TestRoutingTable:
    def test_add_and_match_destinations(self):
        table = RoutingTable()
        table.add(filter_from_dict({"service": "temperature"}), "L1", "s1")
        table.add(filter_from_dict({"service": "stock"}), "L2", "s2")
        assert table.destinations({"service": "temperature"}) == ["L1"]
        assert table.destinations({"service": "stock"}) == ["L2"]
        assert table.destinations({"service": "news"}) == []

    def test_exclude_incoming_link(self):
        table = RoutingTable()
        table.add(filter_from_dict({"service": "t"}), "L1", "s1")
        table.add(filter_from_dict({"service": "t"}), "L2", "s2")
        assert table.destinations({"service": "t"}, exclude=["L1"]) == ["L2"]

    def test_destinations_deduplicated(self):
        table = RoutingTable()
        table.add(filter_from_dict({"service": "t"}), "L1", "s1")
        table.add(filter_from_dict({}), "L1", "s2")
        assert table.destinations({"service": "t"}) == ["L1"]

    def test_add_subscription_helper(self):
        table = RoutingTable()
        sub = subscription(filter_from_dict({"service": "t"}), "alice", sub_id="s1")
        table.add_subscription(sub, "client-link")
        assert table.has_subscription("s1", "client-link")

    def test_replace_same_sub_same_link(self):
        table = RoutingTable()
        table.add(filter_from_dict({"service": "t"}), "L1", "s1")
        table.add(filter_from_dict({"service": "stock"}), "L1", "s1")
        assert len(table) == 1
        assert table.destinations({"service": "stock"}) == ["L1"]
        assert table.destinations({"service": "t"}) == []

    def test_remove_by_sub_and_link(self):
        table = RoutingTable()
        table.add(filter_from_dict({"service": "t"}), "L1", "s1")
        table.add(filter_from_dict({"service": "t"}), "L2", "s1")
        removed = table.remove("s1", link="L1")
        assert len(removed) == 1
        assert table.destinations({"service": "t"}) == ["L2"]
        table.remove("s1")
        assert len(table) == 0

    def test_remove_link(self):
        table = RoutingTable()
        table.add(filter_from_dict({"service": "t"}), "L1", "s1")
        table.add(filter_from_dict({"service": "t"}), "L1", "s2")
        table.add(filter_from_dict({"service": "t"}), "L2", "s3")
        removed = table.remove_link("L1")
        assert {entry.sub_id for entry in removed} == {"s1", "s2"}
        assert table.links() == ["L2"]
        assert table.subscription_ids() == {"s3"}

    def test_entries_and_filters_for_link(self):
        table = RoutingTable()
        table.add(filter_from_dict({"service": "t"}), "L1", "s1")
        assert len(table.entries_for_link("L1")) == 1
        assert len(table.filters_for_link("L1")) == 1
        assert table.entries_for_link("L9") == []

    def test_covered_by_other_link(self):
        table = RoutingTable()
        broad = filter_from_dict({"service": "t"})
        narrow = filter_from_dict({"service": "t", "location": "r1"})
        table.add(broad, "L1", "s1")
        assert table.covered_by_other_link(narrow, excluding_link="L2")
        assert not table.covered_by_other_link(narrow, excluding_link="L1")

    def test_size_by_link_and_len(self):
        table = RoutingTable()
        table.add(filter_from_dict({"a": 1}), "L1", "s1")
        table.add(filter_from_dict({"a": 2}), "L1", "s2")
        table.add(filter_from_dict({"a": 3}), "L2", "s3")
        assert len(table) == 3
        assert table.size_by_link() == {"L1": 2, "L2": 1}

    def test_matching_entries(self):
        table = RoutingTable()
        table.add(filter_from_dict({"service": "t"}), "L1", "s1")
        table.add(filter_from_dict({"service": "x"}), "L2", "s2")
        entries = table.matching_entries({"service": "t"})
        assert [entry.sub_id for entry in entries] == ["s1"]

    def test_clear(self):
        table = RoutingTable()
        table.add(filter_from_dict({"a": 1}), "L1", "s1")
        table.clear()
        assert len(table) == 0
        assert table.links() == []
