"""Resource non-growth under churn: sockets, writers, timers, registries.

The leak class the soak harness gates: repeated attach/detach and
kill/restart cycles must leave every transport-held resource at its
baseline.  Three surfaces:

* **asyncio dynamic links** — open/close cycles of wireless links must not
  accumulate link registrations, TCP writers or pending timers (a closed
  link that left its writers behind shows up in ``open_writers`` even after
  being dropped from the registry);
* **cluster kill/restart** — each supervised recovery cycle closes the dead
  broker's client sockets and attaches fresh ones; client writers, reader
  tasks, registry entries, live children and pending timers must all return
  to the pre-fault baseline;
* **soak loop** — a short in-process soak run holds its process-level
  plateau (open fds exactly flat) while chaining seeded chaos plans and
  seed-drawn mobility workload members.
"""

from repro.net.faults import FaultInjector
from repro.net.process import Message, Process
from repro.net.transport import AsyncioTransport
from repro.pubsub.broker_network import line_topology
from repro.pubsub.chaosgen import run_soak
from repro.pubsub.filters import Equals, Filter
from repro.pubsub.invariants import check_non_growth, resource_snapshot


class Recorder(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def _dynamic_link_cycle(transport, a, b):
    opened = []
    link = transport.open_dynamic_link(a, b, latency=0.0, ready=opened.append)
    transport.run_until_idle()
    assert opened == [link]
    a.send("b", Message("ping", payload=1))
    transport.run_until_idle()
    transport.close_dynamic_link(link)
    transport.run_until_idle()


def test_asyncio_dynamic_link_cycles_do_not_leak_sockets():
    transport = AsyncioTransport()
    try:
        a = Recorder(transport.clock, "a")
        b = Recorder(transport.clock, "b")
        # warmup: servers and the event loop's plumbing are created lazily
        _dynamic_link_cycle(transport, a, b)
        baseline = transport.resource_sizes()
        for _ in range(5):
            _dynamic_link_cycle(transport, a, b)
        final = transport.resource_sizes()
        violations = check_non_growth(baseline, final)
        assert not violations, [str(v) for v in violations]
        assert final["open_writers"] == baseline["open_writers"]
        assert final["links"] == baseline["links"]
        assert final["pending_timers"] == baseline["pending_timers"]
        assert len(b.received) == 6
    finally:
        transport.close()


def test_cluster_kill_restart_cycles_return_to_baseline():
    net = line_topology(n_brokers=3, routing="covering", transport="cluster")
    try:
        net.add_client("pub", "B1")
        sub = net.add_client("sub", "B3")
        sub.subscribe(Filter([Equals("service", "temp")]), sub_id="leak-probe")
        net.run_until_idle()
        injector = FaultInjector(net.sim, net.network)
        baseline = resource_snapshot(net)
        for _ in range(2):
            injector.crash_now("B2")
            injector.restart_now("B2")
            net.run_until_idle()
        # covering advertisement order may move one routing entry per broker
        # (forwarded vs suppressed covered subscription); transport-held
        # resources — the leak surface — are gated exactly below
        slack = {key: 1 for key in baseline if key.startswith("routing:")}
        violations = check_non_growth(baseline, resource_snapshot(net), slack=slack)
        assert not violations, [str(v) for v in violations]
        sizes = net.transport.resource_sizes()
        assert sizes["client_writers"] == baseline["transport:client_writers"]
        assert sizes["reader_tasks"] == baseline["transport:reader_tasks"]
        assert sizes["registry_entries"] == baseline["transport:registry_entries"]
        assert sizes["live_children"] == baseline["transport:live_children"]
        assert sizes["pending_timers"] == baseline["transport:pending_timers"]
    finally:
        net.close()


def test_short_sim_soak_holds_its_plateau():
    result = run_soak(backend="sim", budget_sec=0.0, min_iterations=3)
    assert result.ok, [str(v) for v in result.violations]
    assert result.iterations == 3
    assert result.seeds == [0, 1, 2]
    if "fds" in result.plateau_baseline:  # Linux-only observability
        assert result.plateau_final["fds"] == result.plateau_baseline["fds"]


def test_short_asyncio_soak_holds_its_plateau():
    result = run_soak(backend="asyncio", budget_sec=0.0, min_iterations=2)
    assert result.ok, [str(v) for v in result.violations]
    assert result.iterations == 2
