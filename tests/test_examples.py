"""Smoke tests: every example script must run to completion via its main()."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "office_floor_tour.py",
    "highway_restaurants.py",
    "commuter_stock_ticker.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_to_completion(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"example {script} produced no output"


def test_examples_directory_contents():
    """The examples directory contains at least the quickstart plus two domain scenarios."""
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3
