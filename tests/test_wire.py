"""Round-trip and framing tests for the wire codec (repro.net.wire)."""

import math

import pytest

from repro.net.process import Message
from repro.net.wire import (
    FrameDecoder,
    WireError,
    decode_control,
    decode_message,
    encode_control,
    encode_message,
    frame,
    frame_message,
    iter_frames,
)
from repro.pubsub.filters import (
    Equals,
    Exists,
    Filter,
    InSet,
    NotEquals,
    Prefix,
    Range,
)
from repro.pubsub.notification import Notification
from repro.pubsub.subscription import Subscription


def roundtrip(message: Message) -> Message:
    return decode_message(encode_message(message))


class TestMessageRoundTrip:
    def test_notify_message(self):
        notification = Notification(
            {"service": "temperature", "value": 21.5, "room": "r4"},
            published_at=12.5,
            publisher="c1",
        )
        message = Message(kind="notify", payload=notification, sender="B1", meta={"hops": 2})
        message2 = roundtrip(message)
        assert message2.kind == "notify"
        assert message2.sender == "B1"
        assert message2.msg_id == message.msg_id
        assert message2.meta == {"hops": 2}
        assert message2.payload == notification
        assert message2.payload.published_at == 12.5
        assert message2.payload.publisher == "c1"

    def test_subscribe_message_with_every_constraint_kind(self):
        filter = Filter(
            [
                Exists("service"),
                Equals("room", "r4"),
                NotEquals("state", "off"),
                InSet("zone", {"a", "b", "c"}),
                Range("value", 0, 100, include_low=False),
                Prefix("name", "temp-"),
            ]
        )
        sub = Subscription(sub_id="s1", filter=filter, subscriber="c1", meta={"app": "demo"})
        message2 = roundtrip(Message(kind="subscribe", payload=sub, sender="c1"))
        assert message2.payload.sub_id == "s1"
        assert message2.payload.subscriber == "c1"
        assert message2.payload.meta == {"app": "demo"}
        assert message2.payload.filter == filter

    def test_unsubscribe_control_payload(self):
        filter = Filter([Equals("service", "x")])
        message2 = roundtrip(
            Message(kind="unsubscribe", payload={"sub_id": "s9", "filter": filter}, sender="c1")
        )
        assert message2.payload["sub_id"] == "s9"
        assert message2.payload["filter"] == filter

    def test_half_open_range_uses_json_infinity(self):
        filter = Filter([Range("value", low=10)])  # high defaults to +inf
        decoded = roundtrip(Message(kind="subscribe", payload=filter)).payload
        (constraint,) = decoded.constraints
        assert constraint.high == math.inf
        assert decoded == filter

    def test_containers_round_trip_with_types_preserved(self):
        payload = {
            "list": [1, 2.5, "x", None, True],
            "tuple": (1, "a"),
            "set": {3, 1, 2},
            "frozenset": frozenset({"a", "b"}),
            "nested": {"deep": [{"k": (False,)}]},
        }
        decoded = roundtrip(Message(kind="ctl", payload=payload)).payload
        assert decoded["list"] == [1, 2.5, "x", None, True]
        assert decoded["tuple"] == (1, "a")
        assert isinstance(decoded["tuple"], tuple)
        # mutability round-trips: set stays set, frozenset stays frozenset
        assert decoded["set"] == {1, 2, 3} and type(decoded["set"]) is set
        assert decoded["frozenset"] == frozenset({"a", "b"})
        assert type(decoded["frozenset"]) is frozenset
        assert decoded["nested"] == {"deep": [{"k": (False,)}]}

    def test_encoding_is_deterministic(self):
        notification = Notification({"b": 1, "a": 2}, published_at=1.0, publisher="p")
        one = Message(kind="notify", payload=notification, sender="B1", msg_id=7)
        two = Message(kind="notify", payload=notification, sender="B1", msg_id=7)
        assert encode_message(one) == encode_message(two)

    def test_unknown_payload_type_rejected(self):
        class Opaque:
            pass

        with pytest.raises(WireError):
            encode_message(Message(kind="x", payload=Opaque()))

    def test_unbound_template_rejected(self):
        sub = Subscription(sub_id="s1", filter=Filter(()), subscriber="c", template=object())
        with pytest.raises(WireError):
            encode_message(Message(kind="subscribe", payload=sub))

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(WireError):
            encode_message(Message(kind="x", payload={1: "a"}))

    def test_non_string_meta_and_attribute_keys_rejected(self):
        # json.dumps would silently stringify these, diverging from the sim
        # backend's by-reference delivery — the codec must refuse instead
        with pytest.raises(WireError):
            encode_message(Message(kind="x", meta={1: "hop"}))
        with pytest.raises(WireError):
            encode_message(Message(kind="notify", payload=Notification({2: "v"})))

    def test_malformed_body_rejected(self):
        with pytest.raises(WireError):
            decode_message(b"{not json")

    def test_control_codec(self):
        handshake = {"target": "B2", "link": 4, "direction": ("a", "b")}
        assert decode_control(encode_control(handshake)) == handshake


class TestFraming:
    def test_frame_and_iter_frames(self):
        bodies = [b"alpha", b"", b"gamma" * 100]
        stream = b"".join(frame(b) for b in bodies)
        assert list(iter_frames(stream)) == bodies

    def test_decoder_handles_arbitrary_chunking(self):
        message = Message(kind="notify", payload=Notification({"v": 1}), sender="B1")
        stream = frame_message(message) * 3
        for chunk_size in (1, 2, 5, 7, len(stream)):
            decoder = FrameDecoder()
            bodies = []
            for start in range(0, len(stream), chunk_size):
                bodies.extend(decoder.feed(stream[start : start + chunk_size]))
            assert len(bodies) == 3
            assert decoder.pending_bytes == 0
            assert all(decode_message(b).payload == message.payload for b in bodies)

    def test_partial_frame_stays_buffered(self):
        decoder = FrameDecoder()
        stream = frame(b"hello")
        assert decoder.feed(stream[:3]) == []
        assert decoder.pending_bytes == 3
        assert decoder.feed(stream[3:]) == [b"hello"]

    def test_oversized_frame_rejected(self):
        import struct

        decoder = FrameDecoder()
        with pytest.raises(WireError):
            decoder.feed(struct.pack(">I", 1 << 30))

    def test_trailing_garbage_detected(self):
        with pytest.raises(WireError):
            list(iter_frames(frame(b"ok") + b"\x00\x01"))

    def test_many_frames_on_one_connection_compact_buffer(self):
        """Regression: a long-lived connection must not pay per-frame slicing.

        Feeds thousands of frames through one decoder — in bursts, split at
        hostile chunk boundaries — and asserts that every body comes out in
        order and that the internal buffer only ever retains the partial
        tail, i.e. consumed frames are compacted away each feed.
        """
        decoder = FrameDecoder()
        bodies = [f"frame-{i}".encode() * (1 + i % 7) for i in range(3000)]
        stream = b"".join(frame(b) for b in bodies)
        out = []
        # bursts of ~100 frames per feed, with a boundary-straddling remainder
        chunk = 4096
        for start in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[start : start + chunk]))
            # the buffer holds exactly the bytes of the incomplete tail frame
            assert len(decoder._buffer) == decoder.pending_bytes
            assert decoder.pending_bytes < chunk + 4
        assert out == bodies
        assert decoder.pending_bytes == 0

    def test_single_feed_burst_returns_all_frames(self):
        decoder = FrameDecoder()
        bodies = [b"x" * i for i in range(200)]
        assert decoder.feed(b"".join(frame(b) for b in bodies)) == bodies
        assert decoder.pending_bytes == 0
